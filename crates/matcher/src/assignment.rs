//! Assignment machinery for top-1 and top-k mappings.
//!
//! The top-1 mapping `σ*` is a maximum-weight injective assignment of the
//! `n` subscription predicates to the `m ≥ n` event tuples; we solve it as
//! a minimum-cost assignment over `cost = -ln(similarity)` with the
//! Hungarian (Kuhn–Munkres) algorithm in `O(n²·m)`. Top-k ranked mappings
//! are enumerated with **Murty's algorithm**, which partitions the
//! solution space around each best assignment.

use std::cell::RefCell;

/// Cost value treated as "forbidden edge".
const FORBIDDEN: f64 = 1.0e15;
/// Any assignment whose cost reaches this is infeasible.
const INFEASIBLE_THRESHOLD: f64 = FORBIDDEN / 2.0;

/// Reusable Hungarian working state: potentials (`u`, `v`), the running
/// column matching (`p`), the augmenting-path predecessor chain (`way`),
/// and the per-row Dijkstra state (`minv`, `used`). One instance per
/// worker thread, recycled across solves, so the steady-state match path
/// performs no solver allocations.
#[derive(Default)]
struct SolveScratch {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
}

thread_local! {
    static SOLVE_SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::default());
}

/// A dense row-major cost matrix for assignment problems.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> CostMatrix {
        CostMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// An empty `0 × 0` matrix, for scratch slots that are later
    /// [`CostMatrix::refill`]ed.
    pub const fn empty() -> CostMatrix {
        CostMatrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }

    /// Re-shapes this matrix to `rows × cols` with every cell set to
    /// `value`, recycling the existing buffer — the allocation-free
    /// equivalent of [`CostMatrix::filled`] for hot-path scratch reuse.
    pub fn refill(&mut self, rows: usize, cols: usize, value: f64) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, value);
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> CostMatrix {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        CostMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cost at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Sets the cost at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.cols + col] = value;
    }

    /// Marks `(row, col)` as forbidden.
    pub fn forbid(&mut self, row: usize, col: usize) {
        self.set(row, col, FORBIDDEN);
    }

    /// Forces `row` to be assigned `col` by forbidding every alternative
    /// in that row and column.
    pub fn force(&mut self, row: usize, col: usize) {
        for j in 0..self.cols {
            if j != col {
                self.forbid(row, j);
            }
        }
        for i in 0..self.rows {
            if i != row {
                self.forbid(i, col);
            }
        }
    }
}

/// A solved assignment: `assignment[row] = col`, plus its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Column assigned to each row.
    pub assignment: Vec<usize>,
    /// Sum of the selected costs.
    pub total_cost: f64,
}

/// Solves the minimum-cost assignment of every row to a distinct column.
///
/// Requires `rows ≤ cols`; returns `None` when the matrix is degenerate
/// (zero rows/cols, more rows than columns) or when every complete
/// assignment uses a forbidden edge.
pub fn solve(cost: &CostMatrix) -> Option<Assignment> {
    let n = cost.rows();
    let m = cost.cols();
    if n == 0 || m == 0 || n > m {
        return None;
    }
    // Hungarian algorithm with potentials (1-indexed internals), working
    // in the thread's recycled scratch buffers.
    let inf = f64::INFINITY;
    SOLVE_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let SolveScratch {
            u,
            v,
            p,
            way,
            minv,
            used,
        } = &mut *scratch;
        u.clear();
        u.resize(n + 1, 0.0);
        v.clear();
        v.resize(m + 1, 0.0);
        p.clear();
        p.resize(m + 1, 0); // p[j] = row matched to column j
        way.clear();
        way.resize(m + 1, 0);
        minv.resize(m + 1, inf);
        used.resize(m + 1, false);

        for i in 1..=n {
            p[0] = i;
            let mut j0 = 0usize;
            minv.fill(inf);
            used.fill(false);
            loop {
                used[j0] = true;
                let i0 = p[j0];
                let mut delta = inf;
                let mut j1 = 0usize;
                for j in 1..=m {
                    if used[j] {
                        continue;
                    }
                    let cur = cost.get(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
                for j in 0..=m {
                    if used[j] {
                        u[p[j]] += delta;
                        v[j] -= delta;
                    } else {
                        minv[j] -= delta;
                    }
                }
                j0 = j1;
                if p[j0] == 0 {
                    break;
                }
            }
            loop {
                let j1 = way[j0];
                p[j0] = p[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }

        let mut assignment = vec![usize::MAX; n];
        let mut total = 0.0;
        for j in 1..=m {
            if p[j] != 0 {
                assignment[p[j] - 1] = j - 1;
                total += cost.get(p[j] - 1, j - 1);
            }
        }
        if assignment.contains(&usize::MAX) || total >= INFEASIBLE_THRESHOLD {
            return None;
        }
        Some(Assignment {
            assignment,
            total_cost: total,
        })
    })
}

/// Enumerates the `k` lowest-cost assignments in non-decreasing cost order
/// using Murty's partitioning algorithm.
///
/// Returns fewer than `k` results when the solution space is smaller.
pub fn solve_top_k(cost: &CostMatrix, k: usize) -> Vec<Assignment> {
    let mut results: Vec<Assignment> = Vec::new();
    if k == 0 {
        return results;
    }
    let Some(best) = solve(cost) else {
        return results;
    };

    // Each queue node is a subproblem: a constrained matrix and its
    // optimal assignment.
    struct Node {
        matrix: CostMatrix,
        solution: Assignment,
    }
    let mut queue: Vec<Node> = vec![Node {
        matrix: cost.clone(),
        solution: best,
    }];

    while results.len() < k {
        // Pop the node with the cheapest solution.
        let Some(best_idx) = queue
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.solution
                    .total_cost
                    .partial_cmp(&b.1.solution.total_cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        let node = queue.swap_remove(best_idx);
        // Skip duplicates (identical assignments can surface from sibling
        // partitions when costs tie).
        if !results
            .iter()
            .any(|r| r.assignment == node.solution.assignment)
        {
            results.push(node.solution.clone());
        }

        // Partition: for each edge (i, σ(i)) of the popped solution,
        // create a subproblem that forbids it and forces all earlier
        // edges.
        let assignment = node.solution.assignment.clone();
        for (i, &col) in assignment.iter().enumerate() {
            let mut sub = node.matrix.clone();
            sub.forbid(i, col);
            for (h, &hcol) in assignment.iter().enumerate().take(i) {
                sub.force(h, hcol);
            }
            if let Some(sol) = solve(&sub) {
                queue.push(Node {
                    matrix: sub,
                    solution: sol,
                });
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f64]) -> CostMatrix {
        CostMatrix::from_rows(rows, cols, data.to_vec())
    }

    #[test]
    fn square_identity_like() {
        // Optimal picks the diagonal.
        let c = m(3, 3, &[1.0, 9.0, 9.0, 9.0, 1.0, 9.0, 9.0, 9.0, 1.0]);
        let sol = solve(&c).unwrap();
        assert_eq!(sol.assignment, vec![0, 1, 2]);
        assert_eq!(sol.total_cost, 3.0);
    }

    #[test]
    fn classic_example() {
        // Known optimum 5: rows → cols (0→1, 1→0, 2→2) = 2+2... verify
        // by brute force below instead of hand computation.
        let c = m(3, 3, &[4.0, 2.0, 8.0, 4.0, 3.0, 7.0, 3.0, 1.0, 6.0]);
        let sol = solve(&c).unwrap();
        assert_eq!(sol.total_cost, brute_force_best(&c));
    }

    #[test]
    fn rectangular_leaves_columns_unused() {
        let c = m(2, 4, &[5.0, 1.0, 9.0, 9.0, 9.0, 9.0, 9.0, 2.0]);
        let sol = solve(&c).unwrap();
        assert_eq!(sol.assignment, vec![1, 3]);
        assert_eq!(sol.total_cost, 3.0);
    }

    #[test]
    fn more_rows_than_cols_is_none() {
        let c = m(3, 2, &[1.0; 6]);
        assert!(solve(&c).is_none());
        assert!(solve(&CostMatrix::filled(0, 3, 0.0)).is_none());
    }

    #[test]
    fn all_forbidden_is_infeasible() {
        let mut c = CostMatrix::filled(2, 2, 1.0);
        c.forbid(0, 0);
        c.forbid(0, 1);
        assert!(solve(&c).is_none());
    }

    #[test]
    fn forcing_an_edge_pins_it() {
        let mut c = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        c.force(0, 1); // force the worse edge for row 0
        let sol = solve(&c).unwrap();
        assert_eq!(sol.assignment, vec![1, 0]);
        assert_eq!(sol.total_cost, 5.0);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // Deterministic pseudo-random matrices (LCG).
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..30 {
            let n = 4;
            let data: Vec<f64> = (0..n * n).map(|_| next() * 10.0).collect();
            let c = m(n, n, &data);
            let sol = solve(&c).unwrap();
            let best = brute_force_best(&c);
            assert!(
                (sol.total_cost - best).abs() < 1e-9,
                "hungarian {} != brute force {best}",
                sol.total_cost
            );
        }
    }

    #[test]
    fn top_k_is_sorted_and_distinct() {
        let c = m(3, 3, &[4.0, 2.0, 8.0, 4.0, 3.0, 7.0, 3.0, 1.0, 6.0]);
        let top = solve_top_k(&c, 4);
        assert_eq!(top.len(), 4);
        for w in top.windows(2) {
            assert!(w[0].total_cost <= w[1].total_cost + 1e-9);
        }
        for i in 0..top.len() {
            for j in i + 1..top.len() {
                assert_ne!(top[i].assignment, top[j].assignment);
            }
        }
        // The first must equal the top-1 solution.
        assert_eq!(top[0], solve(&c).unwrap());
    }

    #[test]
    fn top_k_enumerates_all_permutations_of_small_problem() {
        let c = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let top = solve_top_k(&c, 10);
        assert_eq!(top.len(), 2); // only 2 complete assignments exist
        assert_eq!(top[0].total_cost, 5.0); // 1 + 4
        assert_eq!(top[1].total_cost, 5.0); // 2 + 3
    }

    #[test]
    fn top_k_zero_is_empty() {
        let c = m(2, 2, &[1.0; 4]);
        assert!(solve_top_k(&c, 0).is_empty());
    }

    #[test]
    fn top_k_matches_brute_force_ranking() {
        let c = m(3, 3, &[2.0, 7.0, 1.0, 9.0, 4.0, 6.0, 5.0, 8.0, 3.0]);
        let top = solve_top_k(&c, 6);
        let mut all = brute_force_all(&c);
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(top.len(), 6);
        for (got, want) in top.iter().zip(all.iter()) {
            assert!((got.total_cost - want).abs() < 1e-9);
        }
    }

    /// Brute-force minimum over all complete assignments (n ≤ cols).
    fn brute_force_best(c: &CostMatrix) -> f64 {
        brute_force_all(c).into_iter().fold(f64::INFINITY, f64::min)
    }

    fn brute_force_all(c: &CostMatrix) -> Vec<f64> {
        let mut out = Vec::new();
        let mut cols: Vec<usize> = (0..c.cols()).collect();
        permute(&mut cols, 0, c, &mut out);
        out
    }

    fn permute(cols: &mut Vec<usize>, i: usize, c: &CostMatrix, out: &mut Vec<f64>) {
        if i == c.rows() {
            out.push((0..c.rows()).map(|r| c.get(r, cols[r])).sum());
            return;
        }
        for j in i..cols.len() {
            cols.swap(i, j);
            permute(cols, i + 1, c, out);
            cols.swap(i, j);
        }
    }
}
