//! Mappings `σ` and match results with their probability spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One predicate-to-tuple correspondence `(p ↔ t)` of a mapping, with its
/// combined similarity and its probability within the predicate's
/// correspondence space `Pσ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Correspondence {
    /// Index of the subscription predicate.
    pub predicate: usize,
    /// Index of the event tuple the predicate maps to.
    pub tuple: usize,
    /// Combined attribute/value similarity of the pair (matrix cell).
    pub similarity: f64,
    /// Row-normalized probability of this correspondence among the
    /// predicate's alternatives.
    pub probability: f64,
}

/// A complete mapping `σ` between a subscription and an event: exactly one
/// correspondence per predicate (paper §3.5: "There are exactly n
/// correspondences in any valid mapping").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    correspondences: Vec<Correspondence>,
    score: f64,
    probability: f64,
}

impl Mapping {
    pub(crate) fn new(correspondences: Vec<Correspondence>) -> Mapping {
        let score = correspondences.iter().map(|c| c.similarity).product();
        let probability = correspondences.iter().map(|c| c.probability).product();
        Mapping {
            correspondences,
            score,
            probability,
        }
    }

    /// The correspondences, ordered by predicate index.
    pub fn correspondences(&self) -> &[Correspondence] {
        &self.correspondences
    }

    /// The raw semantic score of the mapping: the product of its
    /// correspondence similarities, in `[0, 1]`. `1.0` means an exact
    /// match; comparable across events, so this is what the evaluation
    /// ranks events by.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The probability of the mapping within the mapping space `P`
    /// (product of row-normalized correspondence probabilities,
    /// re-normalized across the enumerated mapping set by the matcher).
    pub fn probability(&self) -> f64 {
        self.probability
    }

    pub(crate) fn set_probability(&mut self, p: f64) {
        self.probability = p;
    }

    /// The tuple index predicate `i` maps to, if `i` is in range.
    pub fn tuple_of(&self, predicate: usize) -> Option<usize> {
        self.correspondences
            .iter()
            .find(|c| c.predicate == predicate)
            .map(|c| c.tuple)
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ[score={:.4}, p={:.4}]{{", self.score, self.probability)?;
        for (i, c) in self.correspondences.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "p{}↔t{}", c.predicate, c.tuple)?;
        }
        write!(f, "}}")
    }
}

/// The result of matching one subscription against one event: the top-1 or
/// top-k mappings, best first.
///
/// An empty result (no valid mapping, e.g. fewer event tuples than
/// subscription predicates, or every complete mapping hits a zero-score
/// correspondence) means the event is irrelevant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MatchResult {
    mappings: Vec<Mapping>,
}

impl MatchResult {
    /// A no-match result.
    pub fn no_match() -> MatchResult {
        MatchResult::default()
    }

    pub(crate) fn from_mappings(mut mappings: Vec<Mapping>) -> MatchResult {
        mappings.sort_by(|a, b| {
            b.score()
                .partial_cmp(&a.score())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Re-normalize mapping probabilities over the enumerated set (the
        // paper's probability space P over Σ).
        let total: f64 = mappings.iter().map(Mapping::probability).sum();
        if total > 0.0 {
            for m in &mut mappings {
                let p = m.probability() / total;
                m.set_probability(p);
            }
        }
        MatchResult { mappings }
    }

    /// The mappings, best (highest score) first.
    pub fn mappings(&self) -> &[Mapping] {
        &self.mappings
    }

    /// The best mapping `σ*`, if any.
    pub fn best(&self) -> Option<&Mapping> {
        self.mappings.first()
    }

    /// The best mapping's score, or `0.0` when there is no valid mapping.
    pub fn score(&self) -> f64 {
        self.best().map(Mapping::score).unwrap_or(0.0)
    }

    /// Whether the best score reaches `threshold`.
    pub fn is_match(&self, threshold: f64) -> bool {
        self.score() >= threshold
    }

    /// Whether no valid mapping exists.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Returns a copy with every correspondence's predicate index mapped
    /// through `perm` (`perm[old] = new`); indices outside `perm` are kept
    /// as-is. Used by subscription aggregation: one match test against a
    /// canonical representative serves subscribers whose predicate lists
    /// are permutations of each other, and each subscriber's notification
    /// must index predicates in *that subscriber's* declaration order.
    pub fn with_remapped_predicates(&self, perm: &[usize]) -> MatchResult {
        let mappings = self
            .mappings
            .iter()
            .map(|m| {
                let correspondences = m
                    .correspondences()
                    .iter()
                    .map(|c| Correspondence {
                        predicate: perm.get(c.predicate).copied().unwrap_or(c.predicate),
                        ..*c
                    })
                    .collect();
                let mut out = Mapping::new(correspondences);
                out.set_probability(m.probability());
                out
            })
            .collect();
        MatchResult { mappings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(p: usize, t: usize, sim: f64, prob: f64) -> Correspondence {
        Correspondence {
            predicate: p,
            tuple: t,
            similarity: sim,
            probability: prob,
        }
    }

    #[test]
    fn mapping_score_is_similarity_product() {
        let m = Mapping::new(vec![corr(0, 1, 0.5, 0.5), corr(1, 0, 0.8, 1.0)]);
        assert!((m.score() - 0.4).abs() < 1e-12);
        assert!((m.probability() - 0.5).abs() < 1e-12);
        assert_eq!(m.tuple_of(0), Some(1));
        assert_eq!(m.tuple_of(7), None);
    }

    #[test]
    fn result_sorts_by_score_and_normalizes_probability() {
        let a = Mapping::new(vec![corr(0, 0, 0.2, 0.25)]);
        let b = Mapping::new(vec![corr(0, 1, 0.6, 0.75)]);
        let r = MatchResult::from_mappings(vec![a, b]);
        assert_eq!(r.mappings().len(), 2);
        assert!(r.mappings()[0].score() > r.mappings()[1].score());
        let total: f64 = r.mappings().iter().map(Mapping::probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((r.score() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_result_behaviour() {
        let r = MatchResult::no_match();
        assert!(r.is_empty());
        assert_eq!(r.score(), 0.0);
        assert!(r.best().is_none());
        assert!(!r.is_match(0.1));
        assert!(r.is_match(0.0));
    }

    #[test]
    fn display_shows_correspondences() {
        let m = Mapping::new(vec![corr(0, 2, 1.0, 1.0)]);
        assert!(m.to_string().contains("p0↔t2"));
    }
}
