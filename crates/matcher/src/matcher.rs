//! The matcher trait and the approximate probabilistic matcher.

use crate::assignment::{self, CostMatrix};
use crate::config::{MatchMode, MatcherConfig};
use crate::explain::{MatchDetail, PredicateExplanation};
use crate::mapping::{Correspondence, Mapping, MatchResult};
use crate::similarity::SimilarityMatrix;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use tep_events::{ComparisonOp, Event, Subscription};
use tep_semantics::{theme_for_tags, CacheStats, SemanticMeasure, Theme};

thread_local! {
    /// Per-worker similarity/cost matrix scratch, recycled across match
    /// tests: together with the solver's own scratch this makes a
    /// rejected match test allocation-free in steady state.
    static MATRIX_SCRATCH: RefCell<(SimilarityMatrix, CostMatrix)> =
        const { RefCell::new((SimilarityMatrix::empty(), CostMatrix::empty())) };
}

/// How much semantic fidelity a matcher should spend on one match test —
/// the degradation ladder an overloaded broker descends (S-ToPSS frames
/// semantic matching as exactly this layered exact → synonym → semantic
/// stack; here the rungs are priced by what they compute).
///
/// The ordering is by fidelity: `Full > CacheOnly > ExactOnly`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradedMatching {
    /// Full semantic matching: compute whatever the measure needs.
    #[default]
    Full,
    /// Cache-warm-only semantics: consult memoized scores and resident
    /// (pinned) projections via [`SemanticMeasure::relatedness_warm`], but
    /// never compute a cold projection or basis. Term pairs that are not
    /// warm score `0.0`.
    CacheOnly,
    /// Exact term identity only: equal terms score `1.0`, everything else
    /// `0.0` — no semantic work at all.
    ExactOnly,
}

impl DegradedMatching {
    /// Stable lowercase label for metrics and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradedMatching::Full => "full",
            DegradedMatching::CacheOnly => "cache_only",
            DegradedMatching::ExactOnly => "exact_only",
        }
    }
}

/// A single-event matcher `M` deciding the semantic relevance between a
/// subscription and an event (paper §3.5).
pub trait Matcher: Send + Sync {
    /// Matches one event against one subscription.
    fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult;

    /// Matches under a fidelity budget. Matchers that can cheapen their
    /// work under load (semantic matchers) honour `mode`; everything else
    /// falls back to [`Self::match_event`] — exact matchers are already at
    /// the bottom of the ladder. `Full` must behave exactly like
    /// [`Self::match_event`].
    fn match_event_degraded(
        &self,
        subscription: &Subscription,
        event: &Event,
        mode: DegradedMatching,
    ) -> MatchResult {
        let _ = mode;
        self.match_event(subscription, event)
    }

    /// Announces that the calling thread is about to run a sweep of match
    /// tests for **one** event — the broker calls this once per dequeued
    /// event, before the first candidate subscription is tested. Matchers
    /// that keep per-event scratch (interned event-side symbols) use the
    /// signal to reuse it across the whole sweep; the default is a no-op,
    /// and correctness never depends on the call (callers that skip it
    /// simply pay the per-test setup cost again).
    fn begin_event(&self, _event: &Event) {}

    /// A short name for reports ("thematic", "non-thematic", "exact", …).
    fn name(&self) -> &'static str {
        "matcher"
    }

    /// Explains a result previously produced by
    /// [`Self::match_event`] for the same pair: per-predicate pairings,
    /// similarities, and (for semantic matchers) the distances and
    /// projection dimensionalities behind them. **Off the hot path** —
    /// called only when explanations are requested; the match itself is
    /// never re-run. Default: pairings from the result, no geometry.
    fn explain_match(
        &self,
        subscription: &Subscription,
        event: &Event,
        result: &MatchResult,
    ) -> MatchDetail {
        MatchDetail::from_result(self.name(), subscription, event, result)
    }

    /// Called when `subscription` registers with a broker: lets the
    /// matcher precompute and **pin** per-subscription state — the
    /// normalized thematic projections of every approximate predicate
    /// term — so they stay resident for the subscription's lifetime.
    /// Default: no-op.
    fn prepare_subscription(&self, _subscription: &Subscription) {}

    /// Releases the state pinned by [`Self::prepare_subscription`].
    /// Default: no-op.
    fn release_subscription(&self, _subscription: &Subscription) {}

    /// Aggregated semantic-cache counters behind this matcher (zeros when
    /// it keeps no caches).
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// The monotone cache-**miss** counter alone, implemented with plain
    /// atomic loads so the broker can sample it around an individual
    /// match test and attribute the latency to the cache-warm or
    /// cache-cold histogram ([`Self::cache_stats`] counts resident
    /// entries under shard locks and is too heavy for that). Matchers
    /// without caches return 0.
    fn cache_miss_count(&self) -> u64 {
        0
    }

    /// Whether this matcher's verdicts are safe to prune by predicate-set
    /// covering (Shi et al.; S-ToPSS layering). A matcher may return
    /// `true` only if it is **purely conjunctive and theme-independent**:
    /// every predicate must independently require support in the event,
    /// so that for predicate sets `B ⊆ A` a miss on `B` implies a miss on
    /// `A`, and two subscriptions with equal predicate multisets always
    /// produce equal results. Approximate/semantic matchers score whole
    /// mappings and must keep the default `false` — covering-pruning
    /// their sweeps would change delivered sets.
    fn covering_safe(&self) -> bool {
        false
    }
}

impl<T: Matcher + ?Sized> Matcher for std::sync::Arc<T> {
    fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
        (**self).match_event(subscription, event)
    }
    fn match_event_degraded(
        &self,
        subscription: &Subscription,
        event: &Event,
        mode: DegradedMatching,
    ) -> MatchResult {
        (**self).match_event_degraded(subscription, event, mode)
    }
    fn begin_event(&self, event: &Event) {
        (**self).begin_event(event)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn explain_match(
        &self,
        subscription: &Subscription,
        event: &Event,
        result: &MatchResult,
    ) -> MatchDetail {
        (**self).explain_match(subscription, event, result)
    }
    fn prepare_subscription(&self, subscription: &Subscription) {
        (**self).prepare_subscription(subscription)
    }
    fn release_subscription(&self, subscription: &Subscription) {
        (**self).release_subscription(subscription)
    }
    fn cache_stats(&self) -> CacheStats {
        (**self).cache_stats()
    }
    fn cache_miss_count(&self) -> u64 {
        (**self).cache_miss_count()
    }
    fn covering_safe(&self) -> bool {
        (**self).covering_safe()
    }
}

/// The paper's approximate probabilistic semantic matcher.
///
/// Pipeline (Fig. 4): build the combined attributes–values
/// [`SimilarityMatrix`] under the configured [`SemanticMeasure`], then
/// find the top-1 (Hungarian) or top-k (Murty) maximum-product mappings of
/// predicates to tuples, exposing both probability spaces (`Pσ` per
/// correspondence, `P` over mappings).
///
/// * with a [`tep_semantics::ThematicEsaMeasure`] this is the **thematic
///   matcher** of the paper;
/// * with a [`tep_semantics::EsaMeasure`] it is the **non-thematic
///   approximate** baseline \[16\];
/// * with a [`tep_semantics::PrecomputedMeasure`] it is the §5.1
///   precomputed-scores configuration.
pub struct ProbabilisticMatcher<M> {
    measure: M,
    config: MatcherConfig,
    display_name: &'static str,
}

impl<M: SemanticMeasure> ProbabilisticMatcher<M> {
    /// Creates a matcher over `measure`.
    pub fn new(measure: M, config: MatcherConfig) -> ProbabilisticMatcher<M> {
        ProbabilisticMatcher {
            display_name: measure_display_name(measure.name()),
            measure,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// The underlying measure.
    pub fn measure(&self) -> &M {
        &self.measure
    }

    /// Builds the similarity matrix for a pair (exposed for diagnostics
    /// and the benchmark harness).
    pub fn similarity_matrix(
        &self,
        subscription: &Subscription,
        event: &Event,
    ) -> SimilarityMatrix {
        SimilarityMatrix::build(subscription, event, &self.measure, self.config.combiner)
    }

    /// The full matching pipeline (Fig. 4) under an arbitrary measure —
    /// the one implementation behind both [`Matcher::match_event`] (the
    /// configured measure) and [`Matcher::match_event_degraded`] (the same
    /// measure behind a fidelity-limiting adapter).
    fn match_with_measure<S: SemanticMeasure + ?Sized>(
        &self,
        subscription: &Subscription,
        event: &Event,
        measure: &S,
    ) -> MatchResult {
        let n = subscription.predicates().len();
        let m = event.tuples().len();
        if n == 0 || n > m {
            // A valid mapping needs one distinct tuple per predicate.
            return MatchResult::no_match();
        }
        MATRIX_SCRATCH.with(|scratch| {
            let (matrix, cost) = &mut *scratch.borrow_mut();
            // Row-wise construction bails out on the first predicate with
            // no feasible tuple — the common case on heterogeneous
            // workloads.
            if !matrix.rebuild_pruned(
                subscription,
                event,
                measure,
                self.config.combiner,
                self.config.score_floor,
            ) {
                return MatchResult::no_match();
            }

            // Cost = -ln(similarity); cells under the floor become
            // forbidden edges so a zero-similarity correspondence can
            // never appear in a reported mapping.
            cost.refill(n, m, 0.0);
            for i in 0..n {
                for j in 0..m {
                    let s = matrix.get(i, j);
                    if s < self.config.score_floor {
                        cost.forbid(i, j);
                    } else {
                        cost.set(i, j, -s.ln());
                    }
                }
            }

            let solutions = match self.config.mode {
                MatchMode::Top1 => assignment::solve(cost).into_iter().collect::<Vec<_>>(),
                MatchMode::TopK(k) => assignment::solve_top_k(cost, k),
            };
            if solutions.is_empty() {
                return MatchResult::no_match();
            }

            let mappings: Vec<Mapping> = solutions
                .into_iter()
                .map(|sol| {
                    let correspondences = sol
                        .assignment
                        .iter()
                        .enumerate()
                        .map(|(i, &j)| Correspondence {
                            predicate: i,
                            tuple: j,
                            similarity: matrix.get(i, j),
                            probability: matrix.correspondence_probability(i, j),
                        })
                        .collect();
                    Mapping::new(correspondences)
                })
                .collect();
            MatchResult::from_mappings(mappings)
        })
    }
}

/// Fidelity-limiting adapter: scores through the wrapped measure's warm
/// state only (or through term identity alone), never computing cold
/// semantic work. Backs [`Matcher::match_event_degraded`] for
/// [`ProbabilisticMatcher`].
#[derive(Debug)]
struct DegradedMeasure<'a, M: SemanticMeasure> {
    inner: &'a M,
    exact_only: bool,
}

impl<M: SemanticMeasure> SemanticMeasure for DegradedMeasure<'_, M> {
    fn relatedness(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64 {
        if term_s == term_e {
            return 1.0;
        }
        if self.exact_only {
            return 0.0;
        }
        self.inner
            .relatedness_warm(term_s, theme_s, term_e, theme_e)
            .unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl<M: SemanticMeasure> fmt::Debug for ProbabilisticMatcher<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbabilisticMatcher")
            .field("measure", &self.measure)
            .field("config", &self.config)
            .finish()
    }
}

impl<M: SemanticMeasure> Matcher for ProbabilisticMatcher<M> {
    fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
        self.match_with_measure(subscription, event, &self.measure)
    }

    fn begin_event(&self, _event: &Event) {
        crate::similarity::begin_event_scope();
    }

    fn match_event_degraded(
        &self,
        subscription: &Subscription,
        event: &Event,
        mode: DegradedMatching,
    ) -> MatchResult {
        match mode {
            DegradedMatching::Full => self.match_event(subscription, event),
            DegradedMatching::CacheOnly => self.match_with_measure(
                subscription,
                event,
                &DegradedMeasure {
                    inner: &self.measure,
                    exact_only: false,
                },
            ),
            DegradedMatching::ExactOnly => self.match_with_measure(
                subscription,
                event,
                &DegradedMeasure {
                    inner: &self.measure,
                    exact_only: true,
                },
            ),
        }
    }

    fn name(&self) -> &'static str {
        self.display_name
    }

    fn explain_match(
        &self,
        subscription: &Subscription,
        event: &Event,
        result: &MatchResult,
    ) -> MatchDetail {
        if subscription.predicates().is_empty() || event.tuples().is_empty() {
            return MatchDetail::from_result(self.display_name, subscription, event, result);
        }
        // Rebuild the full (unpruned) matrix: for accepted results this
        // replays cache-warm cells; for rejected ones it fills in the
        // rows the pruned hot-path build skipped, so rejections explain
        // every predicate too.
        let matrix = self.similarity_matrix(subscription, event);
        let (_, ths) = theme_for_tags(subscription.theme_tags());
        let (_, the) = theme_for_tags(event.theme_tags());
        let (ths, the) = (ths.as_ref(), the.as_ref());
        let best = result.best();
        let predicates = subscription
            .predicates()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Pair with the best mapping's tuple; for rejected pairs,
                // with the row's most similar tuple.
                let j = best.and_then(|m| m.tuple_of(i)).unwrap_or_else(|| {
                    (0..matrix.cols())
                        .max_by(|&a, &b| {
                            matrix
                                .get(i, a)
                                .partial_cmp(&matrix.get(i, b))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .unwrap_or(0)
                });
                let t = &event.tuples()[j];
                let attribute_detail = p
                    .is_attribute_approx()
                    .then(|| self.measure.explain(p.attribute(), ths, t.attribute(), the));
                // Mirror the similarity-matrix semantics: the value side
                // is semantic only for approximate `=` predicates.
                let value_detail = (p.is_value_approx() && p.op() == ComparisonOp::Eq)
                    .then(|| self.measure.explain(p.value(), ths, t.value(), the));
                PredicateExplanation {
                    predicate: i,
                    attribute: p.attribute().to_string(),
                    value: p.value().to_string(),
                    tuple: Some(j),
                    tuple_attribute: Some(t.attribute().to_string()),
                    tuple_value: Some(t.value().to_string()),
                    similarity: matrix.get(i, j),
                    attribute_detail,
                    value_detail,
                }
            })
            .collect();
        MatchDetail {
            matcher: self.display_name,
            score: result.score(),
            mapped: !result.is_empty(),
            predicates,
        }
    }

    fn prepare_subscription(&self, subscription: &Subscription) {
        let (_, theme) = theme_for_tags(subscription.theme_tags());
        for_each_approx_term(subscription, |term| {
            self.measure.prepare_term(term, &theme);
        });
    }

    fn release_subscription(&self, subscription: &Subscription) {
        let (_, theme) = theme_for_tags(subscription.theme_tags());
        for_each_approx_term(subscription, |term| {
            self.measure.release_term(term, &theme);
        });
    }

    fn cache_stats(&self) -> CacheStats {
        self.measure.cache_stats()
    }

    fn cache_miss_count(&self) -> u64 {
        self.measure.cache_miss_count()
    }
}

/// The predicate terms the measure will be asked about: approximate
/// attributes always, approximate values only under `=` (relational
/// operators compare numerically, never semantically).
fn for_each_approx_term(subscription: &Subscription, mut f: impl FnMut(&str)) {
    for p in subscription.predicates() {
        if p.is_attribute_approx() {
            f(p.attribute());
        }
        if p.is_value_approx() && p.op() == tep_events::ComparisonOp::Eq {
            f(p.value());
        }
    }
}

fn measure_display_name(measure_name: &str) -> &'static str {
    match measure_name {
        "thematic-esa" => "thematic",
        "esa" => "non-thematic",
        "precomputed-esa" => "precomputed",
        _ => "probabilistic",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Combiner;
    use std::collections::HashMap;
    use tep_semantics::Theme;

    #[derive(Debug, Default)]
    struct StubMeasure {
        scores: HashMap<(String, String), f64>,
    }

    impl StubMeasure {
        fn with(mut self, a: &str, b: &str, s: f64) -> StubMeasure {
            self.scores.insert((a.into(), b.into()), s);
            self.scores.insert((b.into(), a.into()), s);
            self
        }
    }

    impl SemanticMeasure for StubMeasure {
        fn relatedness(&self, a: &str, _: &Theme, b: &str, _: &Theme) -> f64 {
            if a == b {
                1.0
            } else {
                self.scores
                    .get(&(a.to_string(), b.to_string()))
                    .copied()
                    .unwrap_or(0.0)
            }
        }
    }

    fn paper_event() -> Event {
        Event::builder()
            .tuple("type", "increased energy consumption event")
            .tuple("measurement unit", "kilowatt hour")
            .tuple("device", "computer")
            .tuple("office", "room 112")
            .build()
            .unwrap()
    }

    fn paper_subscription() -> Subscription {
        Subscription::builder()
            .predicate_approx_value("type", "increased energy usage event")
            .predicate_full_approx("device", "laptop")
            .predicate_exact("office", "room 112")
            .build()
            .unwrap()
    }

    fn stub() -> StubMeasure {
        StubMeasure::default()
            .with(
                "increased energy usage event",
                "increased energy consumption event",
                0.9,
            )
            .with("laptop", "computer", 0.8)
    }

    #[test]
    fn recovers_the_paper_top1_mapping() {
        // §3: σ* maps type↔type, device~↔device, office↔office.
        let m = ProbabilisticMatcher::new(stub(), MatcherConfig::top1());
        let r = m.match_event(&paper_subscription(), &paper_event());
        let best = r.best().expect("must match");
        assert_eq!(best.tuple_of(0), Some(0)); // type ↔ type
        assert_eq!(best.tuple_of(1), Some(2)); // device ↔ device
        assert_eq!(best.tuple_of(2), Some(3)); // office ↔ office
        assert!((best.score() - 0.9 * 0.8 * 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_match_when_fewer_tuples_than_predicates() {
        let e = Event::builder().tuple("type", "x").build().unwrap();
        let m = ProbabilisticMatcher::new(stub(), MatcherConfig::top1());
        assert!(m.match_event(&paper_subscription(), &e).is_empty());
    }

    #[test]
    fn no_match_when_exact_predicate_fails() {
        let s = Subscription::builder()
            .predicate_exact("office", "room 999")
            .build()
            .unwrap();
        let m = ProbabilisticMatcher::new(stub(), MatcherConfig::top1());
        assert!(m.match_event(&s, &paper_event()).is_empty());
    }

    #[test]
    fn top_k_yields_ranked_alternatives() {
        // Two plausible targets for one predicate.
        let stub = StubMeasure::default()
            .with("laptop", "computer", 0.8)
            .with("device", "measurement unit", 0.5)
            .with("laptop", "kilowatt hour", 0.3);
        let s = Subscription::builder()
            .predicate_full_approx("device", "laptop")
            .build()
            .unwrap();
        let m = ProbabilisticMatcher::new(stub, MatcherConfig::top_k(3));
        let r = m.match_event(&s, &paper_event());
        assert!(r.mappings().len() >= 2);
        assert!(r.mappings()[0].score() >= r.mappings()[1].score());
        // Probabilities over the enumerated mappings sum to 1.
        let total: f64 = r.mappings().iter().map(Mapping::probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_subscription_on_exact_event_scores_one() {
        let s = Subscription::builder()
            .predicate_exact("device", "computer")
            .predicate_exact("office", "room 112")
            .build()
            .unwrap();
        let m = ProbabilisticMatcher::new(StubMeasure::default(), MatcherConfig::top1());
        let r = m.match_event(&s, &paper_event());
        assert_eq!(r.score(), 1.0);
        assert!(r.is_match(1.0));
    }

    #[test]
    fn injective_mapping_no_tuple_reused() {
        // Both predicates are drawn to the same tuple; the mapping must
        // still be injective.
        let stub = StubMeasure::default()
            .with("a1", "x", 0.9)
            .with("a2", "x", 0.8)
            .with("v1", "1", 0.9)
            .with("v2", "1", 0.8)
            .with("a1", "y", 0.2)
            .with("a2", "y", 0.2)
            .with("v1", "2", 0.2)
            .with("v2", "2", 0.2);
        let s = Subscription::builder()
            .predicate_full_approx("a1", "v1")
            .predicate_full_approx("a2", "v2")
            .build()
            .unwrap();
        let e = Event::builder()
            .tuple("x", "1")
            .tuple("y", "2")
            .build()
            .unwrap();
        let m = ProbabilisticMatcher::new(stub, MatcherConfig::top1());
        let best = m.match_event(&s, &e);
        let best = best.best().unwrap();
        let t0 = best.tuple_of(0).unwrap();
        let t1 = best.tuple_of(1).unwrap();
        assert_ne!(t0, t1);
        // Optimal: p0↔x (0.81), p1↔y (0.04) beats p0↔y (0.04), p1↔x (0.64).
        assert_eq!(t0, 0);
        assert_eq!(t1, 1);
    }

    #[test]
    fn explain_matches_the_accepted_mapping() {
        let m = ProbabilisticMatcher::new(stub(), MatcherConfig::top1());
        let sub = paper_subscription();
        let event = paper_event();
        let r = m.match_event(&sub, &event);
        let d = m.explain_match(&sub, &event, &r);
        assert!(d.mapped);
        assert_eq!(d.matcher, "probabilistic");
        assert!((d.score - r.score()).abs() < 1e-12);
        assert_eq!(d.predicates.len(), 3);
        // Pairings mirror the best mapping.
        assert_eq!(d.predicates[0].tuple, Some(0));
        assert_eq!(d.predicates[1].tuple, Some(2));
        assert_eq!(d.predicates[2].tuple, Some(3));
        // Per-predicate similarities multiply back into the score.
        let product: f64 = d.predicates.iter().map(|p| p.similarity).product();
        assert!((product - r.score()).abs() < 1e-9);
        // Predicate 0 (`type` approx value) has value geometry only;
        // predicate 1 (full approx) has both; predicate 2 (exact) none.
        assert!(d.predicates[0].attribute_detail.is_none());
        assert!(d.predicates[0].value_detail.is_some());
        assert!(d.predicates[1].attribute_detail.is_some());
        assert!(d.predicates[1].value_detail.is_some());
        assert!(d.predicates[2].attribute_detail.is_none());
        assert!(d.predicates[2].value_detail.is_none());
        assert_eq!(
            d.predicates[1].tuple_attribute.as_deref(),
            Some("device"),
            "paired tuple text is carried along"
        );
        // StubMeasure uses the default explain: score only, no distance.
        let vd = d.predicates[0].value_detail.unwrap();
        assert!((vd.score - 0.9).abs() < 1e-12);
        assert_eq!(vd.distance, None);
    }

    #[test]
    fn explain_covers_rejections_with_best_rows() {
        // The exact predicate fails → no mapping; the explanation still
        // pairs every predicate with its most similar tuple.
        let s = Subscription::builder()
            .predicate_approx_value("type", "increased energy usage event")
            .predicate_exact("office", "room 999")
            .build()
            .unwrap();
        let m = ProbabilisticMatcher::new(stub(), MatcherConfig::top1());
        let event = paper_event();
        let r = m.match_event(&s, &event);
        assert!(r.is_empty());
        let d = m.explain_match(&s, &event, &r);
        assert!(!d.mapped);
        assert_eq!(d.score, 0.0);
        assert_eq!(d.predicates.len(), 2);
        // Row argmax: the type predicate's best tuple is tuple 0 (0.9).
        assert_eq!(d.predicates[0].tuple, Some(0));
        assert!((d.predicates[0].similarity - 0.9).abs() < 1e-12);
        // The failed exact row reports a zero similarity.
        assert_eq!(d.predicates[1].similarity, 0.0);
    }

    #[test]
    fn default_explain_reports_pairings_without_geometry() {
        use crate::baselines::ExactMatcher;
        let m = ExactMatcher::new();
        let s = Subscription::builder()
            .predicate_exact("office", "room 112")
            .build()
            .unwrap();
        let event = paper_event();
        let r = m.match_event(&s, &event);
        assert!(!r.is_empty());
        let d = m.explain_match(&s, &event, &r);
        assert!(d.mapped);
        assert_eq!(d.predicates.len(), 1);
        assert_eq!(d.predicates[0].tuple, Some(3), "office ↔ office");
        assert_eq!(d.predicates[0].similarity, 1.0);
        assert!(d.predicates[0].attribute_detail.is_none());
        assert!(d.predicates[0].value_detail.is_none());

        // A rejected pair through the default path: no pairing is known.
        let miss = Subscription::builder()
            .predicate_exact("office", "room 999")
            .build()
            .unwrap();
        let r = m.match_event(&miss, &event);
        let d = m.explain_match(&miss, &event, &r);
        assert!(!d.mapped);
        assert_eq!(d.predicates[0].tuple, None);
        assert_eq!(d.predicates[0].similarity, 0.0);
    }

    /// A measure whose full path knows every pair but whose warm path only
    /// knows an allowlisted subset — models a half-warm cache exactly.
    #[derive(Debug, Default)]
    struct HalfWarmMeasure {
        full: StubMeasure,
        warm: HashMap<(String, String), f64>,
    }

    impl HalfWarmMeasure {
        fn warm(mut self, a: &str, b: &str, s: f64) -> HalfWarmMeasure {
            self.warm.insert((a.into(), b.into()), s);
            self.warm.insert((b.into(), a.into()), s);
            self
        }
    }

    impl SemanticMeasure for HalfWarmMeasure {
        fn relatedness(&self, a: &str, ths: &Theme, b: &str, the: &Theme) -> f64 {
            self.full.relatedness(a, ths, b, the)
        }
        fn relatedness_warm(&self, a: &str, _: &Theme, b: &str, _: &Theme) -> Option<f64> {
            if a == b {
                return Some(1.0);
            }
            self.warm.get(&(a.to_string(), b.to_string())).copied()
        }
    }

    #[test]
    fn degraded_full_is_identical_to_match_event() {
        let m = ProbabilisticMatcher::new(stub(), MatcherConfig::top1());
        let sub = paper_subscription();
        let event = paper_event();
        let full = m.match_event(&sub, &event);
        let degraded = m.match_event_degraded(&sub, &event, DegradedMatching::Full);
        assert_eq!(full.score().to_bits(), degraded.score().to_bits());
        assert_eq!(full.is_empty(), degraded.is_empty());
    }

    #[test]
    fn cache_only_uses_warm_scores_and_drops_cold_pairs() {
        // Warm path knows the type synonym but not laptop↔computer: the
        // full-approx device predicate loses its only feasible tuple, so
        // the cache-only rung rejects what the full rung accepts.
        let measure = HalfWarmMeasure {
            full: stub(),
            warm: HashMap::new(),
        }
        .warm(
            "increased energy usage event",
            "increased energy consumption event",
            0.9,
        );
        let m = ProbabilisticMatcher::new(measure, MatcherConfig::top1());
        let sub = paper_subscription();
        let event = paper_event();
        assert!(!m.match_event(&sub, &event).is_empty(), "full path matches");
        assert!(
            m.match_event_degraded(&sub, &event, DegradedMatching::CacheOnly)
                .is_empty(),
            "cold device pair must sink the cache-only mapping"
        );
        // Fully warm: cache-only reproduces the full result exactly.
        let warm_measure = HalfWarmMeasure {
            full: stub(),
            warm: HashMap::new(),
        }
        .warm(
            "increased energy usage event",
            "increased energy consumption event",
            0.9,
        )
        .warm("laptop", "computer", 0.8);
        let m = ProbabilisticMatcher::new(warm_measure, MatcherConfig::top1());
        let full = m.match_event(&sub, &event);
        let warm = m.match_event_degraded(&sub, &event, DegradedMatching::CacheOnly);
        assert_eq!(full.score().to_bits(), warm.score().to_bits());
    }

    #[test]
    fn exact_only_keeps_term_identity_and_nothing_else() {
        let m = ProbabilisticMatcher::new(stub(), MatcherConfig::top1());
        // The paper subscription needs semantics (device~laptop): gone.
        assert!(m
            .match_event_degraded(
                &paper_subscription(),
                &paper_event(),
                DegradedMatching::ExactOnly
            )
            .is_empty());
        // A literally identical approximate predicate still matches.
        let s = Subscription::builder()
            .predicate_full_approx("device", "computer")
            .build()
            .unwrap();
        let r = m.match_event_degraded(&s, &paper_event(), DegradedMatching::ExactOnly);
        assert!(!r.is_empty());
        assert_eq!(r.score(), 1.0);
    }

    #[test]
    fn default_degraded_falls_back_to_match_event() {
        use crate::baselines::ExactMatcher;
        let m = ExactMatcher::new();
        let s = Subscription::builder()
            .predicate_exact("office", "room 112")
            .build()
            .unwrap();
        for mode in [
            DegradedMatching::Full,
            DegradedMatching::CacheOnly,
            DegradedMatching::ExactOnly,
        ] {
            assert!(!m.match_event_degraded(&s, &paper_event(), mode).is_empty());
        }
        assert_eq!(DegradedMatching::CacheOnly.as_str(), "cache_only");
    }

    #[test]
    fn names_follow_measure() {
        let m = ProbabilisticMatcher::new(StubMeasure::default(), MatcherConfig::top1());
        assert_eq!(m.name(), "probabilistic");
        assert_eq!(m.config().combiner, Combiner::Product);
    }
}
