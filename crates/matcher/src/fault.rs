//! Deterministic fault injection for chaos testing the broker runtime.

use crate::mapping::MatchResult;
use crate::matcher::Matcher;
use std::time::Duration;
use tep_events::{Event, Subscription};

/// Rates and seed driving a [`FaultInjectingMatcher`].
///
/// All rates are probabilities in `[0, 1]`. Panic and error are mutually
/// exclusive (panic wins); latency is decided independently and can
/// combine with either.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed mixed into every per-event fault decision.
    pub seed: u64,
    /// Probability that matching an event panics.
    pub panic_rate: f64,
    /// Probability that matching an event degrades to a no-match result
    /// without consulting the inner matcher.
    pub error_rate: f64,
    /// Probability that matching an event sleeps for [`FaultConfig::latency`]
    /// before delegating.
    pub latency_rate: f64,
    /// The injected latency.
    pub latency: Duration,
}

impl FaultConfig {
    /// A config that injects no faults at all.
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            panic_rate: 0.0,
            error_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::from_micros(50),
        }
    }

    /// Replaces the panic rate.
    pub fn with_panic_rate(mut self, rate: f64) -> FaultConfig {
        self.panic_rate = rate;
        self
    }

    /// Replaces the error rate.
    pub fn with_error_rate(mut self, rate: f64) -> FaultConfig {
        self.error_rate = rate;
        self
    }

    /// Replaces the latency rate and duration.
    pub fn with_latency(mut self, rate: f64, latency: Duration) -> FaultConfig {
        self.latency_rate = rate;
        self.latency = latency;
        self
    }
}

/// The fault (if any) injected for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault; the inner matcher runs normally.
    None,
    /// `match_event` panics.
    Panic,
    /// `match_event` returns [`MatchResult::no_match`] without running
    /// the inner matcher.
    Error,
    /// `match_event` sleeps before delegating.
    Latency,
}

/// A decorator over any [`Matcher`] that injects panics, degraded results,
/// and latency at configurable rates — the chaos-testing harness for the
/// supervised broker runtime.
///
/// Fault decisions are a **pure function of the event content and the
/// seed**, not of a stateful RNG: the same event always faults the same
/// way regardless of which worker thread matches it, how often it is
/// retried, or how threads interleave. Tests can therefore pre-compute
/// exactly which events will fault (via [`FaultInjectingMatcher::fault_for`])
/// and assert broker counters against exact expected values.
#[derive(Debug)]
pub struct FaultInjectingMatcher<M> {
    inner: M,
    config: FaultConfig,
}

impl<M: Matcher> FaultInjectingMatcher<M> {
    /// Wraps `inner` with the given fault configuration.
    pub fn new(inner: M, config: FaultConfig) -> FaultInjectingMatcher<M> {
        assert!(
            (0.0..=1.0).contains(&config.panic_rate)
                && (0.0..=1.0).contains(&config.error_rate)
                && (0.0..=1.0).contains(&config.latency_rate),
            "fault rates must be probabilities"
        );
        FaultInjectingMatcher { inner, config }
    }

    /// The inner matcher.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The deterministic primary fault decision for `event` (panic/error);
    /// latency is decided separately by [`FaultInjectingMatcher::is_slow`].
    pub fn fault_for(&self, event: &Event) -> Fault {
        let u = unit_interval(splitmix64(self.event_hash(event)));
        if u < self.config.panic_rate {
            Fault::Panic
        } else if u < self.config.panic_rate + self.config.error_rate {
            Fault::Error
        } else {
            Fault::None
        }
    }

    /// Whether matching `event` sleeps for the configured latency.
    pub fn is_slow(&self, event: &Event) -> bool {
        let u = unit_interval(splitmix64(self.event_hash(event) ^ 0xA5A5_5A5A_F00D_BEEF));
        u < self.config.latency_rate
    }

    /// Whether `event` triggers any fault at all.
    pub fn is_faulty(&self, event: &Event) -> bool {
        self.fault_for(event) != Fault::None || self.is_slow(event)
    }

    fn event_hash(&self, event: &Event) -> u64 {
        let mut h = self.config.seed ^ 0x9E37_79B9_7F4A_7C15;
        for tag in event.theme_tags() {
            h = mix(h, fnv1a(tag));
        }
        for t in event.tuples() {
            h = mix(h, fnv1a(t.attribute()));
            h = mix(h, fnv1a(t.value()));
        }
        h
    }
}

impl<M: Matcher> Matcher for FaultInjectingMatcher<M> {
    fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
        if self.is_slow(event) {
            std::thread::sleep(self.config.latency);
        }
        match self.fault_for(event) {
            Fault::Panic => panic!("injected matcher fault"),
            Fault::Error => MatchResult::no_match(),
            _ => self.inner.match_event(subscription, event),
        }
    }

    fn begin_event(&self, event: &Event) {
        self.inner.begin_event(event)
    }

    fn name(&self) -> &'static str {
        "fault-injecting"
    }

    fn explain_match(
        &self,
        subscription: &Subscription,
        event: &Event,
        result: &MatchResult,
    ) -> crate::explain::MatchDetail {
        // Explanations come from the inner matcher: the wrapper only
        // decides *whether* a match ran, never how it scored.
        self.inner.explain_match(subscription, event, result)
    }

    fn prepare_subscription(&self, subscription: &Subscription) {
        self.inner.prepare_subscription(subscription)
    }

    fn release_subscription(&self, subscription: &Subscription) {
        self.inner.release_subscription(subscription)
    }

    fn cache_stats(&self) -> tep_semantics::CacheStats {
        self.inner.cache_stats()
    }

    fn cache_miss_count(&self) -> u64 {
        self.inner.cache_miss_count()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

fn mix(acc: u64, h: u64) -> u64 {
    splitmix64(acc ^ h.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit_interval(h: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::ExactMatcher;
    use tep_events::{parse_event, parse_subscription};

    fn matcher(panic_rate: f64, error_rate: f64) -> FaultInjectingMatcher<ExactMatcher> {
        FaultInjectingMatcher::new(
            ExactMatcher::new(),
            FaultConfig::none(42)
                .with_panic_rate(panic_rate)
                .with_error_rate(error_rate),
        )
    }

    #[test]
    fn decisions_are_deterministic_per_event() {
        let m = matcher(0.3, 0.3);
        for i in 0..50 {
            let e = parse_event(&format!("{{k: v{i}}}")).unwrap();
            let first = m.fault_for(&e);
            for _ in 0..5 {
                assert_eq!(m.fault_for(&e), first);
            }
        }
    }

    #[test]
    fn rates_are_approximately_respected() {
        let m = matcher(0.25, 0.25);
        let mut panics = 0;
        let mut errors = 0;
        let total = 2000;
        for i in 0..total {
            let e = parse_event(&format!("{{k: v{i}, j: w{i}}}")).unwrap();
            match m.fault_for(&e) {
                Fault::Panic => panics += 1,
                Fault::Error => errors += 1,
                _ => {}
            }
        }
        let quarter = total / 4;
        assert!(
            (panics as i64 - quarter).abs() < total / 10,
            "{panics}/{total} panics"
        );
        assert!(
            (errors as i64 - quarter).abs() < total / 10,
            "{errors}/{total} errors"
        );
    }

    #[test]
    fn zero_rates_never_fault() {
        let m = matcher(0.0, 0.0);
        for i in 0..200 {
            let e = parse_event(&format!("{{k: v{i}}}")).unwrap();
            assert_eq!(m.fault_for(&e), Fault::None);
            assert!(!m.is_slow(&e));
            assert!(!m.is_faulty(&e));
        }
    }

    #[test]
    #[should_panic(expected = "injected matcher fault")]
    fn panic_fault_panics() {
        let m = matcher(1.0, 0.0);
        let s = parse_subscription("{k= v}").unwrap();
        let e = parse_event("{k: v}").unwrap();
        m.match_event(&s, &e);
    }

    #[test]
    fn error_fault_degrades_to_no_match() {
        let m = matcher(0.0, 1.0);
        let s = parse_subscription("{k= v}").unwrap();
        let e = parse_event("{k: v}").unwrap();
        assert!(m.match_event(&s, &e).is_empty());
    }

    #[test]
    fn clean_events_delegate_to_inner() {
        let m = matcher(0.0, 0.0);
        let s = parse_subscription("{k= v}").unwrap();
        let e = parse_event("{k: v}").unwrap();
        assert_eq!(m.match_event(&s, &e).score(), 1.0);
    }

    #[test]
    fn different_seeds_fault_different_events() {
        let a = FaultInjectingMatcher::new(
            ExactMatcher::new(),
            FaultConfig::none(1).with_panic_rate(0.5),
        );
        let b = FaultInjectingMatcher::new(
            ExactMatcher::new(),
            FaultConfig::none(2).with_panic_rate(0.5),
        );
        let mut differs = false;
        for i in 0..64 {
            let e = parse_event(&format!("{{k: v{i}}}")).unwrap();
            if a.fault_for(&e) != b.fault_for(&e) {
                differs = true;
                break;
            }
        }
        assert!(differs, "seeds must influence fault decisions");
    }
}
