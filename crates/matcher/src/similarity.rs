//! The combined attributes–values similarity matrix (paper Fig. 4).

use crate::config::Combiner;
use tep_events::{ComparisonOp, Event, Subscription};
use tep_semantics::{theme_for_tags, SemanticMeasure};

/// The `n × m` matrix of combined similarities between the `n` predicates
/// of a subscription and the `m` tuples of an event.
///
/// Cell `(i, j)` combines:
///
/// * **attribute similarity** — `sm(ths, aᵢ, the, aⱼ)` when predicate `i`
///   carries the attribute `~`, else exact equality in `{0, 1}`;
/// * **value similarity** — likewise for the value side;
///
/// via the configured [`Combiner`]. Themes are passed through to the
/// measure exactly as in Fig. 4 (`sm(ths, aᵢ, the, aⱼ)`), which is where
/// the thematic and non-thematic instantiations differ.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl SimilarityMatrix {
    /// Builds the matrix for `subscription` × `event` under `measure`.
    pub fn build<M: SemanticMeasure + ?Sized>(
        subscription: &Subscription,
        event: &Event,
        measure: &M,
        combiner: Combiner,
    ) -> SimilarityMatrix {
        SimilarityMatrix::build_pruned(subscription, event, measure, combiner, f64::NEG_INFINITY)
            .expect("an infinitely low floor never prunes")
    }

    /// Builds the matrix row by row, bailing out with `None` as soon as a
    /// predicate's entire row falls below `floor` — no complete mapping
    /// can exist then, so the remaining rows would be wasted work. This
    /// is the matcher's hot path: on heterogeneous workloads most events
    /// fail on their first exact predicate.
    pub fn build_pruned<M: SemanticMeasure + ?Sized>(
        subscription: &Subscription,
        event: &Event,
        measure: &M,
        combiner: Combiner,
        floor: f64,
    ) -> Option<SimilarityMatrix> {
        // Interned lookup: repeat tag lists skip `Theme::new`'s
        // normalize-sort-hash work, the old per-call allocation hot spot.
        let (_, ths) = theme_for_tags(subscription.theme_tags());
        let (_, the) = theme_for_tags(event.theme_tags());
        let (ths, the) = (ths.as_ref(), the.as_ref());
        let rows = subscription.predicates().len();
        let cols = event.tuples().len();
        let mut data = Vec::with_capacity(rows * cols);
        for p in subscription.predicates() {
            let mut feasible = false;
            for t in event.tuples() {
                let attr_sim = if p.is_attribute_approx() {
                    measure.relatedness(p.attribute(), ths, t.attribute(), the)
                } else {
                    exact(p.attribute(), t.attribute())
                };
                // A vetoed attribute makes the pair impossible under
                // Product/GeometricMean/Min; skip the value-side measure
                // call in that common case.
                let cell = if attr_sim == 0.0 && combiner != Combiner::ArithmeticMean {
                    0.0
                } else {
                    let value_sim = match p.op() {
                        ComparisonOp::Eq => {
                            if p.is_value_approx() {
                                measure.relatedness(p.value(), ths, t.value(), the)
                            } else {
                                exact(p.value(), t.value())
                            }
                        }
                        // Relational operators are boolean by definition.
                        op => {
                            if op.evaluate(t.value(), p.value()) {
                                1.0
                            } else {
                                0.0
                            }
                        }
                    };
                    combiner.combine(attr_sim, value_sim).clamp(0.0, 1.0)
                };
                feasible |= cell >= floor;
                data.push(cell);
            }
            if !feasible {
                return None;
            }
        }
        Some(SimilarityMatrix { rows, cols, data })
    }

    /// Number of predicates (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of tuples (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The combined similarity of predicate `i` and tuple `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sum of row `i` (the normalizer of the correspondence probability
    /// space `Pσ` for predicate `i`).
    pub fn row_sum(&self, i: usize) -> f64 {
        self.data[i * self.cols..(i + 1) * self.cols].iter().sum()
    }

    /// The correspondence probability `P((pᵢ ↔ tⱼ))`: the row-normalized
    /// similarity (0 when the whole row is 0).
    pub fn correspondence_probability(&self, i: usize, j: usize) -> f64 {
        let sum = self.row_sum(i);
        if sum == 0.0 {
            0.0
        } else {
            self.get(i, j) / sum
        }
    }
}

fn exact(a: &str, b: &str) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tep_events::{Event, Subscription};
    use tep_semantics::Theme;

    /// A deterministic stub measure for unit tests.
    #[derive(Debug, Default)]
    struct StubMeasure {
        scores: HashMap<(String, String), f64>,
    }

    impl StubMeasure {
        fn with(mut self, a: &str, b: &str, s: f64) -> StubMeasure {
            self.scores.insert((a.into(), b.into()), s);
            self.scores.insert((b.into(), a.into()), s);
            self
        }
    }

    impl SemanticMeasure for StubMeasure {
        fn relatedness(&self, a: &str, _: &Theme, b: &str, _: &Theme) -> f64 {
            if a == b {
                1.0
            } else {
                self.scores
                    .get(&(a.to_string(), b.to_string()))
                    .copied()
                    .unwrap_or(0.0)
            }
        }
    }

    fn event() -> Event {
        Event::builder()
            .tuple("type", "increased energy consumption event")
            .tuple("device", "computer")
            .tuple("office", "room 112")
            .build()
            .unwrap()
    }

    #[test]
    fn exact_predicates_use_string_equality() {
        let s = Subscription::builder()
            .predicate_exact("office", "room 112")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &StubMeasure::default(), Combiner::Product);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn approx_value_consults_the_measure() {
        let stub = StubMeasure::default().with("laptop", "computer", 0.8);
        let s = Subscription::builder()
            .predicate_approx_value("device", "laptop")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &stub, Combiner::Product);
        // attribute exact-matches 'device' (1.0), value 0.8 → 0.8.
        assert!((m.get(0, 1) - 0.8).abs() < 1e-12);
        // attribute mismatch on other tuples → 0.
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn approx_attribute_consults_the_measure() {
        let stub = StubMeasure::default().with("device", "office", 0.5);
        let s = Subscription::builder()
            .predicate(tep_events::Predicate::new("device", "room 112").approx_attribute())
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &stub, Combiner::Product);
        // col 2: attr sim 0.5 (device~office), value exact 1.0 → 0.5.
        assert!((m.get(0, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_row_normalize() {
        let stub = StubMeasure::default()
            .with("laptop", "computer", 0.6)
            .with("laptop", "room 112", 0.2);
        let s = Subscription::builder()
            .predicate_full_approx("device", "laptop")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &stub, Combiner::Product);
        let total: f64 = (0..3).map(|j| m.correspondence_probability(0, j)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_row_has_zero_probabilities() {
        let s = Subscription::builder()
            .predicate_exact("nothing", "matches")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &StubMeasure::default(), Combiner::Product);
        assert_eq!(m.row_sum(0), 0.0);
        assert_eq!(m.correspondence_probability(0, 0), 0.0);
    }

    #[test]
    fn relational_predicates_compare_numerically() {
        use tep_events::ComparisonOp;
        let e = Event::builder()
            .tuple("temperature", "32.5 degrees celsius")
            .tuple("noise", "80")
            .build()
            .unwrap();
        let hot = Subscription::builder()
            .predicate_cmp("temperature", ComparisonOp::Gt, "30")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&hot, &e, &StubMeasure::default(), Combiner::Product);
        assert_eq!(m.get(0, 0), 1.0); // 32.5 > 30
        assert_eq!(m.get(0, 1), 0.0); // attribute mismatch vetoes

        let quiet = Subscription::builder()
            .predicate_cmp("noise", ComparisonOp::Le, "75")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&quiet, &e, &StubMeasure::default(), Combiner::Product);
        assert_eq!(m.get(0, 1), 0.0); // 80 > 75
    }

    #[test]
    fn relational_with_approximate_attribute() {
        use tep_events::{ComparisonOp, Predicate};
        // temperature~ > 30 matches a 'thermal reading' attribute through
        // the measure while still requiring the numeric constraint.
        let stub = StubMeasure::default().with("temperature", "thermal reading", 0.8);
        let e = Event::builder()
            .tuple("thermal reading", "35")
            .build()
            .unwrap();
        let s = Subscription::builder()
            .predicate(Predicate::with_op("temperature", ComparisonOp::Gt, "30").approx_attribute())
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &e, &stub, Combiner::Product);
        assert!((m.get(0, 0) - 0.8).abs() < 1e-12);
        // Below the bound: vetoed regardless of attribute similarity.
        let cold = Event::builder()
            .tuple("thermal reading", "20")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &cold, &stub, Combiner::Product);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn combiner_changes_cells() {
        let stub = StubMeasure::default().with("laptop", "computer", 0.5);
        let s = Subscription::builder()
            .predicate_full_approx("device", "laptop")
            .build()
            .unwrap();
        let prod = SimilarityMatrix::build(&s, &event(), &stub, Combiner::Product);
        let mean = SimilarityMatrix::build(&s, &event(), &stub, Combiner::ArithmeticMean);
        // attr device~device = 1.0, value 0.5.
        assert!((prod.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((mean.get(0, 1) - 0.75).abs() < 1e-12);
    }
}
