//! The combined attributes–values similarity matrix (paper Fig. 4).

use crate::config::Combiner;
use std::cell::RefCell;
use tep_events::{ComparisonOp, Event, Subscription};
use tep_semantics::{intern_term, theme_for_tags, SemanticMeasure, TermId, ThemeId};

/// Event-scoped interning scratch: one event is matched against many
/// subscriptions back to back by the same worker thread, so the event
/// side's interned term ids and theme id are computed once per event and
/// replayed for every subsequent test in the scope (see
/// [`begin_event_scope`]).
struct EventScope {
    /// `0` = no scope active (callers that never open one — evaluation
    /// code, direct matcher use — re-intern per test). Bumped by
    /// [`begin_event_scope`] so stale scratch can never leak into the
    /// next event.
    token: u64,
    /// Whether `tuple_ids` / `the_id` were filled for the current token
    /// under `flags`.
    filled: bool,
    /// The `(any_attr_approx, any_value_approx)` combination the scratch
    /// was interned under; a subscription with different approximation
    /// flags re-interns (different sides of the tuples are eligible).
    flags: (bool, bool),
    /// Interned event theme id for the current token.
    the_id: ThemeId,
    /// Interned `(attribute, value)` ids per tuple.
    tuple_ids: Vec<(Option<TermId>, Option<TermId>)>,
}

thread_local! {
    /// Per-worker scratch for the event side's interned `(attribute,
    /// value)` term ids — reused across match tests so the steady-state
    /// matrix build allocates nothing, and across a whole event's
    /// subscription sweep when an event scope is open.
    static EVENT_SCOPE: RefCell<EventScope> = const {
        RefCell::new(EventScope {
            token: 0,
            filled: false,
            flags: (false, false),
            the_id: ThemeId::EMPTY,
            tuple_ids: Vec::new(),
        })
    };
}

/// Opens an event scope on the calling thread: until the next call, the
/// similarity build may reuse the event-side interned symbols across
/// match tests. Callers must invoke this **per event**, before the
/// event's first match test ([`crate::Matcher::begin_event`] routes
/// here); the token bump makes reuse across distinct events impossible.
pub(crate) fn begin_event_scope() {
    EVENT_SCOPE.with(|scope| {
        let mut scope = scope.borrow_mut();
        scope.token = scope.token.wrapping_add(1).max(1);
        scope.filled = false;
    });
}

/// The `n × m` matrix of combined similarities between the `n` predicates
/// of a subscription and the `m` tuples of an event.
///
/// Cell `(i, j)` combines:
///
/// * **attribute similarity** — `sm(ths, aᵢ, the, aⱼ)` when predicate `i`
///   carries the attribute `~`, else exact equality in `{0, 1}`;
/// * **value similarity** — likewise for the value side;
///
/// via the configured [`Combiner`]. Themes are passed through to the
/// measure exactly as in Fig. 4 (`sm(ths, aᵢ, the, aⱼ)`), which is where
/// the thematic and non-thematic instantiations differ.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl SimilarityMatrix {
    /// Builds the matrix for `subscription` × `event` under `measure`.
    pub fn build<M: SemanticMeasure + ?Sized>(
        subscription: &Subscription,
        event: &Event,
        measure: &M,
        combiner: Combiner,
    ) -> SimilarityMatrix {
        SimilarityMatrix::build_pruned(subscription, event, measure, combiner, f64::NEG_INFINITY)
            .expect("an infinitely low floor never prunes")
    }

    /// Builds the matrix row by row, bailing out with `None` as soon as a
    /// predicate's entire row falls below `floor` — no complete mapping
    /// can exist then, so the remaining rows would be wasted work. This
    /// is the matcher's hot path: on heterogeneous workloads most events
    /// fail on their first exact predicate.
    pub fn build_pruned<M: SemanticMeasure + ?Sized>(
        subscription: &Subscription,
        event: &Event,
        measure: &M,
        combiner: Combiner,
        floor: f64,
    ) -> Option<SimilarityMatrix> {
        let mut matrix = SimilarityMatrix::empty();
        matrix
            .rebuild_pruned(subscription, event, measure, combiner, floor)
            .then_some(matrix)
    }

    /// An empty `0 × 0` matrix, for scratch slots that are later
    /// [`SimilarityMatrix::rebuild_pruned`]-ed.
    pub const fn empty() -> SimilarityMatrix {
        SimilarityMatrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }

    /// [`SimilarityMatrix::build_pruned`] into `self`, recycling the cell
    /// buffer: the allocation-free form the matcher's hot path uses with
    /// a per-worker scratch matrix. Returns `false` when some predicate's
    /// whole row falls below `floor` (the matrix contents are then
    /// unspecified — check the return value).
    pub fn rebuild_pruned<M: SemanticMeasure + ?Sized>(
        &mut self,
        subscription: &Subscription,
        event: &Event,
        measure: &M,
        combiner: Combiner,
        floor: f64,
    ) -> bool {
        // Batched interning: both themes and every referenced term are
        // interned at most ONCE per match test — and, inside an event
        // scope, once per *event* — and each cell probes the measure with
        // copyable ids (`relatedness_ids`). The old path re-interned all
        // four symbols — four hash-and-lock round-trips — per cell.
        let any_attr_approx = subscription
            .predicates()
            .iter()
            .any(|p| p.is_attribute_approx());
        let any_value_approx = subscription
            .predicates()
            .iter()
            .any(|p| p.is_value_approx() && matches!(p.op(), ComparisonOp::Eq));
        let semantic = any_attr_approx || any_value_approx;
        let flags = (any_attr_approx, any_value_approx);
        // Purely exact subscriptions never consult the measure, so skip
        // theme resolution entirely on that path.
        let ths_id = if semantic {
            theme_for_tags(subscription.theme_tags()).0
        } else {
            ThemeId::EMPTY
        };
        self.rows = subscription.predicates().len();
        self.cols = event.tuples().len();
        let cols = self.cols;
        self.data.clear();
        self.data.reserve(self.rows * cols);
        let data = &mut self.data;
        EVENT_SCOPE.with(|scope| {
            let mut scope = scope.borrow_mut();
            let scope = &mut *scope;
            if !(scope.token != 0 && scope.filled && scope.flags == flags) {
                scope.tuple_ids.clear();
                if semantic {
                    // Intern only the sides a measure call can actually
                    // read, mirroring the old per-cell behaviour (e.g.
                    // free-form numeric values stay out of the interner
                    // unless some predicate is value-approximate).
                    scope.the_id = theme_for_tags(event.theme_tags()).0;
                    for t in event.tuples() {
                        scope.tuple_ids.push((
                            any_attr_approx.then(|| intern_term(t.attribute())),
                            any_value_approx.then(|| intern_term(t.value())),
                        ));
                    }
                } else {
                    scope.the_id = ThemeId::EMPTY;
                    scope.tuple_ids.resize(cols, (None, None));
                }
                scope.flags = flags;
                // Only an open scope may replay this scratch: without one
                // there is no "same event" guarantee across calls.
                scope.filled = scope.token != 0;
            }
            let the_id = scope.the_id;
            let tuple_ids = &scope.tuple_ids;
            for p in subscription.predicates() {
                let p_attr = p.is_attribute_approx().then(|| intern_term(p.attribute()));
                let p_value = (p.is_value_approx() && matches!(p.op(), ComparisonOp::Eq))
                    .then(|| intern_term(p.value()));
                let mut feasible = false;
                for (t, &(t_attr, t_value)) in event.tuples().iter().zip(tuple_ids.iter()) {
                    let attr_sim = match (p_attr, t_attr) {
                        (Some(pa), Some(ta)) => measure.relatedness_ids(pa, ths_id, ta, the_id),
                        _ => exact(p.attribute(), t.attribute()),
                    };
                    // A vetoed attribute makes the pair impossible under
                    // Product/GeometricMean/Min; skip the value-side measure
                    // call in that common case.
                    let cell = if attr_sim == 0.0 && combiner != Combiner::ArithmeticMean {
                        0.0
                    } else {
                        let value_sim = match p.op() {
                            ComparisonOp::Eq => match (p_value, t_value) {
                                (Some(pv), Some(tv)) => {
                                    measure.relatedness_ids(pv, ths_id, tv, the_id)
                                }
                                _ => exact(p.value(), t.value()),
                            },
                            // Relational operators are boolean by definition.
                            op => {
                                if op.evaluate(t.value(), p.value()) {
                                    1.0
                                } else {
                                    0.0
                                }
                            }
                        };
                        combiner.combine(attr_sim, value_sim).clamp(0.0, 1.0)
                    };
                    feasible |= cell >= floor;
                    data.push(cell);
                }
                if !feasible {
                    return false;
                }
            }
            true
        })
    }

    /// Number of predicates (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of tuples (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The combined similarity of predicate `i` and tuple `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sum of row `i` (the normalizer of the correspondence probability
    /// space `Pσ` for predicate `i`).
    pub fn row_sum(&self, i: usize) -> f64 {
        self.data[i * self.cols..(i + 1) * self.cols].iter().sum()
    }

    /// The correspondence probability `P((pᵢ ↔ tⱼ))`: the row-normalized
    /// similarity (0 when the whole row is 0).
    pub fn correspondence_probability(&self, i: usize, j: usize) -> f64 {
        let sum = self.row_sum(i);
        if sum == 0.0 {
            0.0
        } else {
            self.get(i, j) / sum
        }
    }
}

fn exact(a: &str, b: &str) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tep_events::{Event, Subscription};
    use tep_semantics::Theme;

    /// A deterministic stub measure for unit tests.
    #[derive(Debug, Default)]
    struct StubMeasure {
        scores: HashMap<(String, String), f64>,
    }

    impl StubMeasure {
        fn with(mut self, a: &str, b: &str, s: f64) -> StubMeasure {
            self.scores.insert((a.into(), b.into()), s);
            self.scores.insert((b.into(), a.into()), s);
            self
        }
    }

    impl SemanticMeasure for StubMeasure {
        fn relatedness(&self, a: &str, _: &Theme, b: &str, _: &Theme) -> f64 {
            if a == b {
                1.0
            } else {
                self.scores
                    .get(&(a.to_string(), b.to_string()))
                    .copied()
                    .unwrap_or(0.0)
            }
        }
    }

    fn event() -> Event {
        Event::builder()
            .tuple("type", "increased energy consumption event")
            .tuple("device", "computer")
            .tuple("office", "room 112")
            .build()
            .unwrap()
    }

    #[test]
    fn exact_predicates_use_string_equality() {
        let s = Subscription::builder()
            .predicate_exact("office", "room 112")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &StubMeasure::default(), Combiner::Product);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn approx_value_consults_the_measure() {
        let stub = StubMeasure::default().with("laptop", "computer", 0.8);
        let s = Subscription::builder()
            .predicate_approx_value("device", "laptop")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &stub, Combiner::Product);
        // attribute exact-matches 'device' (1.0), value 0.8 → 0.8.
        assert!((m.get(0, 1) - 0.8).abs() < 1e-12);
        // attribute mismatch on other tuples → 0.
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn approx_attribute_consults_the_measure() {
        let stub = StubMeasure::default().with("device", "office", 0.5);
        let s = Subscription::builder()
            .predicate(tep_events::Predicate::new("device", "room 112").approx_attribute())
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &stub, Combiner::Product);
        // col 2: attr sim 0.5 (device~office), value exact 1.0 → 0.5.
        assert!((m.get(0, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_row_normalize() {
        let stub = StubMeasure::default()
            .with("laptop", "computer", 0.6)
            .with("laptop", "room 112", 0.2);
        let s = Subscription::builder()
            .predicate_full_approx("device", "laptop")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &stub, Combiner::Product);
        let total: f64 = (0..3).map(|j| m.correspondence_probability(0, j)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_row_has_zero_probabilities() {
        let s = Subscription::builder()
            .predicate_exact("nothing", "matches")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &event(), &StubMeasure::default(), Combiner::Product);
        assert_eq!(m.row_sum(0), 0.0);
        assert_eq!(m.correspondence_probability(0, 0), 0.0);
    }

    #[test]
    fn relational_predicates_compare_numerically() {
        use tep_events::ComparisonOp;
        let e = Event::builder()
            .tuple("temperature", "32.5 degrees celsius")
            .tuple("noise", "80")
            .build()
            .unwrap();
        let hot = Subscription::builder()
            .predicate_cmp("temperature", ComparisonOp::Gt, "30")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&hot, &e, &StubMeasure::default(), Combiner::Product);
        assert_eq!(m.get(0, 0), 1.0); // 32.5 > 30
        assert_eq!(m.get(0, 1), 0.0); // attribute mismatch vetoes

        let quiet = Subscription::builder()
            .predicate_cmp("noise", ComparisonOp::Le, "75")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&quiet, &e, &StubMeasure::default(), Combiner::Product);
        assert_eq!(m.get(0, 1), 0.0); // 80 > 75
    }

    #[test]
    fn relational_with_approximate_attribute() {
        use tep_events::{ComparisonOp, Predicate};
        // temperature~ > 30 matches a 'thermal reading' attribute through
        // the measure while still requiring the numeric constraint.
        let stub = StubMeasure::default().with("temperature", "thermal reading", 0.8);
        let e = Event::builder()
            .tuple("thermal reading", "35")
            .build()
            .unwrap();
        let s = Subscription::builder()
            .predicate(Predicate::with_op("temperature", ComparisonOp::Gt, "30").approx_attribute())
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &e, &stub, Combiner::Product);
        assert!((m.get(0, 0) - 0.8).abs() < 1e-12);
        // Below the bound: vetoed regardless of attribute similarity.
        let cold = Event::builder()
            .tuple("thermal reading", "20")
            .build()
            .unwrap();
        let m = SimilarityMatrix::build(&s, &cold, &stub, Combiner::Product);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn combiner_changes_cells() {
        let stub = StubMeasure::default().with("laptop", "computer", 0.5);
        let s = Subscription::builder()
            .predicate_full_approx("device", "laptop")
            .build()
            .unwrap();
        let prod = SimilarityMatrix::build(&s, &event(), &stub, Combiner::Product);
        let mean = SimilarityMatrix::build(&s, &event(), &stub, Combiner::ArithmeticMean);
        // attr device~device = 1.0, value 0.5.
        assert!((prod.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((mean.get(0, 1) - 0.75).abs() < 1e-12);
    }
}
