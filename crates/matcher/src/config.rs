//! Matcher configuration.

use serde::{Deserialize, Serialize};

/// How many mappings the matcher produces (paper §3.5: "M works in two
/// modes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchMode {
    /// Decide only on the most probable mapping `σ*`.
    Top1,
    /// Produce the `k` most probable mappings, "to be used later for
    /// complex event processing" — producing top-k increases the chance of
    /// hitting the correct mapping \[13\].
    TopK(usize),
}

impl MatchMode {
    /// The number of mappings requested.
    pub fn k(self) -> usize {
        match self {
            MatchMode::Top1 => 1,
            MatchMode::TopK(k) => k,
        }
    }
}

/// How a predicate–tuple pair's attribute similarity and value similarity
/// combine into one cell of the similarity matrix.
///
/// The paper combines attribute and value relatedness into a "combined
/// attributes-values similarity matrix" (Fig. 4) without fixing the
/// combinator; `Product` (both facets must agree) is the default, and the
/// `ablation` bench compares the alternatives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Combiner {
    /// `attr · value` — a weak facet vetoes the pair.
    #[default]
    Product,
    /// `(attr + value) / 2`.
    ArithmeticMean,
    /// `sqrt(attr · value)`.
    GeometricMean,
    /// `min(attr, value)` — the most conservative.
    Min,
}

impl Combiner {
    /// Combines the two facet similarities into one score in `[0, 1]`.
    pub fn combine(self, attribute: f64, value: f64) -> f64 {
        match self {
            Combiner::Product => attribute * value,
            Combiner::ArithmeticMean => 0.5 * (attribute + value),
            Combiner::GeometricMean => (attribute * value).sqrt(),
            Combiner::Min => attribute.min(value),
        }
    }
}

/// Configuration of the [`crate::ProbabilisticMatcher`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Top-1 or top-k mode.
    pub mode: MatchMode,
    /// Attribute/value combiner.
    pub combiner: Combiner,
    /// Scores below this floor are treated as impossible correspondences
    /// (forbidden assignment edges). Keeps `-ln(score)` bounded.
    pub score_floor: f64,
}

impl MatcherConfig {
    /// Top-1 mode with the default combiner.
    pub fn top1() -> MatcherConfig {
        MatcherConfig {
            mode: MatchMode::Top1,
            combiner: Combiner::default(),
            score_floor: 1.0e-9,
        }
    }

    /// Top-k mode with the default combiner.
    pub fn top_k(k: usize) -> MatcherConfig {
        MatcherConfig {
            mode: MatchMode::TopK(k),
            ..MatcherConfig::top1()
        }
    }

    /// Replaces the combiner.
    pub fn with_combiner(mut self, combiner: Combiner) -> MatcherConfig {
        self.combiner = combiner;
        self
    }
}

impl Default for MatcherConfig {
    fn default() -> MatcherConfig {
        MatcherConfig::top1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_k() {
        assert_eq!(MatchMode::Top1.k(), 1);
        assert_eq!(MatchMode::TopK(5).k(), 5);
    }

    #[test]
    fn combiners_bounds_and_identities() {
        for c in [
            Combiner::Product,
            Combiner::ArithmeticMean,
            Combiner::GeometricMean,
            Combiner::Min,
        ] {
            assert_eq!(c.combine(1.0, 1.0), 1.0);
            assert_eq!(c.combine(0.0, 0.0), 0.0);
            let v = c.combine(0.3, 0.8);
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(Combiner::Product.combine(0.5, 0.5), 0.25);
        assert_eq!(Combiner::ArithmeticMean.combine(0.5, 1.0), 0.75);
        assert_eq!(Combiner::Min.combine(0.2, 0.9), 0.2);
        assert!((Combiner::GeometricMean.combine(0.25, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn config_builders() {
        assert_eq!(MatcherConfig::default(), MatcherConfig::top1());
        let c = MatcherConfig::top_k(3).with_combiner(Combiner::Min);
        assert_eq!(c.mode, MatchMode::TopK(3));
        assert_eq!(c.combiner, Combiner::Min);
    }
}
