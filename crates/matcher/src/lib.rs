//! # tep-matcher
//!
//! The approximate probabilistic **thematic event matcher** (paper §3.5)
//! and the baseline matchers it is evaluated against:
//!
//! * [`ProbabilisticMatcher`] — the paper's matcher `M`: builds a combined
//!   attribute/value [`SimilarityMatrix`] from a
//!   [`tep_semantics::SemanticMeasure`], then finds the **top-1** (most
//!   probable) or **top-k** mappings `σ` between subscription predicates
//!   and event tuples, with probability spaces `Pσ` (per-correspondence)
//!   and `P` (over mappings);
//! * [`assignment`] — a Hungarian (Kuhn–Munkres) solver for the top-1
//!   mapping and Murty's ranked-assignment algorithm for top-k;
//! * [`ExactMatcher`] — the content-based baseline (SIENA-style exact
//!   string matching, §1.2.1);
//! * [`RewritingMatcher`] — the concept-based baseline: boolean semantic
//!   matching by thesaurus query rewriting (WordNet-style, §5.1);
//!
//! Instantiate the thematic matcher by plugging a
//! [`tep_semantics::ThematicEsaMeasure`] into [`ProbabilisticMatcher`],
//! and the non-thematic baseline by plugging an
//! [`tep_semantics::EsaMeasure`].
//!
//! ```
//! use std::sync::Arc;
//! use tep_corpus::{Corpus, CorpusConfig};
//! use tep_index::InvertedIndex;
//! use tep_semantics::{DistributionalSpace, ParametricVectorSpace, ThematicEsaMeasure};
//! use tep_events::{parse_event, parse_subscription};
//! use tep_matcher::{Matcher, MatcherConfig, ProbabilisticMatcher};
//!
//! let corpus = Corpus::generate(&CorpusConfig::small());
//! let pvsm = Arc::new(ParametricVectorSpace::new(
//!     DistributionalSpace::new(InvertedIndex::build(&corpus)),
//! ));
//! let matcher = ProbabilisticMatcher::new(
//!     ThematicEsaMeasure::new(pvsm),
//!     MatcherConfig::top1(),
//! );
//!
//! let event = parse_event(
//!     "({energy policy, building energy}, {type: increased energy consumption event, device: computer})",
//! )?;
//! let subscription = parse_subscription(
//!     "({energy policy, power generation}, {type~= increased energy usage event~, device~= laptop~})",
//! )?;
//! let result = matcher.match_event(&subscription, &event);
//! assert!(result.score() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod assignment;
mod baselines;
mod config;
mod explain;
mod fault;
mod mapping;
mod matcher;
mod similarity;

pub use baselines::{ExactMatcher, RewritingMatcher};
pub use config::{Combiner, MatchMode, MatcherConfig};
pub use explain::{MatchDetail, PredicateExplanation};
pub use fault::{Fault, FaultConfig, FaultInjectingMatcher};
pub use mapping::{Correspondence, Mapping, MatchResult};
pub use matcher::{DegradedMatching, Matcher, ProbabilisticMatcher};
pub use similarity::SimilarityMatrix;
pub use tep_semantics::{CacheStats, RelatednessDetail};
