//! Post-hoc match explanations: why a subscription/event pair scored the
//! way it did, predicate by predicate.
//!
//! Explanations are computed **after** a match test from its
//! [`MatchResult`] — the hot path never pays for them, and a match is
//! never re-run. The probabilistic matcher rebuilds its similarity
//! matrix (cache-warm: the hot path just computed the same cells) and
//! asks the measure to [`explain`](tep_semantics::SemanticMeasure::explain)
//! the approximate sides, surfacing the raw distances and projection
//! dimensionalities behind each cell.

use crate::mapping::MatchResult;
use tep_events::{Event, Subscription};
use tep_semantics::RelatednessDetail;

/// How one subscription predicate related to the event, in the best
/// mapping (or, for rejected pairs, against its most similar tuple).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PredicateExplanation {
    /// Predicate index within the subscription.
    pub predicate: usize,
    /// The predicate's attribute term.
    pub attribute: String,
    /// The predicate's value term.
    pub value: String,
    /// Index of the event tuple this predicate was paired with: the best
    /// mapping's assignment, or the row's most similar tuple when no
    /// valid mapping exists. `None` when the event has no tuples or the
    /// pairing is unknown (e.g. a matcher without matrix access).
    pub tuple: Option<usize>,
    /// The paired tuple's attribute.
    pub tuple_attribute: Option<String>,
    /// The paired tuple's value.
    pub tuple_value: Option<String>,
    /// The combined attribute/value similarity of the pair (the matrix
    /// cell the mapping score is a product of).
    pub similarity: f64,
    /// Distance/projection evidence for the attribute side, when it was
    /// scored semantically (`attribute~`).
    pub attribute_detail: Option<RelatednessDetail>,
    /// Distance/projection evidence for the value side, when it was
    /// scored semantically (`value~` under `=`; relational operators
    /// compare numerically and carry no geometry).
    pub value_detail: Option<RelatednessDetail>,
}

/// A full per-predicate account of one match test.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchDetail {
    /// The matcher's display name.
    pub matcher: &'static str,
    /// The best mapping's score (0.0 when no valid mapping exists).
    pub score: f64,
    /// Whether a valid mapping exists at all (threshold not considered).
    pub mapped: bool,
    /// One entry per subscription predicate, in predicate order.
    pub predicates: Vec<PredicateExplanation>,
}

impl MatchDetail {
    /// Builds the measure-free baseline explanation straight from a
    /// result: pairings and similarities from the best mapping, no
    /// geometric detail. This is what matchers without a similarity
    /// matrix (exact, rewriting) report.
    pub fn from_result(
        matcher: &'static str,
        subscription: &Subscription,
        event: &Event,
        result: &MatchResult,
    ) -> MatchDetail {
        let best = result.best();
        let predicates = subscription
            .predicates()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let corr = best.and_then(|m| m.correspondences().iter().find(|c| c.predicate == i));
                let tuple = corr.map(|c| c.tuple);
                let paired = tuple.and_then(|j| event.tuples().get(j));
                PredicateExplanation {
                    predicate: i,
                    attribute: p.attribute().to_string(),
                    value: p.value().to_string(),
                    tuple,
                    tuple_attribute: paired.map(|t| t.attribute().to_string()),
                    tuple_value: paired.map(|t| t.value().to_string()),
                    similarity: corr.map_or(0.0, |c| c.similarity),
                    attribute_detail: None,
                    value_detail: None,
                }
            })
            .collect();
        MatchDetail {
            matcher,
            score: result.score(),
            mapped: !result.is_empty(),
            predicates,
        }
    }
}
