//! Baseline matchers: content-based exact and concept-based rewriting.

use crate::assignment::{self, CostMatrix};
use crate::mapping::{Correspondence, Mapping, MatchResult};
use crate::matcher::Matcher;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use tep_events::{Event, Subscription};
use tep_thesaurus::Thesaurus;

/// The **content-based** baseline (paper §1.2.1): SIENA-style exact string
/// matching on attributes and values. The `~` operator is ignored — this
/// matcher models a broker with no semantic support, which is why covering
/// a heterogeneous event set requires tens of thousands of subscriptions
/// (§5.2.3: 94 approximate subscriptions ≈ 48,000 exact ones).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactMatcher;

impl ExactMatcher {
    /// Creates the exact matcher.
    pub fn new() -> ExactMatcher {
        ExactMatcher
    }
}

impl Matcher for ExactMatcher {
    fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
        // Verdict pass first, allocation-free: the broker's steady-state
        // zero-alloc guarantee rides on a miss not touching the heap, and
        // misses dominate (most events are irrelevant to a subscription).
        let preds = subscription.predicates();
        if preds.is_empty()
            || !preds.iter().all(|p| {
                event
                    .tuples()
                    .iter()
                    .any(|t| t.attribute() == p.attribute() && t.value() == p.value())
            })
        {
            return MatchResult::no_match();
        }
        // Hit: build the correspondence list (first matching tuple per
        // predicate, exactly as the verdict pass saw it).
        let correspondences = preds
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let j = event
                    .tuples()
                    .iter()
                    .position(|t| t.attribute() == p.attribute() && t.value() == p.value())
                    .expect("verdict pass found every predicate");
                Correspondence {
                    predicate: i,
                    tuple: j,
                    similarity: 1.0,
                    probability: 1.0,
                }
            })
            .collect();
        MatchResult::from_mappings(vec![Mapping::new(correspondences)])
    }

    fn name(&self) -> &'static str {
        "exact"
    }

    fn covering_safe(&self) -> bool {
        // Purely conjunctive: every predicate independently requires an
        // exact (attribute, value) tuple in the event, themes never enter
        // the verdict, and equal predicate multisets yield equal results
        // (similarity 1.0 mappings). Subset covering is therefore sound.
        true
    }
}

/// The **concept-based** baseline (paper §1.2.2, evaluated in §5.1 as
/// "query rewriting using WordNet"): boolean semantic matching through an
/// explicit knowledge base. A `~`-marked side accepts the original term or
/// any term in its thesaurus expansion set (synonyms + one-hop related
/// terms); unmarked sides require exact equality.
///
/// Expansion sets are memoized per term, mirroring how a rewriting engine
/// would compile each subscription once.
pub struct RewritingMatcher {
    thesaurus: Arc<Thesaurus>,
    expansions: RwLock<HashMap<String, Arc<HashSet<String>>>>,
}

impl RewritingMatcher {
    /// Creates a rewriting matcher over a thesaurus.
    pub fn new(thesaurus: Arc<Thesaurus>) -> RewritingMatcher {
        RewritingMatcher {
            thesaurus,
            expansions: RwLock::new(HashMap::new()),
        }
    }

    /// Longest thesaurus phrase considered when rewriting inside a term.
    const MAX_PHRASE_WORDS: usize = 4;

    /// The rewrite set of `term`, memoized: the term itself, its whole-term
    /// expansions, and every **one-replacement phrase variant** — each
    /// known thesaurus term occurring inside `term` replaced by one of its
    /// expansions. This is how S-TOPSS-style engines rewrite a
    /// subscription like `increased energy usage event~` into
    /// `increased energy consumption event`, `increased electricity usage
    /// event`, … before exact matching.
    pub fn expansion_set(&self, term: &str) -> Arc<HashSet<String>> {
        if let Some(set) = self.expansions.read().get(term) {
            return Arc::clone(set);
        }
        let mut set: HashSet<String> = HashSet::new();
        set.insert(term.to_string());
        for t in self.thesaurus.expansions(term, None) {
            set.insert(t.as_str().to_string());
        }
        // Phrase-level rewriting: replace each known sub-phrase once.
        let words: Vec<&str> = term.split(' ').filter(|w| !w.is_empty()).collect();
        for start in 0..words.len() {
            let max_len = Self::MAX_PHRASE_WORDS.min(words.len() - start);
            for len in (1..=max_len).rev() {
                let phrase = words[start..start + len].join(" ");
                // Skip the whole term (already handled above).
                if len == words.len() {
                    continue;
                }
                let options = self.thesaurus.expansions(&phrase, None);
                if options.is_empty() {
                    continue;
                }
                for replacement in options {
                    let mut variant: Vec<&str> = Vec::with_capacity(words.len());
                    variant.extend_from_slice(&words[..start]);
                    variant.extend(replacement.words());
                    variant.extend_from_slice(&words[start + len..]);
                    set.insert(variant.join(" "));
                }
                break; // longest match at this position wins
            }
        }
        let set = Arc::new(set);
        let mut cache = self.expansions.write();
        Arc::clone(cache.entry(term.to_string()).or_insert(set))
    }

    fn side_accepts(&self, approximate: bool, wanted: &str, actual: &str) -> bool {
        if wanted == actual {
            return true;
        }
        approximate && self.expansion_set(wanted).contains(actual)
    }
}

impl fmt::Debug for RewritingMatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RewritingMatcher")
            .field("cached_expansions", &self.expansions.read().len())
            .finish()
    }
}

impl Matcher for RewritingMatcher {
    fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
        let n = subscription.predicates().len();
        let m = event.tuples().len();
        if n == 0 || n > m {
            return MatchResult::no_match();
        }
        // Boolean acceptability matrix → injective assignment (cost 0 for
        // acceptable pairs, forbidden otherwise).
        let mut cost = CostMatrix::filled(n, m, 0.0);
        for (i, p) in subscription.predicates().iter().enumerate() {
            let mut any = false;
            for (j, t) in event.tuples().iter().enumerate() {
                let ok = self.side_accepts(p.is_attribute_approx(), p.attribute(), t.attribute())
                    && self.side_accepts(p.is_value_approx(), p.value(), t.value());
                if ok {
                    any = true;
                } else {
                    cost.forbid(i, j);
                }
            }
            if !any {
                return MatchResult::no_match();
            }
        }
        match assignment::solve(&cost) {
            None => MatchResult::no_match(),
            Some(sol) => {
                let correspondences = sol
                    .assignment
                    .iter()
                    .enumerate()
                    .map(|(i, &j)| Correspondence {
                        predicate: i,
                        tuple: j,
                        similarity: 1.0,
                        probability: 1.0,
                    })
                    .collect();
                MatchResult::from_mappings(vec![Mapping::new(correspondences)])
            }
        }
    }

    fn name(&self) -> &'static str {
        "rewriting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> Event {
        Event::builder()
            .tuple("type", "increased energy consumption event")
            .tuple("device", "computer")
            .tuple("office", "room 112")
            .build()
            .unwrap()
    }

    #[test]
    fn exact_matcher_requires_equality() {
        let hit = Subscription::builder()
            .predicate_exact("device", "computer")
            .predicate_exact("office", "room 112")
            .build()
            .unwrap();
        let miss = Subscription::builder()
            .predicate_exact("device", "laptop")
            .build()
            .unwrap();
        let m = ExactMatcher::new();
        assert_eq!(m.match_event(&hit, &event()).score(), 1.0);
        assert!(m.match_event(&miss, &event()).is_empty());
    }

    #[test]
    fn exact_matcher_ignores_tilde() {
        let s = Subscription::builder()
            .predicate_full_approx("device", "laptop")
            .build()
            .unwrap();
        assert!(ExactMatcher::new().match_event(&s, &event()).is_empty());
    }

    #[test]
    fn rewriting_expands_approximate_sides() {
        let th = Arc::new(Thesaurus::eurovoc_like());
        let m = RewritingMatcher::new(th);
        // 'laptop' and 'computer' are related concepts in the thesaurus.
        let s = Subscription::builder()
            .predicate_approx_value("device", "laptop")
            .build()
            .unwrap();
        let r = m.match_event(&s, &event());
        assert_eq!(r.score(), 1.0);
        assert_eq!(r.best().unwrap().tuple_of(0), Some(1));
    }

    #[test]
    fn rewriting_without_tilde_is_exact() {
        let th = Arc::new(Thesaurus::eurovoc_like());
        let m = RewritingMatcher::new(th);
        let s = Subscription::builder()
            .predicate_exact("device", "laptop")
            .build()
            .unwrap();
        assert!(m.match_event(&s, &event()).is_empty());
    }

    #[test]
    fn rewriting_misses_terms_outside_the_knowledge_base() {
        // The key weakness of the concept-based approach: anything not in
        // the ontology cannot match.
        let th = Arc::new(Thesaurus::eurovoc_like());
        let m = RewritingMatcher::new(th);
        let s = Subscription::builder()
            .predicate_approx_value("device", "portable workstation thing")
            .build()
            .unwrap();
        assert!(m.match_event(&s, &event()).is_empty());
    }

    #[test]
    fn rewriting_mapping_is_injective() {
        let th = Arc::new(Thesaurus::eurovoc_like());
        let m = RewritingMatcher::new(th);
        let e = Event::builder()
            .tuple("device", "computer")
            .tuple("machine", "laptop")
            .build()
            .unwrap();
        let s = Subscription::builder()
            .predicate_full_approx("device", "laptop")
            .predicate_full_approx("machine", "computer")
            .build()
            .unwrap();
        let r = m.match_event(&s, &e);
        let best = r.best().unwrap();
        assert_ne!(best.tuple_of(0), best.tuple_of(1));
    }

    #[test]
    fn phrase_level_rewriting_covers_the_paper_example() {
        let th = Arc::new(Thesaurus::eurovoc_like());
        let m = RewritingMatcher::new(th);
        let set = m.expansion_set("increased energy usage event");
        assert!(
            set.contains("increased energy consumption event"),
            "phrase rewrite missing; set has {} entries",
            set.len()
        );
        let e = Event::builder()
            .tuple("type", "increased energy consumption event")
            .build()
            .unwrap();
        let s = Subscription::builder()
            .predicate_approx_value("type", "increased energy usage event")
            .build()
            .unwrap();
        assert_eq!(m.match_event(&s, &e).score(), 1.0);
    }

    #[test]
    fn expansion_sets_are_memoized() {
        let th = Arc::new(Thesaurus::eurovoc_like());
        let m = RewritingMatcher::new(th);
        let a = m.expansion_set("laptop");
        let b = m.expansion_set("laptop");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.contains("laptop"));
        assert!(a.contains("notebook"));
    }
}
