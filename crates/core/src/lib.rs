//! # tep — Thematic Event Processing
//!
//! A Rust implementation of *Thematic Event Processing* (Hasan & Curry,
//! ACM Middleware 2014): approximate semantic publish/subscribe where
//! events and subscriptions carry **theme tags** that parametrize a
//! distributional vector space, loosening the *semantic* coupling
//! dimension of event-based systems.
//!
//! This facade re-exports the whole stack:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`thesaurus`] | `tep-thesaurus` | EuroVoc-like multi-domain thesaurus |
//! | [`corpus`] | `tep-corpus` | synthetic ESA corpus generator |
//! | [`index`] | `tep-index` | tokenizer, inverted index, TF/IDF (Eqs. 2–4) |
//! | [`semantics`] | `tep-semantics` | distributional space, PVSM, thematic projection (Alg. 1) |
//! | [`events`] | `tep-events` | event model, `~` subscription language |
//! | [`matcher`] | `tep-matcher` | probabilistic top-1/top-k matcher + baselines |
//! | [`broker`] | `tep-broker` | worker-pool pub/sub middleware |
//! | [`cep`] | `tep-cep` | complex-event patterns over uncertain matches |
//!
//! ## Quickstart
//!
//! ```
//! use tep::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Build the distributional substrate (in production: a large
//! //    corpus; here: the small built-in synthetic one).
//! let corpus = Corpus::generate(&CorpusConfig::small());
//! let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
//!     InvertedIndex::build(&corpus),
//! )));
//!
//! // 2. A thematic matcher.
//! let matcher = ProbabilisticMatcher::new(
//!     ThematicEsaMeasure::new(pvsm),
//!     MatcherConfig::top1(),
//! );
//!
//! // 3. Match a heterogeneous event against an approximate subscription.
//! let event = parse_event(
//!     "({energy policy, building energy}, \
//!      {type: increased energy consumption event, device: computer, office: room 112})",
//! )?;
//! let subscription = parse_subscription(
//!     "({energy policy, power generation}, \
//!      {type~= increased energy usage event~, device~= laptop~, office= room 112})",
//! )?;
//! let result = matcher.match_event(&subscription, &event);
//! assert!(result.score() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tep_broker as broker;
pub use tep_cep as cep;
pub use tep_corpus as corpus;
pub use tep_events as events;
pub use tep_index as index;
pub use tep_matcher as matcher;
pub use tep_semantics as semantics;
pub use tep_thesaurus as thesaurus;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use tep_broker::{
        render_explanations_json, render_quality_json, render_spans_json, serve, span_tree,
        BreakerConfig, Broker, BrokerConfig, BrokerError, BrokerStats, CacheTemperature, CostEntry,
        CostReport, DeadLetter, DiagnosticFrame, DriftAlert, DriftKind, EventTrace, FlightRecorder,
        HistogramSnapshot, LoadState, MatchExplanation, MatchOutcome, MetricsRegistry,
        Notification, OverloadConfig, PublishOptions, PublishPolicy, QualityOracle, QualityReport,
        RecorderConfig, RecorderSettings, RoutingPolicy, ScrapeHandlers, ScrapeServer, ShedReason,
        SpanNode, SpanRecord, StageLatencies, StageStat, SubscribeOptions, SubscriberPolicy,
        WindowedDelta, DEFAULT_COST_SAMPLE_EVERY,
    };
    pub use tep_cep::{CepEngine, Detection, Pattern, Timestamped};
    pub use tep_corpus::{Corpus, CorpusConfig, CorpusGenerator};
    pub use tep_events::{
        parse_event, parse_subscription, ComparisonOp, Event, Predicate, Subscription, Tuple,
    };
    pub use tep_index::{InvertedIndex, Tokenizer};
    pub use tep_matcher::{
        Combiner, DegradedMatching, ExactMatcher, Fault, FaultConfig, FaultInjectingMatcher,
        MatchDetail, MatchMode, MatchResult, Matcher, MatcherConfig, PredicateExplanation,
        ProbabilisticMatcher, RewritingMatcher,
    };
    pub use tep_semantics::{
        CacheStats, DistributionalSpace, EsaMeasure, ParametricVectorSpace, RelatednessDetail,
        SemanticMeasure, ThematicEsaMeasure, Theme,
    };
    pub use tep_thesaurus::{Domain, Term, Thesaurus};
}
