//! The broker runtime.

use crate::config::{BrokerConfig, PublishPolicy};
use crate::explain::MatchExplanation;
use crate::notification::Notification;
use crate::overload::{BreakerState, LoadState, OverloadController};
use crate::quality::{QualityOracle, QualityReport, QualityState};
use crate::stats::{BrokerStats, EventTrace, StageLatencies, StatsInner};
use crate::subindex::SubscriptionIndex;
use crate::supervisor::{supervisor_loop, DeadLetter, DeadLetterQueue, Job};
use crossbeam::channel::{bounded, Receiver, SendTimeoutError, Sender, TrySendError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tep_events::{Event, Subscription};
use tep_matcher::{CacheStats, Matcher};
use tep_obs::{
    escape_json, render_spans_json, span_tree, CostEntry, CostTable, CounterFamily, FlightRecorder,
    FrameWriter, MetricsFrame, MetricsRegistry, RecorderConfig, SpanCollector, SpanNode,
    SpanRecord, TopKSketch, TraceRing, WindowRing, WindowedDelta,
};

/// Default deadline for the bare [`Broker::flush`] convenience wrapper.
const DEFAULT_FLUSH_DEADLINE: Duration = Duration::from_secs(60);

/// The tuned default 1-in-k cost-attribution sampling rate
/// ([`BrokerConfig::with_cost_attribution`]): the rate the cost gate
/// certifies at ≤1% throughput overhead. At k = 64 a steady workload
/// still lands hundreds of samples per second per hot entry, so the
/// scaled estimate (`sampled × k`) converges quickly.
pub const DEFAULT_COST_SAMPLE_EVERY: u64 = 64;

/// Identifier handed out by [`Broker::subscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors returned by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BrokerError {
    /// The broker has been shut down.
    Closed,
    /// The ingress queue was full and the publish policy is
    /// [`PublishPolicy::Reject`].
    QueueFull,
    /// The ingress queue stayed full past the [`PublishPolicy::Timeout`]
    /// deadline.
    PublishTimeout,
    /// [`Broker::flush_timeout`] reached its deadline with events still in
    /// flight.
    FlushTimeout,
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Closed => write!(f, "broker is shut down"),
            BrokerError::QueueFull => write!(f, "ingress queue is full"),
            BrokerError::PublishTimeout => write!(f, "publish timed out on a full ingress queue"),
            BrokerError::FlushTimeout => write!(f, "flush deadline passed with events in flight"),
        }
    }
}

impl Error for BrokerError {}

/// One subscriber's registry entry.
pub(crate) struct Registration {
    pub(crate) subscription: Arc<Subscription>,
    pub(crate) sender: Sender<Notification>,
    /// Kept only under [`crate::SubscriberPolicy::DropOldest`], where the
    /// broker itself evicts queued notifications.
    pub(crate) receiver: Option<Receiver<Notification>>,
    /// Consecutive full-channel drops, for
    /// [`crate::SubscriberPolicy::DisconnectAfter`].
    pub(crate) consecutive_full: AtomicU64,
    /// Whether any predicate carries the `~` approximation — precomputed
    /// at subscribe time so the match-latency instrumentation classifies
    /// each test without walking the predicates again.
    pub(crate) approx: bool,
    /// Whether this subscriber opted into per-notification explanations
    /// ([`SubscribeOptions::explain`]).
    pub(crate) explain: bool,
    /// Pre-resolved handle into the per-subscriber notification counter
    /// family, so the delivery hot path pays one `fetch_add` instead of a
    /// label lookup. `None` when labeled metrics are off.
    pub(crate) notif_counter: Option<Arc<AtomicU64>>,
    /// This subscriber's circuit breaker; `None` unless overload control
    /// is on ([`BrokerConfig::with_overload_control`]), so the disabled
    /// delivery path pays a single branch.
    pub(crate) breaker: Option<parking_lot::Mutex<BreakerState>>,
}

/// Per-subscription options for [`Broker::subscribe_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct SubscribeOptions {
    /// Attach a [`MatchExplanation`] to every notification delivered to
    /// this subscriber, regardless of
    /// [`BrokerConfig::explain_capacity`]. Off by default: explanations
    /// rebuild the similarity matrix per delivery (cache-warm, but not
    /// free).
    pub explain: bool,
}

impl SubscribeOptions {
    /// Options with per-notification explanations enabled.
    pub fn explained() -> SubscribeOptions {
        SubscribeOptions { explain: true }
    }
}

/// Per-event options for [`Broker::publish_with`].
///
/// Both fields are advisory until overload control is enabled
/// ([`BrokerConfig::with_overload_control`]): a broker without it matches
/// every accepted event regardless of deadline or priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct PublishOptions {
    /// Absolute wall-clock point after which matching this event is
    /// pointless. Under `Overloaded` or worse, events whose deadline has
    /// already expired are shed at dequeue
    /// ([`crate::BrokerStats::shed_deadline`]) instead of matched.
    pub deadline: Option<Instant>,
    /// Scheduling priority (`0` lowest, `255` highest; default `100`).
    /// Under `Critical`, events **below**
    /// [`crate::OverloadConfig::shed_priority_floor`] are shed
    /// ([`crate::BrokerStats::shed_load`]).
    pub priority: u8,
}

impl Default for PublishOptions {
    fn default() -> PublishOptions {
        PublishOptions {
            deadline: None,
            priority: 100,
        }
    }
}

impl PublishOptions {
    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> PublishOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `ttl` from now.
    pub fn with_ttl(self, ttl: Duration) -> PublishOptions {
        self.with_deadline(Instant::now() + ttl)
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: u8) -> PublishOptions {
        self.priority = priority;
        self
    }
}

/// Type-erased handles into the matcher for the subscription lifecycle.
///
/// The matcher itself moves into the supervisor thread at start-up and the
/// broker handle is not generic over it, so the subscribe/unsubscribe path
/// reaches it through these boxed closures instead.
pub(crate) struct MatcherHooks {
    /// Called once per [`Broker::subscribe`]: lets the matcher precompute
    /// and pin the subscription's projections before any event arrives.
    pub(crate) prepare: Box<dyn Fn(&Subscription) + Send + Sync>,
    /// Called once when a subscription leaves the registry (unsubscribe or
    /// reap): releases whatever `prepare` pinned.
    pub(crate) release: Box<dyn Fn(&Subscription) + Send + Sync>,
    /// Samples the matcher's semantic cache counters.
    pub(crate) cache_stats: Box<dyn Fn() -> CacheStats + Send + Sync>,
}

/// State shared between the broker handle, its workers, and the
/// supervisor.
pub(crate) struct Shared {
    pub(crate) registry: RwLock<HashMap<SubscriptionId, Arc<Registration>>>,
    pub(crate) index: SubscriptionIndex,
    pub(crate) hooks: MatcherHooks,
    pub(crate) stats: Arc<StatsInner>,
    pub(crate) config: BrokerConfig,
    /// The ingress sender, used directly by `publish` — no lock, no
    /// per-publish clone. [`Broker::close`] closes the channel itself
    /// ([`Sender::close`]): later sends fail, and workers exit once the
    /// queue has drained.
    pub(crate) ingress: Sender<Job>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) dead_letters: DeadLetterQueue,
    /// Bounded per-event pipeline traces; capacity 0 (the default)
    /// disables tracing.
    pub(crate) trace: TraceRing<EventTrace>,
    /// Bounded per-match-test explanations; capacity 0 (the default)
    /// disables the ring.
    pub(crate) explain: TraceRing<MatchExplanation>,
    /// Sampled causal spans; disabled unless
    /// [`BrokerConfig::span_sample_every`] is non-zero.
    pub(crate) spans: SpanCollector,
    /// Labeled metric families; `None` unless
    /// [`BrokerConfig::labeled_metrics`] is on, so the disabled hot path
    /// pays one branch per event.
    pub(crate) dim: Option<DimMetrics>,
    /// Ring of periodic cumulative snapshots backing the windowed
    /// (`{window="..."}`) series. Always present; frames are pushed only
    /// by the supervisor tick ([`BrokerConfig::window_tick_ms`]) or by an
    /// explicit [`Broker::tick_window`], so the hot path never touches it.
    pub(crate) window: WindowRing,
    /// The shadow quality evaluator; empty unless
    /// [`Broker::with_quality_sampling`] installed an oracle.
    pub(crate) quality: OnceLock<Arc<QualityState>>,
    /// The adaptive overload controller; `None` unless
    /// [`BrokerConfig::with_overload_control`] enabled it, so the hot
    /// path pays a single branch when it is off.
    pub(crate) overload: Option<OverloadController>,
    /// When [`Broker::tick_window_if_stale`] last pushed a frame; backs
    /// the lazy scrape-driven tick used by the probe's `/metrics` server.
    pub(crate) last_lazy_tick: parking_lot::Mutex<Option<Instant>>,
    /// The always-on flight recorder; `None` unless
    /// [`BrokerConfig::with_flight_recorder`] enabled it, so the dequeue
    /// hot path pays a single branch when it is off.
    pub(crate) recorder: Option<FlightRecorder>,
    /// The sampling cost-attribution tables; `None` unless
    /// [`BrokerConfig::with_cost_attribution`] enabled them, so the
    /// dispatch hot path pays a single branch when they are off.
    pub(crate) cost: Option<CostState>,
    /// Broker start time, backing the `tep_uptime_seconds` gauge.
    pub(crate) started: Instant,
}

/// Labeled (dimensional) metric families, built once at start-up when
/// [`BrokerConfig::labeled_metrics`] is on. Theme and subscriber
/// families are capped at [`BrokerConfig::label_cardinality`] series;
/// excess labels fold into the `_overflow` bucket.
pub(crate) struct DimMetrics {
    /// Match tests attributed to each event theme tag (an event with two
    /// tags counts its tests under both, so the family's sum can exceed
    /// the bare `tep_match_tests_total`).
    pub(crate) match_by_theme: CounterFamily,
    /// Match tests per cache temperature (`exact` / `thematic` /
    /// `cached`).
    pub(crate) match_by_temp: CounterFamily,
    /// Notifications admitted per subscriber id.
    pub(crate) notif_by_sub: CounterFamily,
    /// Space-saving sketch of the hottest event theme tags.
    pub(crate) hot_themes: TopKSketch,
    /// Space-saving sketch of the hottest event terms (tuple attributes
    /// and values).
    pub(crate) hot_terms: TopKSketch,
}

impl DimMetrics {
    fn new(cardinality: usize) -> DimMetrics {
        DimMetrics {
            match_by_theme: CounterFamily::new(cardinality),
            // Temperature is a closed three-value set; no cap pressure.
            match_by_temp: CounterFamily::new(4),
            notif_by_sub: CounterFamily::new(cardinality),
            hot_themes: TopKSketch::new(cardinality.max(16)),
            hot_terms: TopKSketch::new(cardinality.max(16)),
        }
    }
}

/// Sampling cost-attribution state, built once at start-up when
/// [`BrokerConfig::with_cost_attribution`] is on. A deterministic 1-in-k
/// sample of dispatches charges measured match and deliver nanoseconds to
/// the owning subscription-index entry, the event's theme tags, and the
/// delivered subscribers; scaling any sampled figure by `every`
/// estimates the true total (exact when `every == 1`).
pub(crate) struct CostState {
    /// The 1-in-k sampling rate; always ≥ 1 when the state exists.
    pub(crate) every: u64,
    /// Exact per-index-entry totals, keyed by the entry's dense slot and
    /// stamped with its uid so recycled slots never inherit charges.
    pub(crate) entries: CostTable,
    /// Exact per-subscriber totals, keyed by subscription id.
    pub(crate) subscribers: CostTable,
    /// Sampled match nanoseconds per event theme tag, capped at
    /// [`BrokerConfig::label_cardinality`] series.
    pub(crate) theme_match_ns: CounterFamily,
    /// Sampled deliver nanoseconds per event theme tag.
    pub(crate) theme_deliver_ns: CounterFamily,
    /// Space-saving sketch of the most expensive index entries
    /// (by sampled match + deliver nanoseconds).
    pub(crate) hot_entries: TopKSketch,
    /// Space-saving sketch of the most expensive theme tags.
    pub(crate) hot_themes: TopKSketch,
    /// Space-saving sketch of the most expensive subscribers.
    pub(crate) hot_subscribers: TopKSketch,
    /// Global sampled match nanoseconds, reconciled against the match
    /// stage histograms (sampled × every ≈ histogram sum).
    pub(crate) match_ns: AtomicU64,
    /// Global sampled deliver nanoseconds.
    pub(crate) deliver_ns: AtomicU64,
    /// Sampled dispatches charged so far.
    pub(crate) samples: AtomicU64,
}

impl CostState {
    fn new(every: u64, cardinality: usize) -> CostState {
        CostState {
            every: every.max(1),
            entries: CostTable::new(),
            subscribers: CostTable::new(),
            theme_match_ns: CounterFamily::new(cardinality),
            theme_deliver_ns: CounterFamily::new(cardinality),
            hot_entries: TopKSketch::new(cardinality.max(16)),
            hot_themes: TopKSketch::new(cardinality.max(16)),
            hot_subscribers: TopKSketch::new(cardinality.max(16)),
            match_ns: AtomicU64::new(0),
            deliver_ns: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }

    /// Whether the dispatch of event `seq` against index entry `uid` is
    /// in the deterministic sample — the same splitmix64 decision the
    /// quality sampler uses, so the choice is reproducible across runs
    /// and uncorrelated with publish order.
    #[inline]
    pub(crate) fn should_sample(&self, seq: u64, uid: u64) -> bool {
        crate::quality::mix(seq, uid).is_multiple_of(self.every)
    }

    /// Charges one sampled dispatch to its index entry and the global
    /// sampled totals. Allocation-free: the entry label was preformatted
    /// at subscribe time and the sketch increments tracked keys in place.
    pub(crate) fn charge_entry(&self, slot: u32, uid: u64, match_ns: u64, deliver_ns: u64) {
        self.entries
            .charge(u64::from(slot), uid, match_ns, deliver_ns, |label| {
                self.hot_entries.record_n(label, match_ns + deliver_ns);
            });
        self.match_ns.fetch_add(match_ns, Ordering::Relaxed);
        self.deliver_ns.fetch_add(deliver_ns, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Charges a delivered subscriber its share of a sampled dispatch.
    pub(crate) fn charge_subscriber(&self, id: u64, match_ns: u64, deliver_ns: u64) {
        self.subscribers
            .charge(id, id, match_ns, deliver_ns, |label| {
                self.hot_subscribers.record_n(label, match_ns + deliver_ns);
            });
    }

    /// Charges one of the event's theme tags the full sampled cost (an
    /// event with two tags charges both, like `match_by_theme`).
    pub(crate) fn charge_theme(&self, tag: &str, match_ns: u64, deliver_ns: u64) {
        self.theme_match_ns.add(tag, match_ns);
        self.theme_deliver_ns.add(tag, deliver_ns);
        self.hot_themes.record_n(tag, match_ns + deliver_ns);
    }

    /// The per-theme cost table as sorted [`CostEntry`] rows (the
    /// partition planner's input). Theme rows carry no per-row sample
    /// count — a dispatch charges every tag of its event — so `samples`
    /// is 0 on each row.
    pub(crate) fn theme_entries(&self) -> Vec<CostEntry> {
        use std::collections::BTreeMap;
        let mut themes: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for (label, ns) in self.theme_match_ns.snapshot() {
            themes.entry(label).or_default().0 = ns;
        }
        for (label, ns) in self.theme_deliver_ns.snapshot() {
            themes.entry(label).or_default().1 = ns;
        }
        let mut rows: Vec<CostEntry> = themes
            .into_iter()
            .map(|(label, (match_ns, deliver_ns))| CostEntry {
                label,
                match_ns,
                deliver_ns,
                samples: 0,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.label.cmp(&b.label)));
        rows
    }
}

/// A point-in-time cost-attribution report ([`Broker::costs`]).
///
/// All nanosecond figures are **sampled** sums: every 1-in-`sample_every`
/// dispatch contributes its full measured cost, so multiplying a sampled
/// figure by `sample_every` estimates the true total (exact at
/// `sample_every == 1`). `entries` / `subscribers` / `themes` are sorted
/// most-expensive first; the `hot_*` lists are the amortized top-k
/// sketches feeding the flight recorder (approximate, but allocation-free
/// to maintain).
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    /// Whether cost attribution is on
    /// ([`BrokerConfig::with_cost_attribution`]).
    pub enabled: bool,
    /// The 1-in-k sampling rate (0 when disabled).
    pub sample_every: u64,
    /// Dispatches charged so far.
    pub samples: u64,
    /// Sampled match nanoseconds across all charged dispatches.
    pub sampled_match_ns: u64,
    /// Sampled deliver nanoseconds across all charged dispatches.
    pub sampled_deliver_ns: u64,
    /// Exact sampled totals per subscription-index entry.
    pub entries: Vec<CostEntry>,
    /// Exact sampled totals per subscriber.
    pub subscribers: Vec<CostEntry>,
    /// Sampled totals per event theme tag (`samples` is 0 on these rows;
    /// see [`CostState::theme_entries`]).
    pub themes: Vec<CostEntry>,
    /// Approximate `(label, sampled ns)` of the most expensive entries.
    pub hot_entries: Vec<(String, u64)>,
    /// Approximate `(label, sampled ns)` of the most expensive themes.
    pub hot_themes: Vec<(String, u64)>,
    /// Approximate `(label, sampled ns)` of the most expensive
    /// subscribers.
    pub hot_subscribers: Vec<(String, u64)>,
}

impl CostReport {
    /// Estimated true match nanoseconds (`sampled × sample_every`).
    pub fn estimated_match_ns(&self) -> u64 {
        self.sampled_match_ns.saturating_mul(self.sample_every)
    }

    /// Estimated true deliver nanoseconds (`sampled × sample_every`).
    pub fn estimated_deliver_ns(&self) -> u64 {
        self.sampled_deliver_ns.saturating_mul(self.sample_every)
    }

    /// Estimated true match + deliver nanoseconds.
    pub fn estimated_total_ns(&self) -> u64 {
        self.estimated_match_ns()
            .saturating_add(self.estimated_deliver_ns())
    }
}

/// Cumulative counters and stage histograms captured in each window
/// frame; names match their `/metrics` series so windowed output lines
/// up with the cumulative ones.
const FRAME_COUNTERS: [&str; 5] = [
    "tep_published_total",
    "tep_processed_total",
    "tep_match_tests_total",
    "tep_notifications_total",
    "tep_routing_skipped_total",
];

impl Shared {
    /// The current cumulative counters and stage histograms as one
    /// window frame.
    pub(crate) fn current_frame(&self) -> MetricsFrame {
        let stats = self.stats.snapshot();
        let stages = self.stats.stage_snapshot();
        let mut frame = MetricsFrame::new();
        frame
            .counter("tep_published_total", stats.published)
            .counter("tep_processed_total", stats.processed)
            .counter("tep_match_tests_total", stats.match_tests)
            .counter("tep_notifications_total", stats.notifications)
            .counter("tep_routing_skipped_total", stats.routing_skipped)
            .histogram("tep_stage_queue_wait_seconds", stages.queue_wait)
            .histogram("tep_stage_match_exact_seconds", stages.match_exact)
            .histogram("tep_stage_match_thematic_seconds", stages.match_thematic)
            .histogram("tep_stage_match_cached_seconds", stages.match_cached)
            .histogram("tep_stage_deliver_seconds", stages.deliver);
        frame
    }

    /// Writes one flight-recorder diagnostic frame: counters, queue and
    /// breaker gauges, load state, per-stage latency summaries, and the
    /// hottest themes. Allocation-free in steady state — counters come
    /// from a flat atomic snapshot, stages accumulate into the ring's
    /// reused scratch, and gauges walk the registry without collecting.
    pub(crate) fn fill_frame(&self, w: &mut FrameWriter<'_>) {
        let stats = self.stats.snapshot();
        w.counter("published", stats.published);
        w.counter("processed", stats.processed);
        w.counter("match_tests", stats.match_tests);
        w.counter("notifications", stats.notifications);
        w.counter("routing_skipped", stats.routing_skipped);
        w.counter("quarantined", stats.quarantined);
        w.counter("rejected_publishes", stats.rejected_publishes);
        w.counter("dropped_full", stats.dropped_full);
        w.counter("dropped_disconnected", stats.dropped_disconnected);
        w.counter("worker_panics", stats.worker_panics);
        w.counter("shed_deadline", stats.shed_deadline);
        w.counter("shed_load", stats.shed_load);
        w.counter("breaker_open_drops", stats.breaker_open);
        w.counter("breaker_trips", stats.breaker_trips);
        w.gauge("live_workers", stats.live_workers as f64);
        w.gauge("publish_queue_depth", self.ingress.len() as f64);
        w.gauge("dead_letters", self.dead_letters.len() as f64);
        // One registry pass for the subscriber-side gauges.
        let mut depth_sum = 0usize;
        let mut depth_max = 0usize;
        let mut open_breakers = 0usize;
        for reg in self.registry.read().values() {
            let depth = reg.sender.len();
            depth_sum += depth;
            depth_max = depth_max.max(depth);
            if reg
                .breaker
                .as_ref()
                .is_some_and(|breaker| breaker.lock().is_open())
            {
                open_breakers += 1;
            }
        }
        w.gauge("subscriber_queue_depth_sum", depth_sum as f64);
        w.gauge("subscriber_queue_depth_max", depth_max as f64);
        w.gauge("open_breakers", open_breakers as f64);
        match &self.overload {
            Some(overload) => {
                w.label("load_state", overload.current().as_str());
                w.gauge("ewma_queue_wait_ms", overload.ewma_wait_ms());
            }
            None => w.label("load_state", "off"),
        }
        w.stage("queue_wait", |snap| {
            self.stats.accumulate_stage(|t| &t.queue_wait, snap);
        });
        w.stage("match_exact", |snap| {
            self.stats.accumulate_stage(|t| &t.match_exact, snap);
        });
        w.stage("match_thematic", |snap| {
            self.stats.accumulate_stage(|t| &t.match_thematic, snap);
        });
        w.stage("match_cached", |snap| {
            self.stats.accumulate_stage(|t| &t.match_cached, snap);
        });
        w.stage("deliver", |snap| {
            self.stats.accumulate_stage(|t| &t.deliver, snap);
        });
        if let Some(dim) = &self.dim {
            dim.hot_themes
                .for_each_top(8, |name, count| w.theme(name, count));
        }
        if let Some(cost) = &self.cost {
            cost.hot_entries
                .for_each_top(8, |name, ns| w.cost(name, ns));
        }
    }

    /// Fires a diagnostic trigger if the recorder is on and the kind is
    /// out of cooldown; `detail` is built lazily so hot paths pay nothing
    /// for a suppressed trigger. Returns the bundle sequence number when
    /// a bundle was assembled.
    pub(crate) fn fire_trigger(
        &self,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) -> Option<u64> {
        let recorder = self.recorder.as_ref()?;
        if !recorder.trigger_armed(kind) {
            return None;
        }
        let context = self.diagnostic_context_json();
        recorder.trigger(kind, &detail(), &context)
    }

    /// The bundle's `context` object: config fingerprint, headline
    /// counters, overload state, and the span / explanation ring tails.
    /// Runs only at trigger time, so it allocates freely.
    fn diagnostic_context_json(&self) -> String {
        use std::fmt::Write;
        let stats = self.stats.snapshot();
        let fingerprint = config_fingerprint(&self.config);
        let mut out = String::with_capacity(2048);
        let _ = write!(
            out,
            "{{\n    \"config_fingerprint\": \"{}\",\n    \"config\": \"{}\",\n",
            fingerprint.1,
            escape_json(&fingerprint.0)
        );
        let _ = writeln!(
            out,
            "    \"stats\": {{\"published\": {}, \"processed\": {}, \"notifications\": {}, \
             \"quarantined\": {}, \"worker_panics\": {}, \"live_workers\": {}, \
             \"dead_letters\": {}}},",
            stats.published,
            stats.processed,
            stats.notifications,
            stats.quarantined,
            stats.worker_panics,
            stats.live_workers,
            self.dead_letters.len(),
        );
        match &self.overload {
            Some(overload) => {
                let state = overload.current();
                let _ = writeln!(
                    out,
                    "    \"overload\": {{\"state\": \"{}\", \"severity\": {}, \
                     \"forced\": {}, \"ewma_queue_wait_ms\": {:.6}, \"transitions\": {}}},",
                    escape_json(state.as_str()),
                    state.severity(),
                    overload.forced().is_some(),
                    overload.ewma_wait_ms(),
                    overload.transitions(),
                );
            }
            None => out.push_str("    \"overload\": {\"enabled\": false},\n"),
        }
        if let Some(quality) = self.quality.get() {
            let report = report_drift_json(&quality.report());
            let _ = writeln!(out, "    \"quality_drift\": {report},");
        }
        let spans = render_spans_json(&self.spans.snapshot());
        let _ = writeln!(out, "    \"spans\": {},", spans.trim_end());
        let explanations = crate::explain::render_explanations_json(&self.explain.snapshot());
        let _ = write!(
            out,
            "    \"explanations\": {}\n  }}",
            explanations.trim_end()
        );
        out
    }
}

/// Renders a quality report's drift alerts as a JSON string array.
fn report_drift_json(report: &crate::quality::QualityReport) -> String {
    let mut out = String::from("[");
    for (i, alert) in report.drift.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let line = format!(
            "{:?}: {:.4} -> {:.4}",
            alert.kind, alert.older, alert.recent
        );
        out.push('"');
        out.push_str(&escape_json(&line));
        out.push('"');
    }
    out.push(']');
    out
}

/// A stable human-readable summary of the load-bearing config knobs plus
/// its FNV-1a hash — enough for an operator reading a bundle to tell
/// "which configuration was this broker running" without shipping the
/// whole config (tep-broker renders JSON by hand; serde_json is only a
/// dev-dependency).
fn config_fingerprint(config: &BrokerConfig) -> (String, String) {
    let summary = format!(
        "workers={} threshold={} queue={} notif={} policy={:?}/{:?} routing={:?} \
         isolate={} attempts={} batch={} overload={} recorder={} cost={}",
        config.workers,
        config.delivery_threshold,
        config.queue_capacity,
        config.notification_capacity,
        config.publish_policy,
        config.subscriber_policy,
        config.routing_policy,
        config.isolate_matcher_panics,
        config.max_match_attempts,
        config.dequeue_batch,
        config.overload.is_some(),
        config.recorder.is_some(),
        config.cost_sample_every,
    );
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in summary.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (summary, format!("{hash:016x}"))
}

/// A thread-pool publish/subscribe broker around any [`Matcher`].
///
/// Events published while subscribers exist are matched on worker threads
/// against every registered subscription; matches at or above the
/// configured delivery threshold are sent to the subscriber's channel.
/// Ordering across workers is not guaranteed (synchronization decoupling).
///
/// The worker pool is **supervised**: matcher panics are isolated per
/// match test (or, with isolation disabled, crash the worker and the
/// supervisor respawns it), repeatedly-failing events are quarantined to a
/// bounded dead-letter queue, and overload at both the ingress queue and
/// the subscriber channels is governed by explicit policies
/// ([`PublishPolicy`], [`crate::SubscriberPolicy`]). See the crate docs
/// for the full failure model.
pub struct Broker {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    /// Publish-order sequence numbers for [`EventTrace::seq`].
    next_seq: AtomicU64,
}

impl Broker {
    /// Starts the broker with `config.workers` matching threads plus one
    /// supervisor thread.
    pub fn start<M>(matcher: Arc<M>, config: BrokerConfig) -> Broker
    where
        M: Matcher + Send + Sync + 'static + ?Sized,
    {
        let (tx, rx) = bounded::<Job>(config.queue_capacity.max(1));
        let worker_count = config.workers.max(1);
        let hooks = MatcherHooks {
            prepare: {
                let m = Arc::clone(&matcher);
                Box::new(move |s| m.prepare_subscription(s))
            },
            release: {
                let m = Arc::clone(&matcher);
                Box::new(move |s| m.release_subscription(s))
            },
            cache_stats: {
                let m = Arc::clone(&matcher);
                Box::new(move || m.cache_stats())
            },
        };
        let recorder = config.recorder.as_ref().map(|settings| {
            let settings = settings.normalized();
            FlightRecorder::new(RecorderConfig {
                frame_capacity: settings.frame_capacity,
                tick_interval: Duration::from_millis(settings.tick_ms.max(1)),
                spool_dir: settings.spool_dir.as_ref().map(Into::into),
                spool_capacity: settings.spool_capacity,
                trigger_cooldown: Duration::from_millis(settings.trigger_cooldown_ms),
            })
        });
        let shared = Arc::new(Shared {
            registry: RwLock::new(HashMap::new()),
            index: SubscriptionIndex::new(),
            hooks,
            stats: Arc::new(StatsInner::new(worker_count)),
            dead_letters: DeadLetterQueue::new(config.dead_letter_capacity),
            trace: TraceRing::new(config.trace_capacity),
            explain: TraceRing::new(config.explain_capacity),
            spans: SpanCollector::new(config.span_capacity, config.span_sample_every),
            dim: config
                .labeled_metrics
                .then(|| DimMetrics::new(config.label_cardinality)),
            window: WindowRing::new(config.window_capacity),
            quality: OnceLock::new(),
            last_lazy_tick: parking_lot::Mutex::new(None),
            overload: config.overload.clone().map(OverloadController::new),
            recorder,
            cost: (config.cost_sample_every > 0)
                .then(|| CostState::new(config.cost_sample_every, config.label_cardinality)),
            started: Instant::now(),
            config,
            ingress: tx,
            shutdown: AtomicBool::new(false),
        });
        if let Some(recorder) = &shared.recorder {
            // Warm every ring slot's buffers once, so the steady-state
            // tick path never allocates — a wrap lands on a slot whose
            // vectors already hold this frame shape.
            for _ in 0..recorder.config().frame_capacity {
                recorder.force_tick(|w| shared.fill_frame(w));
            }
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tep-broker-supervisor".into())
                .spawn(move || supervisor_loop(shared, matcher, rx, worker_count))
                .expect("spawn broker supervisor")
        };
        Broker {
            shared,
            supervisor: Some(supervisor),
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Registers a subscription and returns its id plus the notification
    /// channel.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Closed`] after [`Broker::shutdown`] or
    /// [`Broker::close`].
    pub fn subscribe(
        &self,
        subscription: Subscription,
    ) -> Result<(SubscriptionId, Receiver<Notification>), BrokerError> {
        self.subscribe_with(subscription, SubscribeOptions::default())
    }

    /// Registers a subscription with per-subscription [`SubscribeOptions`]
    /// (e.g. [`SubscribeOptions::explain`] to attach a
    /// [`MatchExplanation`] to every delivered notification).
    ///
    /// # Errors
    ///
    /// [`BrokerError::Closed`] after [`Broker::shutdown`] or
    /// [`Broker::close`].
    pub fn subscribe_with(
        &self,
        subscription: Subscription,
        options: SubscribeOptions,
    ) -> Result<(SubscriptionId, Receiver<Notification>), BrokerError> {
        self.subscribe_arc_with(Arc::new(subscription), options)
    }

    /// Like [`Broker::subscribe`], but takes the subscription behind an
    /// `Arc` so callers registering many duplicate subscribers (the
    /// million-subscriber bench) can share one allocation across all of
    /// them — the index hash-conses duplicates onto one entry either way.
    pub fn subscribe_arc(
        &self,
        subscription: Arc<Subscription>,
    ) -> Result<(SubscriptionId, Receiver<Notification>), BrokerError> {
        self.subscribe_arc_with(subscription, SubscribeOptions::default())
    }

    /// [`Broker::subscribe_arc`] with per-subscription options.
    pub fn subscribe_arc_with(
        &self,
        subscription: Arc<Subscription>,
        options: SubscribeOptions,
    ) -> Result<(SubscriptionId, Receiver<Notification>), BrokerError> {
        if self.is_closed() {
            return Err(BrokerError::Closed);
        }
        let id = SubscriptionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = bounded(self.shared.config.notification_capacity.max(1));
        let keep_receiver = matches!(
            self.shared.config.subscriber_policy,
            crate::config::SubscriberPolicy::DropOldest
        );
        let approx = subscription
            .predicates()
            .iter()
            .any(|p| p.is_attribute_approx() || p.is_value_approx());
        // Warm the matcher's caches (and pin the subscription's
        // projections) before the subscription can receive traffic.
        (self.shared.hooks.prepare)(&subscription);
        // Resolve the labeled-counter handle once, here, so deliveries
        // never pay a label lookup.
        let notif_counter = self
            .shared
            .dim
            .as_ref()
            .map(|dim| dim.notif_by_sub.handle(&id.to_string()));
        let registration = Arc::new(Registration {
            subscription,
            sender: tx,
            receiver: keep_receiver.then(|| rx.clone()),
            consecutive_full: AtomicU64::new(0),
            approx,
            explain: options.explain,
            notif_counter,
            breaker: self
                .shared
                .overload
                .as_ref()
                .map(|_| parking_lot::Mutex::new(BreakerState::new(id.0))),
        });
        // Index before the registry insert: the index *is* the dispatch
        // path now (it fans out to registrations directly), so an indexed
        // registration is immediately matchable, while the registry entry
        // only backs bookkeeping (counts, queue gauges, reaping).
        let (slot, uid) = self.shared.index.insert(id, &registration);
        if let Some(cost) = &self.shared.cost {
            // Preformat the cost labels here so sampled dispatches never
            // allocate: the table owns the strings, charges borrow them.
            cost.entries
                .ensure(u64::from(slot), uid, || format!("entry-{slot}"));
            cost.subscribers
                .ensure(id.0, id.0, || format!("sub-{}", id.0));
        }
        self.shared.registry.write().insert(id, registration);
        Ok((id, rx))
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let Some(reg) = self.shared.registry.write().remove(&id) else {
            return false;
        };
        self.shared.index.remove(id, &reg.subscription);
        (self.shared.hooks.release)(&reg.subscription);
        true
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.shared.registry.read().len()
    }

    /// Publishes an event under the configured [`PublishPolicy`].
    ///
    /// # Errors
    ///
    /// * [`BrokerError::Closed`] after shutdown;
    /// * [`BrokerError::QueueFull`] under [`PublishPolicy::Reject`] when
    ///   the ingress queue is full;
    /// * [`BrokerError::PublishTimeout`] under [`PublishPolicy::Timeout`]
    ///   when the queue stays full past the deadline.
    ///
    /// Rejected and timed-out publishes are counted in
    /// [`BrokerStats::rejected_publishes`]; `published` counts only
    /// accepted events.
    pub fn publish(&self, event: Event) -> Result<(), BrokerError> {
        self.publish_arc_with(Arc::new(event), PublishOptions::default())
    }

    /// Publishes an event with per-event [`PublishOptions`] (deadline and
    /// priority, consumed by the overload controller's shedding
    /// decisions).
    ///
    /// # Errors
    ///
    /// Same as [`Broker::publish`].
    pub fn publish_with(&self, event: Event, options: PublishOptions) -> Result<(), BrokerError> {
        self.publish_arc_with(Arc::new(event), options)
    }

    /// Publishes an already-shared event without copying it: the broker
    /// takes a reference to the caller's `Arc<Event>`, and that same
    /// allocation flows through matching, notifications, traces, and the
    /// dead-letter queue. This is the zero-copy fast path for callers
    /// that publish one event to several brokers, retain it after
    /// publishing, or pre-build their event set (benchmarks).
    ///
    /// # Errors
    ///
    /// Same as [`Broker::publish`].
    pub fn publish_arc(&self, event: Arc<Event>) -> Result<(), BrokerError> {
        self.publish_arc_with(event, PublishOptions::default())
    }

    /// [`Broker::publish_arc`] with per-event [`PublishOptions`].
    ///
    /// All other publish methods funnel here; in steady state the path is
    /// lock-free and allocation-free — the ingress sender is used in
    /// place (no `RwLock` read, no sender clone) and the job is a flat
    /// value around the caller's `Arc`.
    ///
    /// # Errors
    ///
    /// Same as [`Broker::publish`].
    pub fn publish_arc_with(
        &self,
        event: Arc<Event>,
        options: PublishOptions,
    ) -> Result<(), BrokerError> {
        let tx = &self.shared.ingress;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Sampled events reserve their root span id up front so every
        // downstream span of this event can parent to it; unsampled
        // traffic pays one modulo and a branch.
        let span = self
            .shared
            .spans
            .sampled(seq)
            .then(|| (self.shared.spans.start_span(), Instant::now()));
        let job = Job::new(event, seq, span.map(|(id, _)| id), options);
        let result = match self.shared.config.publish_policy {
            PublishPolicy::Block => tx.send(job).map_err(|_| BrokerError::Closed),
            // A zero timeout is exactly `Reject` with a different error:
            // one queue-full check and no parked-thread wakeup dance
            // (`send_timeout(0)` could park and lose the race even with a
            // free slot).
            PublishPolicy::Timeout(deadline) if deadline.is_zero() => {
                tx.try_send(job).map_err(|e| match e {
                    TrySendError::Full(_) => BrokerError::PublishTimeout,
                    TrySendError::Disconnected(_) => BrokerError::Closed,
                })
            }
            PublishPolicy::Timeout(deadline) => {
                tx.send_timeout(job, deadline).map_err(|e| match e {
                    SendTimeoutError::Timeout(_) => BrokerError::PublishTimeout,
                    SendTimeoutError::Disconnected(_) => BrokerError::Closed,
                })
            }
            PublishPolicy::Reject => tx.try_send(job).map_err(|e| match e {
                TrySendError::Full(_) => BrokerError::QueueFull,
                TrySendError::Disconnected(_) => BrokerError::Closed,
            }),
        };
        match result {
            Ok(()) => {
                self.shared.stats.published.fetch_add(1, Ordering::Relaxed);
                if let Some((id, start)) = span {
                    // The publish span covers policy wait + enqueue.
                    self.shared.spans.record(
                        id,
                        None,
                        seq,
                        "publish",
                        start,
                        Instant::now(),
                        vec![],
                    );
                }
                Ok(())
            }
            Err(e) => {
                if matches!(e, BrokerError::QueueFull | BrokerError::PublishTimeout) {
                    self.shared
                        .stats
                        .rejected_publishes
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Blocks until every accepted event has finished its matching pass
    /// (delivered, dropped, or quarantined), or until `timeout` passes.
    ///
    /// # Errors
    ///
    /// [`BrokerError::FlushTimeout`] when events are still in flight at
    /// the deadline — e.g. the queue is deeper than the deadline allows,
    /// or a matcher is wedged.
    #[must_use = "flush can time out; check the result before reading counters"]
    pub fn flush_timeout(&self, timeout: Duration) -> Result<(), BrokerError> {
        let deadline = Instant::now() + timeout;
        loop {
            // Raw counter snapshot: the poll loop doesn't need the cache
            // stats `Broker::stats` samples from the matcher.
            let s = self.shared.stats.snapshot();
            if s.processed >= s.published {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(BrokerError::FlushTimeout);
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Blocks until every accepted event has been matched, with a
    /// generous default deadline (60 s).
    ///
    /// Convenience wrapper over [`Broker::flush_timeout`] for tests,
    /// examples, and benchmarks.
    ///
    /// # Errors
    ///
    /// [`BrokerError::FlushTimeout`] if the default deadline passes — at
    /// that point the broker is effectively wedged, and the caller
    /// decides whether that is fatal.
    #[must_use = "flush can time out; check the result before reading counters"]
    pub fn flush(&self) -> Result<(), BrokerError> {
        self.flush_timeout(DEFAULT_FLUSH_DEADLINE)
    }

    /// A snapshot of the broker's counters, including the matcher's
    /// semantic cache counters.
    pub fn stats(&self) -> BrokerStats {
        let mut stats = self.shared.stats.snapshot();
        stats.semantic_cache = (self.shared.hooks.cache_stats)();
        stats.distinct_subscriptions = self.shared.index.distinct_subscriptions() as u64;
        stats.index_entries = self.shared.index.entry_count() as u64;
        stats
    }

    /// A snapshot of the per-stage latency histograms: ingress queue
    /// wait, match tests (split exact / thematic-cold / cache-warm), and
    /// notification delivery.
    pub fn stage_latencies(&self) -> StageLatencies {
        self.shared.stats.stage_snapshot()
    }

    /// The last [`BrokerConfig::trace_capacity`] per-event pipeline
    /// traces, oldest first. Empty unless tracing was enabled.
    pub fn traces(&self) -> Vec<EventTrace> {
        self.shared.trace.snapshot()
    }

    /// The newest `n` match explanations, oldest first. Empty unless
    /// [`BrokerConfig::explain_capacity`] is non-zero.
    pub fn explain_last(&self, n: usize) -> Vec<MatchExplanation> {
        let mut all = self.shared.explain.snapshot();
        let keep_from = all.len().saturating_sub(n);
        all.drain(..keep_from);
        all
    }

    /// The retained causal spans across all sampled events, oldest first.
    /// Empty unless [`BrokerConfig::span_sample_every`] is non-zero.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.shared.spans.snapshot()
    }

    /// The causal span tree(s) for the event with sequence number `seq`:
    /// publish → route → match tests → deliveries, reconstructed from the
    /// span ring. Empty for unsampled events; spans whose parents were
    /// evicted surface as extra roots.
    pub fn span_tree(&self, seq: u64) -> Vec<SpanNode> {
        span_tree(&self.shared.spans.snapshot(), seq)
    }

    /// Installs the shadow quality evaluator: deterministically samples
    /// one in `every` subscription × event match tests, replays each
    /// sampled pair against `oracle`, and maintains rolling
    /// precision/recall/F1 with confidence bounds and drift alerts
    /// (read with [`Broker::quality`]).
    ///
    /// A consuming builder so the evaluator is wired before traffic
    /// flows; the first installation wins — later calls on the same
    /// broker are ignored.
    pub fn with_quality_sampling(self, every: u64, oracle: Box<dyn QualityOracle>) -> Broker {
        let _ = self
            .shared
            .quality
            .set(Arc::new(QualityState::new(every, oracle)));
        self
    }

    /// The current rolling quality report, or `None` when no oracle was
    /// installed via [`Broker::with_quality_sampling`].
    pub fn quality(&self) -> Option<QualityReport> {
        self.shared.quality.get().map(|q| q.report())
    }

    /// The overload controller's current load state, or `None` when
    /// overload control is off.
    pub fn load_state(&self) -> Option<LoadState> {
        self.shared.overload.as_ref().map(|o| o.current())
    }

    /// Pins the load state to `state` (or releases the pin with `None`) —
    /// for overload drills, benches, and the quality harness measuring
    /// the F1 cost of a degraded matching rung. The organic state machine
    /// keeps evaluating underneath and resumes control on release. A
    /// no-op when overload control is off.
    pub fn force_load_state(&self, state: Option<LoadState>) {
        if let Some(overload) = &self.shared.overload {
            overload.force(state);
            // Forcing bypasses the organic state machine (no transition
            // event fires), so raise the flight-recorder trigger directly
            // — a drill should produce the same evidence as the real
            // thing.
            if state == Some(LoadState::Critical) {
                self.shared.fire_trigger("load_critical", || {
                    "load state forced to critical".to_string()
                });
            }
        }
    }

    /// Subscribers whose circuit breaker is currently open (0 when
    /// overload control is off).
    pub fn open_breakers(&self) -> usize {
        if self.shared.overload.is_none() {
            return 0;
        }
        self.shared
            .registry
            .read()
            .values()
            .filter(|reg| {
                reg.breaker
                    .as_ref()
                    .is_some_and(|breaker| breaker.lock().is_open())
            })
            .count()
    }

    /// The `/overload` endpoint body: load state, queue-wait EWMA, shed
    /// and breaker counters as JSON. `{"enabled": false}` when overload
    /// control is off.
    pub fn overload_json(&self) -> String {
        let Some(overload) = &self.shared.overload else {
            return "{\n  \"enabled\": false\n}\n".to_string();
        };
        let stats = self.shared.stats.snapshot();
        let state = overload.current();
        format!(
            concat!(
                "{{\n",
                "  \"enabled\": true,\n",
                "  \"state\": \"{state}\",\n",
                "  \"severity\": {severity},\n",
                "  \"forced\": {forced},\n",
                "  \"degraded_matching\": \"{mode}\",\n",
                "  \"ewma_queue_wait_ms\": {wait:.6},\n",
                "  \"transitions\": {transitions},\n",
                "  \"state_age_secs\": {age:.3},\n",
                "  \"shed_deadline\": {shed_deadline},\n",
                "  \"shed_load\": {shed_load},\n",
                "  \"breaker_trips\": {breaker_trips},\n",
                "  \"breaker_open_drops\": {breaker_open},\n",
                "  \"open_breakers\": {open_breakers}\n",
                "}}\n",
            ),
            state = escape_json(state.as_str()),
            severity = state.severity(),
            forced = overload.forced().is_some(),
            mode = escape_json(overload.degraded_mode().as_str()),
            wait = overload.ewma_wait_ms(),
            transitions = overload.transitions(),
            age = overload.state_age_secs(),
            shed_deadline = stats.shed_deadline,
            shed_load = stats.shed_load,
            breaker_trips = stats.breaker_trips,
            breaker_open = stats.breaker_open,
            open_breakers = self.open_breakers(),
        )
    }

    /// The current cost-attribution report. `enabled` is `false` (and
    /// every table empty) unless the broker was started with
    /// [`BrokerConfig::with_cost_attribution`].
    pub fn costs(&self) -> CostReport {
        let Some(cost) = &self.shared.cost else {
            return CostReport::default();
        };
        CostReport {
            enabled: true,
            sample_every: cost.every,
            samples: cost.samples.load(Ordering::Relaxed),
            sampled_match_ns: cost.match_ns.load(Ordering::Relaxed),
            sampled_deliver_ns: cost.deliver_ns.load(Ordering::Relaxed),
            entries: cost.entries.snapshot(),
            subscribers: cost.subscribers.snapshot(),
            themes: cost.theme_entries(),
            hot_entries: cost.hot_entries.top(16),
            hot_themes: cost.hot_themes.top(16),
            hot_subscribers: cost.hot_subscribers.top(16),
        }
    }

    /// The `/costs` endpoint body: the [`Broker::costs`] report as JSON.
    /// `{"enabled": false}` when cost attribution is off. Per-entity
    /// sections are capped at 64 rows (most expensive first) with a
    /// `*_truncated` count so a million-subscriber broker still scrapes
    /// cheaply.
    pub fn costs_json(&self) -> String {
        use std::fmt::Write;
        let report = self.costs();
        if !report.enabled {
            return "{\n  \"enabled\": false\n}\n".to_string();
        }
        fn section(out: &mut String, name: &str, rows: &[CostEntry]) {
            use std::fmt::Write;
            const CAP: usize = 64;
            let shown = rows.len().min(CAP);
            let _ = write!(out, "  \"{name}\": [");
            for (i, row) in rows[..shown].iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"label\": \"{}\", \"match_ns\": {}, \"deliver_ns\": {}, \
                     \"samples\": {}}}",
                    escape_json(&row.label),
                    row.match_ns,
                    row.deliver_ns,
                    row.samples,
                );
            }
            let _ = writeln!(out, "],\n  \"{name}_truncated\": {},", rows.len() - shown);
        }
        fn hot(out: &mut String, name: &str, rows: &[(String, u64)], last: bool) {
            use std::fmt::Write;
            let _ = write!(out, "    \"{name}\": [");
            for (i, (label, ns)) in rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"label\": \"{}\", \"sampled_ns\": {ns}}}",
                    escape_json(label)
                );
            }
            out.push(']');
            out.push_str(if last { "\n" } else { ",\n" });
        }
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\n  \"enabled\": true,\n  \"sample_every\": {},\n  \"samples\": {},\n  \
             \"sampled_match_ns\": {},\n  \"sampled_deliver_ns\": {},\n  \
             \"estimated_match_ns\": {},\n  \"estimated_deliver_ns\": {},\n  \
             \"estimated_total_ns\": {},\n",
            report.sample_every,
            report.samples,
            report.sampled_match_ns,
            report.sampled_deliver_ns,
            report.estimated_match_ns(),
            report.estimated_deliver_ns(),
            report.estimated_total_ns(),
        );
        section(&mut out, "entries", &report.entries);
        section(&mut out, "subscribers", &report.subscribers);
        section(&mut out, "themes", &report.themes);
        out.push_str("  \"top\": {\n");
        hot(&mut out, "entries", &report.hot_entries, false);
        hot(&mut out, "themes", &report.hot_themes, false);
        hot(&mut out, "subscribers", &report.hot_subscribers, true);
        out.push_str("  }\n}\n");
        out
    }

    /// Fires the manual flight-recorder trigger (the `POST
    /// /debug/trigger` handler): freezes the frame ring into a
    /// diagnostic bundle with `detail` as the cause. Returns the bundle
    /// sequence number, or `None` when the recorder is off or the manual
    /// trigger kind is still cooling down.
    pub fn trigger_diagnostic(&self, detail: &str) -> Option<u64> {
        self.shared.fire_trigger("manual", || detail.to_string())
    }

    /// The newest diagnostic bundle JSON (the `GET /debug/bundle` body),
    /// or `None` when the recorder is off or no trigger has fired yet.
    pub fn latest_bundle_json(&self) -> Option<Arc<String>> {
        self.shared.recorder.as_ref()?.latest_bundle()
    }

    /// Records one flight-recorder frame immediately, regardless of the
    /// tick interval. A no-op when the recorder is off. For tests and
    /// embedders that want deterministic frame boundaries (the recorder
    /// otherwise ticks itself from the dequeue path and the supervisor).
    pub fn record_diagnostic_frame(&self) {
        if let Some(recorder) = &self.shared.recorder {
            recorder.force_tick(|w| self.shared.fill_frame(w));
        }
    }

    /// Diagnostic bundles assembled so far (0 when the recorder is off).
    pub fn diagnostic_bundles(&self) -> u64 {
        self.shared
            .recorder
            .as_ref()
            .map_or(0, |r| r.bundles_assembled())
    }

    /// The `/readyz` endpoint body: `(ready, JSON)`. Liveness
    /// (`/healthz`) answers "is the process up"; readiness answers
    /// "should a front tier route new load here" — `false` once the
    /// broker is shut down or its load state reaches `Overloaded`, so an
    /// overloaded shard is drained instead of restarted.
    pub fn readiness(&self) -> (bool, String) {
        let state = self.load_state();
        let overloaded = state.is_some_and(|s| s.severity() >= LoadState::Overloaded.severity());
        let ready = !self.is_closed() && !overloaded;
        let body = format!(
            "{{\"ready\": {ready}, \"load_state\": \"{}\", \"open_breakers\": {}, \
             \"quarantined\": {}, \"closed\": {}}}\n",
            escape_json(state.map_or("off", |s| s.as_str())),
            self.open_breakers(),
            self.dead_letter_count(),
            self.is_closed(),
        );
        (ready, body)
    }

    /// Pushes one cumulative snapshot frame into the window ring *now*.
    ///
    /// The supervisor does this automatically every
    /// [`BrokerConfig::window_tick_ms`] when that is non-zero; tests and
    /// embedders that want deterministic frame boundaries call this
    /// directly (e.g. once before and once after a burst).
    pub fn tick_window(&self) {
        self.shared.window.push(self.shared.current_frame());
    }

    /// Pushes a window frame only if at least `min_interval` has elapsed
    /// since the last frame pushed through this method.
    ///
    /// This is the lazy, scrape-driven variant of [`Broker::tick_window`]
    /// for embedders that serve `/metrics` without a supervisor tick
    /// (`window_tick_ms` = 0): calling it at the top of every scrape keeps
    /// the windowed rates fresh — even after long idle stretches — while
    /// the min-interval guard stops a scrape storm from flooding the ring
    /// with near-identical frames. Returns whether a frame was pushed.
    pub fn tick_window_if_stale(&self, min_interval: Duration) -> bool {
        let mut last = self.shared.last_lazy_tick.lock();
        let now = Instant::now();
        if let Some(prev) = *last {
            if now.saturating_duration_since(prev) < min_interval {
                return false;
            }
        }
        *last = Some(now);
        self.shared.window.push(self.shared.current_frame());
        true
    }

    /// Windowed deltas over roughly the last `span`: counter rates and
    /// per-stage histogram slices computed from the frame ring. `None`
    /// until at least two frames exist (no tick has happened yet).
    pub fn window(&self, span: Duration) -> Option<WindowedDelta> {
        self.shared.window.window(span)
    }

    /// The `k` hottest event theme tags by estimated frequency,
    /// descending. Empty unless [`BrokerConfig::labeled_metrics`] is on.
    pub fn top_themes(&self, k: usize) -> Vec<(String, u64)> {
        self.shared
            .dim
            .as_ref()
            .map(|dim| dim.hot_themes.top(k))
            .unwrap_or_default()
    }

    /// The `k` hottest event terms (tuple attributes and values) by
    /// estimated frequency, descending. Empty unless
    /// [`BrokerConfig::labeled_metrics`] is on.
    pub fn top_terms(&self, k: usize) -> Vec<(String, u64)> {
        self.shared
            .dim
            .as_ref()
            .map(|dim| dim.hot_terms.top(k))
            .unwrap_or_default()
    }

    /// The `/top` endpoint body: top-`k` themes and terms as JSON.
    pub fn top_json(&self, k: usize) -> String {
        fn entries(items: &[(String, u64)]) -> String {
            let mut out = String::new();
            for (i, (name, count)) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"name\": \"{}\", \"count\": {count}}}",
                    escape_json(name)
                ));
            }
            out
        }
        format!(
            "{{\n  \"themes\": [{}],\n  \"terms\": [{}]\n}}\n",
            entries(&self.top_themes(k)),
            entries(&self.top_terms(k))
        )
    }

    /// Events currently waiting on the ingress queue (drains to 0 after
    /// close).
    pub fn publish_queue_depth(&self) -> usize {
        self.shared.ingress.len()
    }

    /// Every broker counter and stage histogram bundled into a
    /// [`MetricsRegistry`], ready for
    /// [`MetricsRegistry::render_prometheus`] or
    /// [`MetricsRegistry::render_json`].
    ///
    /// Beyond the cumulative series, the registry carries:
    ///
    /// * per-policy routing decisions
    ///   (`tep_routing_decisions_total{policy="..."}`),
    /// * queue-depth gauges for the ingress queue and the subscriber
    ///   channels, so overload policies are observable before they trip,
    /// * windowed (`{window="10s"|"60s"}`) rates and stage histograms
    ///   once the window ring has frames (see [`Broker::tick_window`]),
    /// * labeled families and quality gauges when
    ///   [`BrokerConfig::labeled_metrics`] / quality sampling are on.
    pub fn metrics(&self) -> MetricsRegistry {
        let stats = self.stats();
        let stages = self.stage_latencies();
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "tep_published_total",
            "Events accepted by publish",
            stats.published,
        )
        .counter(
            "tep_processed_total",
            "Events whose matching pass finished",
            stats.processed,
        )
        .counter(
            "tep_match_tests_total",
            "Subscription x event match tests executed",
            stats.match_tests,
        )
        .counter(
            "tep_notifications_total",
            "Notifications delivered to subscriber channels",
            stats.notifications,
        )
        .counter(
            "tep_dropped_full_total",
            "Notifications dropped on a full subscriber channel",
            stats.dropped_full,
        )
        .counter(
            "tep_dropped_disconnected_total",
            "Notifications dropped on a hung-up subscriber",
            stats.dropped_disconnected,
        )
        .counter_with(
            "tep_dropped_total",
            "Notifications dropped, by reason",
            &[("reason", "full")],
            stats.dropped_full,
        )
        .counter_with(
            "tep_dropped_total",
            "Notifications dropped, by reason",
            &[("reason", "disconnected")],
            stats.dropped_disconnected,
        )
        .counter(
            "tep_worker_panics_total",
            "Matcher panics caught or fatal to a worker",
            stats.worker_panics,
        )
        .counter(
            "tep_workers_respawned_total",
            "Workers respawned by the supervisor",
            stats.workers_respawned,
        )
        .counter(
            "tep_quarantined_total",
            "Events moved to the dead-letter queue",
            stats.quarantined,
        )
        .counter(
            "tep_rejected_publishes_total",
            "Publishes refused by the ingress overload policy",
            stats.rejected_publishes,
        )
        .counter(
            "tep_disconnected_subscribers_total",
            "Subscriber registrations reaped",
            stats.disconnected_subscribers,
        )
        .counter(
            "tep_routing_skipped_total",
            "Match tests skipped by theme routing",
            stats.routing_skipped,
        )
        .counter(
            "tep_covered_skips_total",
            "Candidate index entries skipped by covering (subset miss or twin hit)",
            stats.covered_skips,
        )
        .counter(
            "tep_semantic_cache_hits_total",
            "Semantic cache hits across the matcher's caches",
            stats.semantic_cache.hits,
        )
        .counter(
            "tep_semantic_cache_misses_total",
            "Semantic cache misses across the matcher's caches",
            stats.semantic_cache.misses,
        )
        .counter(
            "tep_semantic_cache_evictions_total",
            "Semantic cache entries dropped by rotation",
            stats.semantic_cache.evictions,
        )
        .gauge(
            "tep_live_workers",
            "Worker threads currently alive",
            stats.live_workers as f64,
        )
        .gauge(
            "tep_semantic_cache_entries",
            "Resident semantic cache entries",
            stats.semantic_cache.entries as f64,
        )
        .gauge(
            "tep_dead_letters",
            "Events currently quarantined",
            self.dead_letter_count() as f64,
        )
        .gauge(
            "tep_distinct_subscriptions",
            "Distinct canonical predicate multisets currently subscribed",
            stats.distinct_subscriptions as f64,
        )
        .gauge(
            "tep_index_entries",
            "Live hash-consed subscription index entries",
            stats.index_entries as f64,
        )
        .summary(
            "tep_stage_queue_wait_summary_seconds",
            "Publish to dequeue queue wait (quantile summary)",
            stages.queue_wait.clone(),
        )
        .summary(
            "tep_stage_match_exact_summary_seconds",
            "Match-test latency, exact-only subscriptions (quantile summary)",
            stages.match_exact.clone(),
        )
        .summary(
            "tep_stage_match_thematic_summary_seconds",
            "Match-test latency, approximate cache-miss subscriptions (quantile summary)",
            stages.match_thematic.clone(),
        )
        .summary(
            "tep_stage_match_cached_summary_seconds",
            "Match-test latency, warm-cache subscriptions (quantile summary)",
            stages.match_cached.clone(),
        )
        .summary(
            "tep_stage_deliver_summary_seconds",
            "Match decision to subscriber-channel hand-off (quantile summary)",
            stages.deliver.clone(),
        )
        .histogram(
            "tep_stage_queue_wait_seconds",
            "Publish to dequeue queue wait",
            stages.queue_wait,
        )
        .histogram(
            "tep_stage_match_exact_seconds",
            "Match-test latency, exact-only subscriptions",
            stages.match_exact,
        )
        .histogram(
            "tep_stage_match_thematic_seconds",
            "Match-test latency, approximate subscriptions with a cache miss",
            stages.match_thematic,
        )
        .histogram(
            "tep_stage_match_cached_seconds",
            "Match-test latency, approximate subscriptions served from warm caches",
            stages.match_cached,
        )
        .histogram(
            "tep_stage_deliver_seconds",
            "Match decision to subscriber-channel hand-off",
            stages.deliver,
        )
        .counter_with(
            "tep_routing_decisions_total",
            "Events whose candidate set was selected, by routing policy",
            &[("policy", "broadcast")],
            stats.routed_broadcast,
        )
        .counter_with(
            "tep_routing_decisions_total",
            "Events whose candidate set was selected, by routing policy",
            &[("policy", "theme_overlap")],
            stats.routed_theme_overlap,
        )
        .gauge(
            "tep_publish_queue_depth",
            "Events waiting on the ingress queue",
            self.publish_queue_depth() as f64,
        )
        .gauge_with(
            "tep_build_info",
            "Build metadata as an info gauge; constant 1",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("git", option_env!("GIT_SHA").unwrap_or("unknown")),
            ],
            1.0,
        )
        .gauge(
            "tep_uptime_seconds",
            "Seconds since the broker started",
            self.shared.started.elapsed().as_secs_f64(),
        );
        self.subscriber_queue_metrics(&mut reg);
        self.windowed_metrics(&mut reg);
        self.labeled_metrics(&mut reg);
        self.quality_metrics(&mut reg);
        self.overload_metrics(&mut reg);
        self.cost_metrics(&mut reg);
        reg
    }

    /// Load-state, shed, and circuit-breaker series; no-ops when overload
    /// control is off.
    fn overload_metrics(&self, reg: &mut MetricsRegistry) {
        let Some(overload) = &self.shared.overload else {
            return;
        };
        let stats = self.shared.stats.snapshot();
        reg.gauge(
            "tep_load_state",
            "Broker load state (0=healthy 1=elevated 2=overloaded 3=critical)",
            overload.current().severity() as f64,
        )
        .gauge(
            "tep_load_ewma_queue_wait_ms",
            "EWMA ingress queue wait driving the load-state machine",
            overload.ewma_wait_ms(),
        )
        .counter(
            "tep_load_transitions_total",
            "Load-state machine transitions",
            overload.transitions(),
        )
        .counter_with(
            "tep_shed_total",
            "Events shed at dequeue by overload control, by reason",
            &[("reason", "deadline")],
            stats.shed_deadline,
        )
        .counter_with(
            "tep_shed_total",
            "Events shed at dequeue by overload control, by reason",
            &[("reason", "load")],
            stats.shed_load,
        )
        .counter_with(
            "tep_dropped_total",
            "Notifications dropped, by reason",
            &[("reason", "breaker_open")],
            stats.breaker_open,
        )
        .counter(
            "tep_breaker_trips_total",
            "Subscriber circuit-breaker trips (transitions to Open)",
            stats.breaker_trips,
        )
        .gauge(
            "tep_breakers_open",
            "Subscribers whose circuit breaker is currently open",
            self.open_breakers() as f64,
        );
    }

    /// Queue-depth gauges over the subscriber channels: the sum and max
    /// across all registrations, plus per-subscriber labeled gauges when
    /// labeled metrics are on (capped at the label cardinality).
    fn subscriber_queue_metrics(&self, reg: &mut MetricsRegistry) {
        let mut depths: Vec<(SubscriptionId, usize)> = self
            .shared
            .registry
            .read()
            .iter()
            .map(|(id, r)| (*id, r.sender.len()))
            .collect();
        let sum: usize = depths.iter().map(|(_, d)| d).sum();
        let max = depths.iter().map(|(_, d)| *d).max().unwrap_or(0);
        reg.gauge(
            "tep_subscriber_queue_depth_sum",
            "Notifications waiting across all subscriber channels",
            sum as f64,
        )
        .gauge(
            "tep_subscriber_queue_depth_max",
            "Deepest subscriber channel backlog",
            max as f64,
        );
        if self.shared.dim.is_none() {
            return;
        }
        // Deterministic export order; the cardinality cap bounds the
        // series count, mirroring the counter families.
        depths.sort_by_key(|(id, _)| *id);
        depths.truncate(self.shared.config.label_cardinality);
        for (id, depth) in depths {
            reg.gauge_with(
                "tep_subscriber_queue_depth",
                "Notifications waiting per subscriber channel",
                &[("subscriber", &id.to_string())],
                depth as f64,
            );
        }
    }

    /// Windowed rates and stage-histogram slices for the last ~10s and
    /// ~60s, labeled `{window="..."}` next to their cumulative series.
    fn windowed_metrics(&self, reg: &mut MetricsRegistry) {
        for (label, span) in [
            ("10s", Duration::from_secs(10)),
            ("60s", Duration::from_secs(60)),
        ] {
            let Some(delta) = self.shared.window.window(span) else {
                continue;
            };
            for name in FRAME_COUNTERS {
                if let Some(rate) = delta.rate(name) {
                    let rate_name = name
                        .strip_suffix("_total")
                        .map(|base| format!("{base}_rate"))
                        .unwrap_or_else(|| format!("{name}_rate"));
                    reg.gauge_with(
                        &rate_name,
                        "Windowed per-second rate of the matching counter",
                        &[("window", label)],
                        rate,
                    );
                }
            }
            for (name, snap) in delta.histograms() {
                reg.histogram_with(
                    name,
                    "Windowed slice of the matching stage histogram",
                    &[("window", label)],
                    snap.clone(),
                );
            }
        }
    }

    /// Labeled counter families and top-k tracking gauges; no-ops when
    /// [`BrokerConfig::labeled_metrics`] is off.
    fn labeled_metrics(&self, reg: &mut MetricsRegistry) {
        let Some(dim) = &self.shared.dim else {
            return;
        };
        for (theme, count) in dim.match_by_theme.snapshot() {
            reg.counter_with(
                "tep_theme_match_tests_total",
                "Match tests attributed to each event theme tag",
                &[("theme", &theme)],
                count,
            );
        }
        for (temperature, count) in dim.match_by_temp.snapshot() {
            reg.counter_with(
                "tep_match_temperature_total",
                "Match tests by cache temperature",
                &[("temperature", &temperature)],
                count,
            );
        }
        for (subscriber, count) in dim.notif_by_sub.snapshot() {
            reg.counter_with(
                "tep_subscriber_notifications_total",
                "Notifications admitted per subscriber channel",
                &[("subscriber", &subscriber)],
                count,
            );
        }
        reg.gauge(
            "tep_topk_themes_tracked",
            "Theme slots occupied in the top-k sketch",
            dim.hot_themes.tracked() as f64,
        )
        .gauge(
            "tep_topk_terms_tracked",
            "Term slots occupied in the top-k sketch",
            dim.hot_terms.tracked() as f64,
        );
    }

    /// Live-quality gauges from the shadow evaluator; no-ops until
    /// [`Broker::with_quality_sampling`] installed an oracle.
    fn quality_metrics(&self, reg: &mut MetricsRegistry) {
        let Some(report) = self.quality() else {
            return;
        };
        reg.gauge(
            "tep_quality_precision",
            "Live sampled precision against the ground-truth oracle",
            report.precision,
        )
        .gauge(
            "tep_quality_recall",
            "Live sampled recall against the ground-truth oracle",
            report.recall,
        )
        .gauge(
            "tep_quality_f1",
            "Live sampled F1 against the ground-truth oracle",
            report.f1,
        )
        .counter(
            "tep_quality_samples_total",
            "Match tests judged by the quality oracle",
            report.judged(),
        )
        .counter(
            "tep_quality_unknown_total",
            "Sampled pairs the oracle could not judge",
            report.unknown,
        )
        .gauge(
            "tep_quality_drift_alerts",
            "Rolling drift alerts currently raised",
            report.drift.len() as f64,
        );
    }

    /// Sampled cost-attribution series; no-ops when cost attribution is
    /// off ([`BrokerConfig::with_cost_attribution`]).
    fn cost_metrics(&self, reg: &mut MetricsRegistry) {
        let Some(cost) = &self.shared.cost else {
            return;
        };
        const HELP: &str = "Sampled cost nanoseconds charged, by entity class and stage kind";
        let entries = cost.entries.totals();
        let subscribers = cost.subscribers.totals();
        let theme_match: u64 = cost.theme_match_ns.snapshot().iter().map(|(_, n)| *n).sum();
        let theme_deliver: u64 = cost
            .theme_deliver_ns
            .snapshot()
            .iter()
            .map(|(_, n)| *n)
            .sum();
        reg.counter_with(
            "tep_cost_ns_total",
            HELP,
            &[("entity", "entry"), ("kind", "match")],
            entries.match_ns,
        )
        .counter_with(
            "tep_cost_ns_total",
            HELP,
            &[("entity", "entry"), ("kind", "deliver")],
            entries.deliver_ns,
        )
        .counter_with(
            "tep_cost_ns_total",
            HELP,
            &[("entity", "subscriber"), ("kind", "match")],
            subscribers.match_ns,
        )
        .counter_with(
            "tep_cost_ns_total",
            HELP,
            &[("entity", "subscriber"), ("kind", "deliver")],
            subscribers.deliver_ns,
        )
        .counter_with(
            "tep_cost_ns_total",
            HELP,
            &[("entity", "theme"), ("kind", "match")],
            theme_match,
        )
        .counter_with(
            "tep_cost_ns_total",
            HELP,
            &[("entity", "theme"), ("kind", "deliver")],
            theme_deliver,
        )
        .counter(
            "tep_cost_samples_total",
            "Dispatches charged by the cost sampler",
            cost.samples.load(Ordering::Relaxed),
        )
        .gauge(
            "tep_cost_sample_every",
            "Cost-attribution 1-in-k sampling rate",
            cost.every as f64,
        );
    }

    /// The quarantined events currently in the dead-letter queue, oldest
    /// first (bounded; the oldest entries may have been evicted).
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.shared.dead_letters.snapshot()
    }

    /// Removes and returns everything in the dead-letter queue.
    pub fn drain_dead_letters(&self) -> Vec<DeadLetter> {
        self.shared.dead_letters.drain()
    }

    /// Number of events currently quarantined.
    pub fn dead_letter_count(&self) -> usize {
        self.shared.dead_letters.len()
    }

    /// Whether [`Broker::close`] or [`Broker::shutdown`] has run.
    pub fn is_closed(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Stops accepting events without consuming the broker: subsequent
    /// [`Broker::publish`] / [`Broker::subscribe`] calls return
    /// [`BrokerError::Closed`], while queued events still drain and
    /// stats/dead letters remain readable. Safe to call from any thread,
    /// any number of times.
    pub fn close(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Closing the channel fails in-flight and future sends and wakes
        // blocked publishers; workers exit after draining what's queued.
        self.shared.ingress.close();
    }

    /// Stops accepting events, drains the queue, and joins the workers
    /// and the supervisor.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.close();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("subscriptions", &self.subscription_count())
            .field("closed", &self.is_closed())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RoutingPolicy, SubscriberPolicy};
    use tep_events::{parse_event, parse_subscription};
    use tep_matcher::{ExactMatcher, FaultConfig, FaultInjectingMatcher, MatchResult};

    fn broker() -> Broker {
        Broker::start(
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default().with_workers(2),
        )
    }

    /// Keeps injected panics from spamming test output: installs a hook
    /// that silences panics whose payload is the injected-fault marker.
    fn silence_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected"))
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .is_some_and(|m| m.contains("injected"));
                if !injected {
                    default_hook(info);
                }
            }));
        });
    }

    /// A matcher that panics on every event whose `k` value is `boom`.
    #[derive(Debug)]
    struct BoomMatcher;

    impl Matcher for BoomMatcher {
        fn match_event(&self, subscription: &Subscription, event: &Event) -> MatchResult {
            if event.value_of("k") == Some("boom") {
                panic!("injected test fault");
            }
            ExactMatcher::new().match_event(subscription, event)
        }
    }

    #[test]
    fn delivers_matching_events() {
        let b = broker();
        let (id, rx) = b
            .subscribe(parse_subscription("{device= computer}").unwrap())
            .unwrap();
        b.publish(parse_event("{device: computer}").unwrap())
            .unwrap();
        b.publish(parse_event("{device: laptop}").unwrap()).unwrap();
        b.flush().unwrap();
        let n = rx.try_recv().expect("one delivery");
        assert_eq!(n.subscription, id);
        assert_eq!(n.score(), 1.0);
        assert!(
            rx.try_recv().is_err(),
            "non-matching event must not deliver"
        );
        let stats = b.stats();
        assert_eq!(stats.published, 2);
        assert_eq!(stats.processed, 2);
        assert_eq!(stats.notifications, 1);
        b.shutdown();
    }

    #[test]
    fn multiple_subscribers_fan_out() {
        let b = broker();
        let (_, rx1) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        let (_, rx2) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        assert_eq!(b.subscription_count(), 2);
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush().unwrap();
        assert!(rx1.try_recv().is_ok());
        assert!(rx2.try_recv().is_ok());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let b = broker();
        let (id, rx) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        assert!(b.unsubscribe(id));
        assert!(!b.unsubscribe(id));
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush().unwrap();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn dropped_receiver_counts_and_reaps_the_registration() {
        let b = broker();
        let (_, rx) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        drop(rx);
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush().unwrap();
        let stats = b.stats();
        assert_eq!(stats.dropped_disconnected, 1);
        assert_eq!(stats.delivery_failures(), 1);
        assert_eq!(stats.notifications, 0);
        assert_eq!(stats.disconnected_subscribers, 1);
        assert_eq!(
            b.subscription_count(),
            0,
            "dead registration must be reaped, not leaked"
        );
        // Later events no longer pay a match test for the dead subscriber.
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush().unwrap();
        assert_eq!(b.stats().dropped_disconnected, 1);
    }

    #[test]
    fn operations_after_shutdown_error() {
        let mut b = broker();
        b.shutdown_in_place();
        assert_eq!(
            b.publish(parse_event("{a: 1}").unwrap()).unwrap_err(),
            BrokerError::Closed
        );
        assert!(b.subscribe(parse_subscription("{a= 1}").unwrap()).is_err());
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_loss() {
        // A 1-slot queue forces publish() to block until workers drain;
        // nothing may be dropped.
        let config = BrokerConfig {
            workers: 1,
            queue_capacity: 1,
            ..BrokerConfig::default()
        };
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        let (_, rx) = b
            .subscribe(parse_subscription("{k= hit}").unwrap())
            .unwrap();
        for i in 0..64 {
            b.publish(parse_event(&format!("{{k: hit, i: n{i}}}")).unwrap())
                .unwrap();
        }
        b.flush().unwrap();
        assert_eq!(b.stats().processed, 64);
        assert_eq!(rx.try_iter().count(), 64);
    }

    #[test]
    fn many_events_all_processed() {
        let b = broker();
        let (_, rx) = b
            .subscribe(parse_subscription("{kind= wanted}").unwrap())
            .unwrap();
        for i in 0..200 {
            let kind = if i % 4 == 0 { "wanted" } else { "other" };
            b.publish(parse_event(&format!("{{kind: {kind}, seq: n{i}}}")).unwrap())
                .unwrap();
        }
        b.flush().unwrap();
        let delivered = rx.try_iter().count();
        assert_eq!(delivered, 50);
        assert_eq!(b.stats().processed, 200);
        assert_eq!(b.stats().match_tests, 200);
    }

    #[test]
    fn reject_policy_fails_fast_on_full_queue() {
        silence_injected_panics();
        // No workers can drain while the single worker sleeps on a slow
        // matcher, so the 1-slot queue fills immediately.
        let slow = FaultInjectingMatcher::new(
            ExactMatcher::new(),
            FaultConfig::none(1).with_latency(1.0, Duration::from_millis(50)),
        );
        let config = BrokerConfig {
            workers: 1,
            queue_capacity: 1,
            publish_policy: PublishPolicy::Reject,
            ..BrokerConfig::default()
        };
        let b = Broker::start(Arc::new(slow), config);
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        let mut rejected = 0;
        for i in 0..16 {
            if b.publish(parse_event(&format!("{{k: v{i}}}")).unwrap())
                == Err(BrokerError::QueueFull)
            {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "a 1-slot queue must reject under burst");
        let stats = b.stats();
        assert_eq!(stats.rejected_publishes, rejected);
        b.flush().unwrap();
        let stats = b.stats();
        assert_eq!(
            stats.processed, stats.published,
            "accepted events all process"
        );
    }

    #[test]
    fn timeout_policy_gives_up_after_deadline() {
        silence_injected_panics();
        let slow = FaultInjectingMatcher::new(
            ExactMatcher::new(),
            FaultConfig::none(1).with_latency(1.0, Duration::from_millis(100)),
        );
        let config = BrokerConfig {
            workers: 1,
            queue_capacity: 1,
            publish_policy: PublishPolicy::Timeout(Duration::from_millis(5)),
            ..BrokerConfig::default()
        };
        let b = Broker::start(Arc::new(slow), config);
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        let mut saw_timeout = false;
        for i in 0..8 {
            if b.publish(parse_event(&format!("{{k: v{i}}}")).unwrap())
                == Err(BrokerError::PublishTimeout)
            {
                saw_timeout = true;
                break;
            }
        }
        assert!(saw_timeout, "publish must time out against a wedged queue");
        assert!(b.stats().rejected_publishes >= 1);
    }

    #[test]
    fn zero_duration_timeout_behaves_like_reject() {
        silence_injected_panics();
        // Same wedged-queue setup as the Reject test: the single worker
        // sleeps on every match, so the 1-slot queue fills immediately.
        let slow = FaultInjectingMatcher::new(
            ExactMatcher::new(),
            FaultConfig::none(1).with_latency(1.0, Duration::from_millis(50)),
        );
        let config = BrokerConfig {
            workers: 1,
            queue_capacity: 1,
            publish_policy: PublishPolicy::Timeout(Duration::ZERO),
            ..BrokerConfig::default()
        };
        let b = Broker::start(Arc::new(slow), config);
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        let mut timed_out = 0u64;
        let burst_start = Instant::now();
        for i in 0..16 {
            match b.publish(parse_event(&format!("{{k: v{i}}}")).unwrap()) {
                Ok(()) => {}
                Err(BrokerError::PublishTimeout) => timed_out += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // One queue-full check, no sleep: the whole burst must come back
        // immediately (far under the 16 × 50ms a blocking send would
        // take), and failures surface as PublishTimeout, never QueueFull.
        assert!(timed_out > 0, "a 1-slot queue must fail fast under burst");
        assert!(
            burst_start.elapsed() < Duration::from_millis(200),
            "zero timeout must not park the publisher"
        );
        assert_eq!(b.stats().rejected_publishes, timed_out);
        b.flush().unwrap();
        let stats = b.stats();
        assert_eq!(stats.processed, stats.published);
    }

    #[test]
    fn overload_control_is_inert_for_default_traffic() {
        // Overload control on, default-priority events, no deadlines: the
        // broker must behave exactly as if the subsystem were off.
        let b = Broker::start(
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default()
                .with_workers(2)
                .with_overload_control(crate::OverloadConfig::default()),
        );
        assert_eq!(b.load_state(), Some(crate::LoadState::Healthy));
        let (_, rx) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        for _ in 0..50 {
            b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        }
        b.flush().unwrap();
        let stats = b.stats();
        assert_eq!(stats.notifications, 50);
        assert_eq!(stats.shed_total(), 0);
        assert_eq!(rx.try_iter().count(), 50);
        let json = b.overload_json();
        assert!(json.contains("\"enabled\": true"), "overload json: {json}");
    }

    #[test]
    fn overload_json_reports_disabled_without_config() {
        let b = broker();
        assert_eq!(b.load_state(), None);
        assert!(b.overload_json().contains("\"enabled\": false"));
        // Forcing is a documented no-op when the subsystem is off.
        b.force_load_state(Some(crate::LoadState::Critical));
        assert_eq!(b.load_state(), None);
    }

    #[test]
    fn isolated_panic_poisons_neither_worker_nor_other_events() {
        silence_injected_panics();
        let config = BrokerConfig::default()
            .with_workers(2)
            .with_max_match_attempts(1);
        let b = Broker::start(Arc::new(BoomMatcher), config);
        let (_, rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
        for i in 0..20 {
            let k = if i % 5 == 0 { "boom" } else { "ok" };
            b.publish(parse_event(&format!("{{k: {k}, seq: n{i}}}")).unwrap())
                .unwrap();
        }
        b.flush_timeout(Duration::from_secs(10)).unwrap();
        let stats = b.stats();
        assert_eq!(
            stats.processed, 20,
            "faulty events still count as processed"
        );
        assert_eq!(stats.worker_panics, 4);
        assert_eq!(stats.quarantined, 4);
        assert_eq!(
            stats.workers_respawned, 0,
            "isolation must not kill workers"
        );
        assert_eq!(stats.live_workers, 2);
        assert_eq!(rx.try_iter().count(), 16, "clean events all deliver");
        assert_eq!(b.dead_letter_count(), 4);
        assert!(b
            .dead_letters()
            .iter()
            .all(|d| d.event.value_of("k") == Some("boom") && d.attempts == 1));
    }

    #[test]
    fn unisolated_panic_kills_worker_and_supervisor_respawns_it() {
        silence_injected_panics();
        let config = BrokerConfig::default()
            .with_workers(2)
            .with_panic_isolation(false)
            .with_max_match_attempts(1);
        let b = Broker::start(Arc::new(BoomMatcher), config);
        let (_, rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
        for i in 0..20 {
            let k = if i % 5 == 0 { "boom" } else { "ok" };
            b.publish(parse_event(&format!("{{k: {k}, seq: n{i}}}")).unwrap())
                .unwrap();
        }
        b.flush_timeout(Duration::from_secs(10)).unwrap();
        // `flush` returns when the last boom is quarantined, which the
        // supervisor does *before* finishing the matching respawn — give
        // the bookkeeping a moment to settle before asserting on it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            let s = b.stats();
            if s.workers_respawned == 4 && s.live_workers == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = b.stats();
        assert_eq!(stats.processed, 20);
        assert_eq!(stats.worker_panics, 4, "each boom kills one worker");
        assert_eq!(stats.workers_respawned, 4);
        assert_eq!(stats.quarantined, 4);
        assert_eq!(stats.live_workers, 2, "the pool must be back to strength");
        assert_eq!(rx.try_iter().count(), 16);
        b.shutdown();
    }

    #[test]
    fn retry_budget_is_spent_before_quarantine() {
        silence_injected_panics();
        let config = BrokerConfig::default()
            .with_workers(1)
            .with_max_match_attempts(3);
        let b = Broker::start(Arc::new(BoomMatcher), config);
        let (_, _rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
        b.publish(parse_event("{k: boom}").unwrap()).unwrap();
        b.flush_timeout(Duration::from_secs(10)).unwrap();
        let stats = b.stats();
        assert_eq!(stats.worker_panics, 3, "all three attempts panic");
        assert_eq!(stats.quarantined, 1);
        let letters = b.dead_letters();
        assert_eq!(letters.len(), 1);
        assert_eq!(letters[0].attempts, 3);
    }

    #[test]
    fn dead_letter_queue_is_bounded() {
        silence_injected_panics();
        let config = BrokerConfig {
            workers: 1,
            max_match_attempts: 1,
            dead_letter_capacity: 4,
            ..BrokerConfig::default()
        };
        let b = Broker::start(Arc::new(BoomMatcher), config);
        let (_, _rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
        for i in 0..10 {
            b.publish(parse_event(&format!("{{k: boom, seq: n{i}}}")).unwrap())
                .unwrap();
        }
        b.flush_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(
            b.stats().quarantined,
            10,
            "the counter keeps the full total"
        );
        assert_eq!(b.dead_letter_count(), 4, "the queue keeps only the newest");
        let drained = b.drain_dead_letters();
        assert_eq!(drained.len(), 4);
        assert_eq!(b.dead_letter_count(), 0);
    }

    #[test]
    fn drop_oldest_policy_keeps_the_newest_notifications() {
        let config = BrokerConfig {
            workers: 1,
            notification_capacity: 4,
            subscriber_policy: SubscriberPolicy::DropOldest,
            ..BrokerConfig::default()
        };
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        let (_, rx) = b
            .subscribe(parse_subscription("{k= hit}").unwrap())
            .unwrap();
        for i in 0..12 {
            b.publish(parse_event(&format!("{{k: hit, seq: n{i}}}")).unwrap())
                .unwrap();
        }
        b.flush().unwrap();
        let received: Vec<String> = rx
            .try_iter()
            .map(|n| n.event.value_of("seq").unwrap_or_default().to_string())
            .collect();
        assert_eq!(received.len(), 4, "channel keeps exactly its capacity");
        assert!(
            received.contains(&"n11".to_string()),
            "newest must survive, got {received:?}"
        );
        let stats = b.stats();
        assert_eq!(stats.dropped_full, 8);
        assert_eq!(
            stats.notifications, 12,
            "every notification was admitted once"
        );
    }

    #[test]
    fn disconnect_after_policy_reaps_slow_subscribers() {
        let config = BrokerConfig {
            workers: 1,
            notification_capacity: 2,
            subscriber_policy: SubscriberPolicy::DisconnectAfter(3),
            ..BrokerConfig::default()
        };
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        // `slow` never drains its 2-slot channel; `healthy` is drained
        // after every event (flushing per publish keeps this deterministic).
        let (_, _slow_rx) = b
            .subscribe(parse_subscription("{k= hit}").unwrap())
            .unwrap();
        let (_, healthy_rx) = b
            .subscribe(parse_subscription("{k= hit}").unwrap())
            .unwrap();
        for i in 0..10 {
            b.publish(parse_event(&format!("{{k: hit, seq: n{i}}}")).unwrap())
                .unwrap();
            b.flush().unwrap();
            while healthy_rx.try_recv().is_ok() {}
        }
        let stats = b.stats();
        assert_eq!(
            b.subscription_count(),
            1,
            "the wedged subscriber must be reaped after 3 consecutive drops"
        );
        assert_eq!(stats.disconnected_subscribers, 1);
        // 2 delivered before wedging + 3 consecutive drops; then reaped.
        assert_eq!(stats.dropped_full, 3);
        b.shutdown();
    }

    #[test]
    fn flush_timeout_reports_wedged_queues() {
        silence_injected_panics();
        let slow = FaultInjectingMatcher::new(
            ExactMatcher::new(),
            FaultConfig::none(1).with_latency(1.0, Duration::from_millis(200)),
        );
        let b = Broker::start(Arc::new(slow), BrokerConfig::default().with_workers(1));
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        for i in 0..4 {
            b.publish(parse_event(&format!("{{k: v{i}}}")).unwrap())
                .unwrap();
        }
        assert_eq!(
            b.flush_timeout(Duration::from_millis(10)),
            Err(BrokerError::FlushTimeout)
        );
        // The generous deadline succeeds once the backlog drains.
        b.flush_timeout(Duration::from_secs(10)).unwrap();
    }

    #[test]
    fn theme_overlap_routes_by_shared_tags() {
        let config = BrokerConfig::default()
            .with_workers(2)
            .with_routing_policy(RoutingPolicy::ThemeOverlap);
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        let (_, power_rx) = b
            .subscribe(parse_subscription("({power}, {k= v})").unwrap())
            .unwrap();
        let (_, transport_rx) = b
            .subscribe(parse_subscription("({transport}, {k= v})").unwrap())
            .unwrap();
        let (_, bare_rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();

        b.publish(parse_event("({power, grid}, {k: v})").unwrap())
            .unwrap();
        b.flush().unwrap();
        assert_eq!(power_rx.try_iter().count(), 1, "shared tag delivers");
        assert_eq!(bare_rx.try_iter().count(), 1, "theme-less stays broadcast");
        assert_eq!(
            transport_rx.try_iter().count(),
            0,
            "disjoint themes must not deliver under ThemeOverlap"
        );
        let stats = b.stats();
        // The two candidates ({power} and the theme-less entry) carry
        // equal predicate multisets, so they are twins: one test serves
        // both and the second is a covered skip. The disjoint
        // {transport} pair is never even a candidate.
        assert_eq!(stats.match_tests, 1, "one test serves the twin pair");
        assert_eq!(stats.covered_skips, 1);
        assert_eq!(stats.routing_skipped, 1);

        // A theme-less event reaches only the broadcast set.
        b.publish(parse_event("{k: v}").unwrap()).unwrap();
        b.flush().unwrap();
        assert_eq!(bare_rx.try_iter().count(), 1);
        assert_eq!(power_rx.try_iter().count(), 0);
        assert_eq!(transport_rx.try_iter().count(), 0);
        let stats = b.stats();
        assert_eq!(stats.match_tests, 2);
        assert_eq!(stats.covered_skips, 1, "a lone candidate has no twin");
        assert_eq!(stats.routing_skipped, 3);
        b.shutdown();
    }

    #[test]
    fn broadcast_policy_still_delivers_across_disjoint_themes() {
        // The default policy must keep the historical semantics: a
        // theme-agnostic matcher delivers regardless of theme overlap.
        let b = broker();
        let (_, rx) = b
            .subscribe(parse_subscription("({transport}, {k= v})").unwrap())
            .unwrap();
        b.publish(parse_event("({power}, {k: v})").unwrap())
            .unwrap();
        b.flush().unwrap();
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(b.stats().routing_skipped, 0);
    }

    #[test]
    fn unsubscribe_and_reap_maintain_the_routing_table() {
        let config = BrokerConfig::default()
            .with_workers(1)
            .with_routing_policy(RoutingPolicy::ThemeOverlap);
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        let (id, _rx) = b
            .subscribe(parse_subscription("({power}, {k= v})").unwrap())
            .unwrap();
        assert!(b.unsubscribe(id));
        b.publish(parse_event("({power}, {k: v})").unwrap())
            .unwrap();
        b.flush().unwrap();
        let stats = b.stats();
        assert_eq!(stats.match_tests, 0);
        assert_eq!(
            stats.routing_skipped, 0,
            "unsubscribe must clear the routing entry with the registration"
        );

        // A hung-up subscriber is reaped from the routing table too.
        let (_, dead_rx) = b
            .subscribe(parse_subscription("({power}, {k= v})").unwrap())
            .unwrap();
        drop(dead_rx);
        b.publish(parse_event("({power}, {k: v})").unwrap())
            .unwrap();
        b.flush().unwrap();
        assert_eq!(b.stats().disconnected_subscribers, 1);
        assert_eq!(b.subscription_count(), 0);
        b.publish(parse_event("({power}, {k: v})").unwrap())
            .unwrap();
        b.flush().unwrap();
        let stats = b.stats();
        assert_eq!(stats.match_tests, 1, "reaped subscribers cost nothing");
        assert_eq!(
            stats.routing_skipped, 0,
            "reap must clear the routing entry, not just the registry"
        );
        b.shutdown();
    }

    #[test]
    fn subscription_lifecycle_reaches_matcher_caches() {
        use tep_corpus::{Corpus, CorpusConfig};
        use tep_index::InvertedIndex;
        use tep_matcher::{MatcherConfig, ProbabilisticMatcher};
        use tep_semantics::{DistributionalSpace, ParametricVectorSpace, ThematicEsaMeasure};
        let corpus = Corpus::generate(&CorpusConfig::small());
        let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
            InvertedIndex::build(&corpus),
        )));
        let matcher =
            ProbabilisticMatcher::new(ThematicEsaMeasure::new(pvsm), MatcherConfig::top1());
        let b = Broker::start(Arc::new(matcher), BrokerConfig::default().with_workers(1));
        let (id, _rx) = b
            .subscribe(parse_subscription("({energy policy}, {type~= energy usage~})").unwrap())
            .unwrap();
        assert!(
            b.stats().semantic_cache.pinned > 0,
            "subscribe must pin the subscription's projections"
        );
        assert!(b.unsubscribe(id));
        assert_eq!(
            b.stats().semantic_cache.pinned,
            0,
            "unsubscribe must release the pins"
        );
        b.shutdown();
    }

    #[test]
    fn explain_ring_captures_accepts_and_rejects() {
        let config = BrokerConfig::default()
            .with_workers(1)
            .with_explain_capacity(16);
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        let (id, _rx) = b
            .subscribe(parse_subscription("{device= computer}").unwrap())
            .unwrap();
        b.publish(parse_event("{device: computer}").unwrap())
            .unwrap();
        b.publish(parse_event("{device: laptop}").unwrap()).unwrap();
        b.flush().unwrap();
        let explanations = b.explain_last(10);
        assert_eq!(explanations.len(), 2, "accepted AND rejected tests");
        let accepted = explanations
            .iter()
            .find(|e| e.outcome == crate::MatchOutcome::Delivered)
            .expect("one delivered explanation");
        assert_eq!(accepted.subscription, id);
        assert_eq!(accepted.score, 1.0);
        assert_eq!(accepted.threshold, 0.25);
        assert_eq!(accepted.temperature, crate::CacheTemperature::Exact);
        let detail = accepted.detail.as_ref().expect("delivered tests explain");
        assert_eq!(detail.predicates.len(), 1);
        assert_eq!(detail.predicates[0].similarity, 1.0);
        let rejected = explanations
            .iter()
            .find(|e| e.outcome == crate::MatchOutcome::NoMapping)
            .expect("one rejected explanation");
        assert_eq!(rejected.score, 0.0);
        // explain_last(n) keeps only the newest n.
        assert_eq!(b.explain_last(1).len(), 1);
        assert_eq!(b.explain_last(0).len(), 0);
        b.shutdown();
    }

    #[test]
    fn explanations_are_off_by_default() {
        let b = broker();
        let (_, rx) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush().unwrap();
        assert!(b.explain_last(100).is_empty());
        assert!(rx.try_recv().unwrap().explanation.is_none());
        assert!(b.spans().is_empty());
    }

    #[test]
    fn subscribe_with_attaches_explanations_to_notifications() {
        let b = broker();
        let (_, rx) = b
            .subscribe_with(
                parse_subscription("{a= 1}").unwrap(),
                SubscribeOptions::explained(),
            )
            .unwrap();
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush().unwrap();
        let n = rx.try_recv().unwrap();
        let e = n.explanation.expect("opt-in attaches the explanation");
        assert_eq!(e.outcome, crate::MatchOutcome::Delivered);
        assert_eq!(e.score, 1.0);
        assert!(e.detail.is_some());
        // The broker-wide ring stays off: attachment is per-subscriber.
        assert!(b.explain_last(10).is_empty());
        b.shutdown();
    }

    #[test]
    fn sampled_events_reconstruct_a_span_tree() {
        let config = BrokerConfig::default()
            .with_workers(1)
            .with_span_sampling(2);
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        let (_, _rx) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        for _ in 0..4 {
            b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        }
        b.flush().unwrap();
        // 1-in-2 sampling: seqs 0 and 2 traced, 1 and 3 not.
        assert!(b.span_tree(1).is_empty());
        assert!(b.span_tree(3).is_empty());
        let tree = b.span_tree(0);
        assert_eq!(tree.len(), 1, "one root per event");
        let root = &tree[0];
        assert_eq!(root.record.name, "publish");
        assert_eq!(root.children.len(), 1);
        let route = &root.children[0];
        assert_eq!(route.record.name, "route");
        assert_eq!(route.children.len(), 1);
        let m = &route.children[0];
        assert_eq!(m.record.name, "match");
        assert_eq!(m.children.len(), 1);
        assert_eq!(m.children[0].record.name, "deliver");
        assert_eq!(root.size(), 4, "publish → route → match → deliver");
        b.shutdown();
    }

    #[test]
    fn quarantined_events_explain_the_panic_and_span_the_quarantine() {
        silence_injected_panics();
        let config = BrokerConfig::default()
            .with_workers(1)
            .with_max_match_attempts(1)
            .with_explain_capacity(8)
            .with_span_sampling(1);
        let b = Broker::start(Arc::new(BoomMatcher), config);
        let (_, _rx) = b.subscribe(parse_subscription("{k= ok}").unwrap()).unwrap();
        b.publish(parse_event("{k: boom}").unwrap()).unwrap();
        b.flush_timeout(Duration::from_secs(10)).unwrap();
        let explanations = b.explain_last(8);
        assert_eq!(explanations.len(), 1);
        match &explanations[0].outcome {
            crate::MatchOutcome::Panicked { reason } => {
                assert_eq!(reason, "injected test fault");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(explanations[0].detail.is_none());
        let tree = b.span_tree(0);
        assert_eq!(tree.len(), 1);
        let route = &tree[0].children[0];
        let names: Vec<&str> = route.children.iter().map(|c| c.record.name).collect();
        assert!(names.contains(&"match"));
        assert!(names.contains(&"quarantine"));
        b.shutdown();
    }

    #[test]
    fn close_is_idempotent_and_usable_from_shared_references() {
        let b = broker();
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.close();
        b.close();
        assert!(b.is_closed());
        assert_eq!(
            b.publish(parse_event("{a: 2}").unwrap()).unwrap_err(),
            BrokerError::Closed
        );
        // Already-accepted events still drain after close.
        b.flush_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(b.stats().processed, 1);
        b.shutdown();
    }

    #[test]
    fn routing_decision_counters_split_by_policy() {
        let b = broker();
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        b.publish(parse_event("{k: v}").unwrap()).unwrap();
        b.flush().unwrap();
        let stats = b.stats();
        assert_eq!(stats.routed_broadcast, 1);
        assert_eq!(stats.routed_theme_overlap, 0);
        let prom = b.metrics().render_prometheus();
        assert!(prom.contains("tep_routing_decisions_total{policy=\"broadcast\"} 1"));
        assert!(prom.contains("tep_routing_decisions_total{policy=\"theme_overlap\"} 0"));
        b.shutdown();

        let config = BrokerConfig::default()
            .with_workers(1)
            .with_routing_policy(RoutingPolicy::ThemeOverlap);
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        b.publish(parse_event("({power}, {k: v})").unwrap())
            .unwrap();
        b.flush().unwrap();
        let stats = b.stats();
        assert_eq!(stats.routed_broadcast, 0);
        assert_eq!(stats.routed_theme_overlap, 1);
        b.shutdown();
    }

    #[test]
    fn queue_depth_gauges_are_exported() {
        let b = broker();
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        b.publish(parse_event("{k: v}").unwrap()).unwrap();
        b.flush().unwrap();
        let prom = b.metrics().render_prometheus();
        assert!(prom.contains("# TYPE tep_publish_queue_depth gauge"));
        // Drained broker: nothing queued anywhere, one notification held.
        assert!(prom.contains("tep_publish_queue_depth 0"));
        assert!(prom.contains("tep_subscriber_queue_depth_sum 1"));
        assert!(prom.contains("tep_subscriber_queue_depth_max 1"));
        b.shutdown();
    }

    #[test]
    fn labeled_metrics_export_families_and_topk() {
        let config = BrokerConfig::default()
            .with_workers(1)
            .with_labeled_metrics(true);
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        let (id, rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        for _ in 0..3 {
            b.publish(parse_event("({power, grid}, {k: v})").unwrap())
                .unwrap();
        }
        b.flush().unwrap();
        assert_eq!(rx.try_iter().count(), 3);

        let prom = b.metrics().render_prometheus();
        assert!(
            prom.contains("tep_theme_match_tests_total{theme=\"power\"} 3"),
            "per-theme attribution missing:\n{prom}"
        );
        assert!(prom.contains("tep_theme_match_tests_total{theme=\"grid\"} 3"));
        assert!(prom.contains("tep_match_temperature_total{temperature=\"exact\"} 3"));
        let sub_series = format!("tep_subscriber_notifications_total{{subscriber=\"{id}\"}} 3");
        assert!(prom.contains(&sub_series), "missing {sub_series}:\n{prom}");
        assert!(prom.contains(&format!(
            "tep_subscriber_queue_depth{{subscriber=\"{id}\"}}"
        )));

        let themes = b.top_themes(4);
        assert_eq!(themes.len(), 2);
        assert!(themes.iter().all(|(_, count)| *count == 3));
        let terms = b.top_terms(8);
        assert!(terms.iter().any(|(name, _)| name == "k"));
        assert!(terms.iter().any(|(name, _)| name == "v"));
        let top = b.top_json(4);
        assert!(top.contains("\"themes\""));
        assert!(top.contains("\"count\": 3"));
        assert_eq!(
            top.matches(['{', '[']).count(),
            top.matches(['}', ']']).count()
        );
        b.shutdown();
    }

    #[test]
    fn disabled_labeled_metrics_stay_inert() {
        let b = broker();
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        b.publish(parse_event("({power}, {k: v})").unwrap())
            .unwrap();
        b.flush().unwrap();
        assert!(b.top_themes(4).is_empty());
        assert!(b.top_terms(4).is_empty());
        let prom = b.metrics().render_prometheus();
        assert!(!prom.contains("tep_theme_match_tests_total"));
        assert!(!prom.contains("tep_subscriber_notifications_total"));
        b.shutdown();
    }

    #[test]
    fn windowed_series_appear_after_ticks() {
        let b = broker();
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        assert!(b.window(Duration::from_secs(10)).is_none(), "no frames yet");
        b.tick_window();
        for _ in 0..5 {
            b.publish(parse_event("{k: v}").unwrap()).unwrap();
        }
        b.flush().unwrap();
        b.tick_window();
        let delta = b.window(Duration::from_secs(10)).expect("two frames");
        assert_eq!(delta.counter_delta("tep_published_total"), Some(5));
        assert_eq!(delta.counter_delta("tep_match_tests_total"), Some(5));
        assert!(delta.rate("tep_published_total").unwrap() > 0.0);
        let match_window = delta
            .histogram("tep_stage_match_exact_seconds")
            .expect("stage histogram in frame");
        assert_eq!(match_window.count(), 5);

        let prom = b.metrics().render_prometheus();
        assert!(
            prom.contains("tep_published_rate{window=\"10s\"}"),
            "windowed rate missing:\n{prom}"
        );
        assert!(prom.contains("tep_stage_match_exact_seconds_count{window=\"10s\"} 5"));
        // Cumulative series keep their bare names alongside.
        assert!(prom.contains("tep_published_total 5"));
        b.shutdown();
    }

    #[test]
    fn lazy_tick_refreshes_windowed_rates_between_scrapes() {
        let b = broker();
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        // First scrape-driven tick seeds the ring even though nothing
        // ever called `tick_window` — the stale-window bug this fixes.
        assert!(b.tick_window_if_stale(Duration::ZERO));
        for _ in 0..5 {
            b.publish(parse_event("{k: v}").unwrap()).unwrap();
        }
        b.flush().unwrap();
        // A scrape arriving after the traffic (here: after an idle gap of
        // zero minimum interval) pushes a fresh frame, so the windowed
        // delta reflects the activity since the previous scrape.
        assert!(b.tick_window_if_stale(Duration::ZERO));
        let delta = b.window(Duration::from_secs(10)).expect("two frames");
        assert_eq!(delta.counter_delta("tep_published_total"), Some(5));

        // Within the minimum interval the guard refuses: a scrape storm
        // cannot shrink the frames into meaninglessly small windows.
        assert!(!b.tick_window_if_stale(Duration::from_secs(60)));
        // An explicit supervisor-style tick is still allowed alongside.
        b.tick_window();
        b.shutdown();
    }

    #[test]
    fn quality_sampling_tracks_live_f1() {
        /// Ground truth: an event is relevant iff its `k` tuple is `v`.
        struct KvOracle;
        impl crate::QualityOracle for KvOracle {
            fn judge(&self, _s: &Subscription, e: &Event) -> Option<bool> {
                Some(e.value_of("k") == Some("v"))
            }
        }
        let b = Broker::start(
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default().with_workers(1),
        )
        .with_quality_sampling(1, Box::new(KvOracle));
        assert!(b.quality().is_some(), "oracle installed");
        let (_, rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        for i in 0..8 {
            let event = if i % 2 == 0 { "{k: v}" } else { "{k: w}" };
            b.publish(parse_event(event).unwrap()).unwrap();
        }
        b.flush().unwrap();
        assert_eq!(rx.try_iter().count(), 4);
        let report = b.quality().unwrap();
        // The exact matcher agrees with the oracle perfectly.
        assert_eq!(report.true_positives, 4);
        assert_eq!(report.true_negatives, 4);
        assert_eq!(report.false_positives, 0);
        assert_eq!(report.false_negatives, 0);
        assert!((report.f1 - 1.0).abs() < 1e-12);
        let prom = b.metrics().render_prometheus();
        assert!(prom.contains("tep_quality_f1 1"));
        assert!(prom.contains("tep_quality_samples_total 8"));
        b.shutdown();
    }

    #[test]
    fn quality_disabled_reports_none_and_exports_nothing() {
        let b = broker();
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        b.publish(parse_event("{k: v}").unwrap()).unwrap();
        b.flush().unwrap();
        assert!(b.quality().is_none());
        assert!(!b.metrics().render_prometheus().contains("tep_quality_"));
        b.shutdown();
    }

    #[test]
    fn cost_attribution_disabled_is_inert() {
        let b = broker();
        let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        b.publish(parse_event("{k: v}").unwrap()).unwrap();
        b.flush().unwrap();
        let report = b.costs();
        assert!(!report.enabled);
        assert_eq!(report.samples, 0);
        assert!(report.entries.is_empty());
        assert_eq!(b.costs_json(), "{\n  \"enabled\": false\n}\n");
        assert!(!b.metrics().render_prometheus().contains("tep_cost_"));
        b.shutdown();
    }

    #[test]
    fn cost_attribution_reconciles_exactly_at_k_one() {
        let b = Broker::start(
            Arc::new(ExactMatcher::new()),
            BrokerConfig::default()
                .with_workers(2)
                .with_cost_attribution(1),
        );
        let (_, rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
        let (_, _other) = b
            .subscribe(parse_subscription("{other= thing}").unwrap())
            .unwrap();
        for _ in 0..32 {
            b.publish(parse_event("{k: v}").unwrap()).unwrap();
        }
        b.flush().unwrap();
        assert_eq!(rx.try_iter().count(), 32);
        let report = b.costs();
        assert!(report.enabled);
        assert_eq!(report.sample_every, 1);
        assert!(report.samples >= 32, "every dispatch is sampled at k=1");
        // The invariant the sampler is built around: at k=1 each charged
        // nanosecond figure is the very value the stage histograms
        // recorded, so attributed totals equal the histogram sums.
        let stages = b.stage_latencies();
        let match_ns = stages.match_exact.sum().as_nanos() as u64
            + stages.match_thematic.sum().as_nanos() as u64
            + stages.match_cached.sum().as_nanos() as u64;
        let deliver_ns = stages.deliver.sum().as_nanos() as u64;
        assert_eq!(report.sampled_match_ns, match_ns);
        assert_eq!(report.sampled_deliver_ns, deliver_ns);
        assert_eq!(report.estimated_total_ns(), match_ns + deliver_ns);
        // The exact per-entry table carries the same totals.
        let entry_match: u64 = report.entries.iter().map(|e| e.match_ns).sum();
        let entry_deliver: u64 = report.entries.iter().map(|e| e.deliver_ns).sum();
        assert_eq!(entry_match, match_ns);
        assert_eq!(entry_deliver, deliver_ns);
        // Labels were preformatted at subscribe time.
        assert!(report.entries.iter().all(|e| e.label.starts_with("entry-")));
        assert!(report
            .subscribers
            .iter()
            .all(|e| e.label.starts_with("sub-")));
        // Untagged events still land in the per-theme table.
        assert!(report.themes.iter().any(|t| t.label == "untagged"));
        assert!(!report.hot_entries.is_empty());
        // JSON and Prometheus surfaces agree it is on.
        let json = b.costs_json();
        assert!(json.contains("\"enabled\": true"));
        assert!(json.contains("\"sample_every\": 1"));
        assert!(json.contains("\"entries\": [{\"label\": \"entry-"));
        let prom = b.metrics().render_prometheus();
        assert!(prom.contains("tep_cost_ns_total"));
        assert!(prom.contains("entity=\"entry\""));
        assert!(prom.contains("tep_cost_samples_total"));
        assert!(prom.contains("tep_cost_sample_every 1"));
        b.shutdown();
    }

    #[test]
    fn cost_sampling_is_deterministic_across_runs() {
        let run = || {
            let b = Broker::start(
                Arc::new(ExactMatcher::new()),
                BrokerConfig::default()
                    .with_workers(1)
                    .with_cost_attribution(4),
            );
            let (_, _rx) = b.subscribe(parse_subscription("{k= v}").unwrap()).unwrap();
            for _ in 0..64 {
                b.publish(parse_event("{k: v}").unwrap()).unwrap();
            }
            b.flush().unwrap();
            let samples = b.costs().samples;
            b.shutdown();
            samples
        };
        let first = run();
        assert!(first > 0, "k=4 over 64 events lands some samples");
        assert!(first < 64, "k=4 samples a strict subset of dispatches");
        assert_eq!(first, run(), "the sample set is a pure (seq, uid) hash");
    }

    #[test]
    fn build_info_and_uptime_are_exported() {
        let b = broker();
        let prom = b.metrics().render_prometheus();
        assert!(prom.contains("tep_build_info{"));
        assert!(prom.contains(concat!("version=\"", env!("CARGO_PKG_VERSION"), "\"")));
        assert!(prom.contains("tep_uptime_seconds"));
        b.shutdown();
    }
}
