//! The broker runtime.

use crate::config::BrokerConfig;
use crate::notification::Notification;
use crate::stats::{BrokerStats, StatsInner};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tep_events::{Event, Subscription};
use tep_matcher::Matcher;

/// Identifier handed out by [`Broker::subscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors returned by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BrokerError {
    /// The broker has been shut down.
    Closed,
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Closed => write!(f, "broker is shut down"),
        }
    }
}

impl Error for BrokerError {}

struct Registration {
    subscription: Arc<Subscription>,
    sender: Sender<Notification>,
}

struct Shared {
    registry: RwLock<HashMap<SubscriptionId, Arc<Registration>>>,
    stats: Arc<StatsInner>,
    threshold: f64,
    notification_capacity: usize,
}

/// A thread-pool publish/subscribe broker around any [`Matcher`].
///
/// Events published while subscribers exist are matched on worker threads
/// against every registered subscription; matches at or above the
/// configured delivery threshold are sent to the subscriber's channel.
/// Ordering across workers is not guaranteed (synchronization decoupling).
pub struct Broker {
    shared: Arc<Shared>,
    ingress: Option<Sender<Arc<Event>>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Broker {
    /// Starts the broker with `config.workers` matching threads.
    pub fn start<M>(matcher: Arc<M>, config: BrokerConfig) -> Broker
    where
        M: Matcher + Send + Sync + 'static + ?Sized,
    {
        let shared = Arc::new(Shared {
            registry: RwLock::new(HashMap::new()),
            stats: Arc::new(StatsInner::default()),
            threshold: config.delivery_threshold,
            notification_capacity: config.notification_capacity,
        });
        let (tx, rx) = bounded::<Arc<Event>>(config.queue_capacity.max(1));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx: Receiver<Arc<Event>> = rx.clone();
                let shared = Arc::clone(&shared);
                let matcher = Arc::clone(&matcher);
                std::thread::Builder::new()
                    .name(format!("tep-broker-{i}"))
                    .spawn(move || worker_loop(rx, shared, matcher))
                    .expect("spawn broker worker")
            })
            .collect();
        Broker {
            shared,
            ingress: Some(tx),
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Registers a subscription and returns its id plus the notification
    /// channel.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Closed`] after [`Broker::shutdown`].
    pub fn subscribe(
        &self,
        subscription: Subscription,
    ) -> Result<(SubscriptionId, Receiver<Notification>), BrokerError> {
        if self.ingress.is_none() {
            return Err(BrokerError::Closed);
        }
        let id = SubscriptionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = bounded(self.shared.notification_capacity.max(1));
        self.shared.registry.write().insert(
            id,
            Arc::new(Registration {
                subscription: Arc::new(subscription),
                sender: tx,
            }),
        );
        Ok((id, rx))
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.shared.registry.write().remove(&id).is_some()
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.shared.registry.read().len()
    }

    /// Publishes an event (blocks only when the ingress queue is full).
    ///
    /// # Errors
    ///
    /// [`BrokerError::Closed`] after [`Broker::shutdown`].
    pub fn publish(&self, event: Event) -> Result<(), BrokerError> {
        let Some(tx) = &self.ingress else {
            return Err(BrokerError::Closed);
        };
        self.shared.stats.published.fetch_add(1, Ordering::Relaxed);
        tx.send(Arc::new(event)).map_err(|_| BrokerError::Closed)
    }

    /// Blocks until every published event has been matched (busy-waits in
    /// 100µs steps; intended for tests and benchmarks, not hot paths).
    pub fn flush(&self) {
        loop {
            let s = self.stats();
            if s.processed >= s.published {
                return;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    }

    /// A snapshot of the broker's counters.
    pub fn stats(&self) -> BrokerStats {
        self.shared.stats.snapshot()
    }

    /// Stops accepting events, drains the queue and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Dropping the only ingress sender closes the channel; workers
        // exit once the queue drains.
        self.ingress = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("subscriptions", &self.subscription_count())
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop<M>(rx: Receiver<Arc<Event>>, shared: Arc<Shared>, matcher: Arc<M>)
where
    M: Matcher + Send + Sync + ?Sized,
{
    for event in rx.iter() {
        // Snapshot the registry so matching never holds the lock.
        let registrations: Vec<(SubscriptionId, Arc<Registration>)> = shared
            .registry
            .read()
            .iter()
            .map(|(id, r)| (*id, Arc::clone(r)))
            .collect();
        for (id, reg) in registrations {
            shared.stats.match_tests.fetch_add(1, Ordering::Relaxed);
            let result = matcher.match_event(&reg.subscription, &event);
            if !result.is_empty() && result.is_match(shared.threshold) {
                let notification = Notification {
                    subscription: id,
                    event: Arc::clone(&event),
                    result,
                };
                match reg.sender.try_send(notification) {
                    Ok(()) => {
                        shared.stats.notifications.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                        shared.stats.delivery_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        shared.stats.processed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_events::{parse_event, parse_subscription};
    use tep_matcher::ExactMatcher;

    fn broker() -> Broker {
        Broker::start(Arc::new(ExactMatcher::new()), BrokerConfig::default().with_workers(2))
    }

    #[test]
    fn delivers_matching_events() {
        let b = broker();
        let (id, rx) = b
            .subscribe(parse_subscription("{device= computer}").unwrap())
            .unwrap();
        b.publish(parse_event("{device: computer}").unwrap()).unwrap();
        b.publish(parse_event("{device: laptop}").unwrap()).unwrap();
        b.flush();
        let n = rx.try_recv().expect("one delivery");
        assert_eq!(n.subscription, id);
        assert_eq!(n.score(), 1.0);
        assert!(rx.try_recv().is_err(), "non-matching event must not deliver");
        let stats = b.stats();
        assert_eq!(stats.published, 2);
        assert_eq!(stats.processed, 2);
        assert_eq!(stats.notifications, 1);
        b.shutdown();
    }

    #[test]
    fn multiple_subscribers_fan_out() {
        let b = broker();
        let (_, rx1) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        let (_, rx2) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        assert_eq!(b.subscription_count(), 2);
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush();
        assert!(rx1.try_recv().is_ok());
        assert!(rx2.try_recv().is_ok());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let b = broker();
        let (id, rx) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        assert!(b.unsubscribe(id));
        assert!(!b.unsubscribe(id));
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn dropped_receiver_counts_as_failure() {
        let b = broker();
        let (_, rx) = b.subscribe(parse_subscription("{a= 1}").unwrap()).unwrap();
        drop(rx);
        b.publish(parse_event("{a: 1}").unwrap()).unwrap();
        b.flush();
        assert_eq!(b.stats().delivery_failures, 1);
        assert_eq!(b.stats().notifications, 0);
    }

    #[test]
    fn operations_after_shutdown_error() {
        let mut b = broker();
        b.shutdown_in_place();
        assert_eq!(
            b.publish(parse_event("{a: 1}").unwrap()).unwrap_err(),
            BrokerError::Closed
        );
        assert!(b.subscribe(parse_subscription("{a= 1}").unwrap()).is_err());
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_loss() {
        // A 1-slot queue forces publish() to block until workers drain;
        // nothing may be dropped.
        let config = BrokerConfig {
            workers: 1,
            queue_capacity: 1,
            ..BrokerConfig::default()
        };
        let b = Broker::start(Arc::new(ExactMatcher::new()), config);
        let (_, rx) = b.subscribe(parse_subscription("{k= hit}").unwrap()).unwrap();
        for i in 0..64 {
            b.publish(parse_event(&format!("{{k: hit, i: n{i}}}")).unwrap()).unwrap();
        }
        b.flush();
        assert_eq!(b.stats().processed, 64);
        assert_eq!(rx.try_iter().count(), 64);
    }

    #[test]
    fn many_events_all_processed() {
        let b = broker();
        let (_, rx) = b.subscribe(parse_subscription("{kind= wanted}").unwrap()).unwrap();
        for i in 0..200 {
            let kind = if i % 4 == 0 { "wanted" } else { "other" };
            b.publish(parse_event(&format!("{{kind: {kind}, seq: n{i}}}")).unwrap())
                .unwrap();
        }
        b.flush();
        let delivered = rx.try_iter().count();
        assert_eq!(delivered, 50);
        assert_eq!(b.stats().processed, 200);
        assert_eq!(b.stats().match_tests, 200);
    }
}
