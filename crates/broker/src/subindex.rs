//! The subscription aggregation + covering index (Shi et al.; S-ToPSS).
//!
//! Replaces the flat tag→`Vec<SubscriptionId>` routing table with an index
//! over **canonical predicate sets**: each subscription is canonicalized to
//! its interned predicate multiset (sorted `(TermId, TermId, op, approx)`
//! tuples) plus its interned `ThemeId`, and identical canonical forms are
//! hash-consed into a single [`IndexEntry`] carrying a fan-out list of
//! subscribers. One match test against the entry's representative
//! subscription then serves every duplicate subscriber, so match cost
//! scales with *distinct* subscriptions, not subscriber count (ROADMAP
//! item 1; the delivery threshold is broker-global, so it never
//! distinguishes entries and stays out of the key).
//!
//! On top of the entries the index maintains a **covering** relation in
//! the style of S-ToPSS's layered exact-first matching:
//!
//! * `supersets` — entries whose predicate multiset contains this entry's.
//!   For a purely conjunctive matcher ([`Matcher::covering_safe`]) a
//!   **miss** on the smaller set implies a miss on every superset, so the
//!   dispatcher prunes them without testing (`covered_skips`).
//! * `twins` — entries with an *equal* predicate multiset under a
//!   different theme. A **hit** on one is a hit on all: the result is
//!   cloned (predicate indices permuted into the twin's declaration order
//!   when they differ) and the twins' tests are short-circuited.
//!
//! Strict-subset hit propagation is intentionally *not* exploited: a hit
//! on a superset entry implies its subsets hit too, but their
//! notifications need `MatchResult`s with a different correspondence
//! count, so synthesizing them would cost as much as the skipped test
//! (DESIGN.md §16).
//!
//! Leaves mirror the old routing semantics: theme-less entries live in a
//! broadcast list that every event visits; themed entries are bucketed
//! under each of their *canonical* theme tags (normalized, deduplicated —
//! a subscription deserialized with `["power","power"]` enters its bucket
//! once). Candidate collection writes into a reusable per-worker
//! [`DispatchScratch`], so the dispatch hot path stays allocation-free.
//!
//! [`Matcher::covering_safe`]: tep_matcher::Matcher::covering_safe

use crate::broker::{Registration, SubscriptionId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tep_events::{ComparisonOp, Event, Predicate, Subscription};
use tep_matcher::MatchResult;
use tep_semantics::{intern_term, theme_for_tags, ThemeId};

/// One predicate in canonical interned form. Ordering is derived so a
/// predicate list can be sorted into a canonical multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct PredKey {
    attribute: u32,
    value: u32,
    op: u8,
    approx: u8,
}

impl PredKey {
    fn of(p: &Predicate) -> PredKey {
        let op = match p.op() {
            ComparisonOp::Eq => 0,
            ComparisonOp::Neq => 1,
            ComparisonOp::Gt => 2,
            ComparisonOp::Ge => 3,
            ComparisonOp::Lt => 4,
            ComparisonOp::Le => 5,
        };
        PredKey {
            attribute: intern_term(p.attribute()).as_u32(),
            value: intern_term(p.value()).as_u32(),
            op,
            approx: (p.is_attribute_approx() as u8) | ((p.is_value_approx() as u8) << 1),
        }
    }
}

/// The hash-cons key: the sorted predicate multiset plus the canonical
/// theme. Subscriptions that differ only in predicate declaration order or
/// raw tag spelling (case, duplicates) collapse onto one key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EntryKey {
    preds: Box<[PredKey]>,
    theme: ThemeId,
}

impl EntryKey {
    fn of(sub: &Subscription, theme: ThemeId) -> EntryKey {
        let mut preds: Vec<PredKey> = sub.predicates().iter().map(PredKey::of).collect();
        preds.sort_unstable();
        EntryKey {
            preds: preds.into_boxed_slice(),
            theme,
        }
    }
}

/// `a ⊆ b` as sorted multisets.
fn multiset_subset(a: &[PredKey], b: &[PredKey]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for k in a {
        loop {
            if j >= b.len() {
                return false;
            }
            match b[j].cmp(k) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

/// `perm[rep_idx] = member_idx` between two subscriptions with equal
/// predicate multisets; `None` when the orders already coincide (the
/// common case — duplicate subscribers are usually verbatim clones).
fn perm_between(rep: &Subscription, member: &Subscription) -> Option<Box<[usize]>> {
    let rp = rep.predicates();
    let mp = member.predicates();
    debug_assert_eq!(rp.len(), mp.len(), "equal canonical keys");
    if rp
        .iter()
        .zip(mp.iter())
        .all(|(a, b)| PredKey::of(a) == PredKey::of(b))
    {
        return None;
    }
    let mut used = vec![false; mp.len()];
    let perm = rp
        .iter()
        .map(|p| {
            let k = PredKey::of(p);
            let j = mp
                .iter()
                .enumerate()
                .position(|(j, q)| !used[j] && PredKey::of(q) == k)
                .expect("equal multisets admit a bijection");
            used[j] = true;
            j
        })
        .collect();
    Some(perm)
}

/// One subscriber behind an entry: its id, its registration (delivery
/// channel, breaker, explain opt-in), and the predicate-index permutation
/// from the representative's declaration order to this subscriber's.
pub(crate) struct FanoutMember {
    pub(crate) id: SubscriptionId,
    pub(crate) reg: Arc<Registration>,
    pub(crate) perm: Option<Box<[usize]>>,
}

impl FanoutMember {
    /// The representative's `MatchResult` translated into this member's
    /// predicate order.
    pub(crate) fn result_for(&self, result: &MatchResult) -> MatchResult {
        match &self.perm {
            Some(perm) => result.with_remapped_predicates(perm),
            None => result.clone(),
        }
    }
}

/// A covering edge to another entry, validated by `(slot, uid)` so edges
/// left behind by a removed entry can never hit a recycled slot.
#[derive(Debug, Clone, Copy)]
struct EdgeRef {
    slot: u32,
    uid: u64,
}

/// A twin edge additionally carries the predicate permutation from this
/// entry's representative order into the twin representative's order.
#[derive(Debug, Clone)]
struct TwinEdge {
    slot: u32,
    uid: u64,
    perm: Option<Arc<[usize]>>,
}

/// One hash-consed index entry: a canonical predicate multiset + theme,
/// its subscriber fan-out, and its covering edges. Entries are immutable
/// snapshots behind `Arc`; edge updates replace the `Arc` copy-on-write
/// (the fan-out list is shared across versions).
pub(crate) struct IndexEntry {
    slot: u32,
    uid: u64,
    key: EntryKey,
    /// Whether any predicate carries `~` (approximate) markers — gates the
    /// cache-temperature sampling exactly like the per-subscription flag
    /// did, and approximate entries sort after exact ones in the sweep
    /// (S-ToPSS: exact layer first).
    pub(crate) approx: bool,
    /// The first subscriber's subscription, used for every match test of
    /// this entry. All members have equal predicate multisets, so any
    /// member is a valid representative.
    pub(crate) representative: Arc<Subscription>,
    fanout: Arc<RwLock<Vec<FanoutMember>>>,
    /// Cached `fanout.len()` readable without the lock (skip accounting).
    fanout_len: AtomicUsize,
    /// Entries whose predicate multiset ⊇ this entry's: a miss here prunes
    /// them. Complete by construction (every containment pair is recorded
    /// at insert), so pruning never needs transitive chasing.
    supersets: Vec<EdgeRef>,
    /// Entries with an equal predicate multiset under another theme: a hit
    /// here short-circuits their tests with a permuted clone of the result.
    twins: Vec<TwinEdge>,
}

impl IndexEntry {
    /// Number of predicates in the canonical set.
    #[cfg(test)]
    pub(crate) fn pred_count(&self) -> usize {
        self.key.preds.len()
    }

    /// Slot index in the entry table — the dense key cost attribution
    /// charges against.
    pub(crate) fn slot(&self) -> u32 {
        self.slot
    }

    /// Unique id stamped at insert; distinguishes this entry from any
    /// later occupant of a recycled slot.
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Current number of subscribers fanned out from this entry.
    pub(crate) fn fanout_len(&self) -> usize {
        self.fanout_len.load(Ordering::Relaxed)
    }

    /// Read access to the fan-out list for delivery.
    pub(crate) fn fanout(&self) -> parking_lot::RwLockReadGuard<'_, Vec<FanoutMember>> {
        self.fanout.read()
    }

    /// A new version of this entry with updated covering edges (shares the
    /// fan-out list and identity with the old version).
    fn with_edges(&self, supersets: Vec<EdgeRef>, twins: Vec<TwinEdge>) -> IndexEntry {
        IndexEntry {
            slot: self.slot,
            uid: self.uid,
            key: self.key.clone(),
            approx: self.approx,
            representative: Arc::clone(&self.representative),
            fanout: Arc::clone(&self.fanout),
            fanout_len: AtomicUsize::new(self.fanout_len.load(Ordering::Relaxed)),
            supersets,
            twins,
        }
    }
}

#[derive(Default)]
struct IndexInner {
    /// Slot-addressed entry storage; freed slots are recycled with fresh
    /// uids so stale covering edges can never resolve.
    slots: Vec<Option<Arc<IndexEntry>>>,
    free: Vec<u32>,
    next_uid: u64,
    by_key: HashMap<EntryKey, u32>,
    /// Canonical tag → slots of themed entries carrying that tag.
    by_tag: HashMap<String, Vec<u32>>,
    /// Slots of theme-less entries: candidates for every event.
    broadcast: Vec<u32>,
    /// Canonical predicate → slots of entries containing it; drives
    /// covering-edge discovery at insert (only entries sharing at least
    /// one predicate can be related by containment).
    by_pred: HashMap<PredKey, Vec<u32>>,
    /// Reference counts of predicate multisets across themes, for the
    /// `distinct_subscriptions` gauge.
    predsets: HashMap<Box<[PredKey]>, usize>,
}

/// The broker-wide subscription index.
pub(crate) struct SubscriptionIndex {
    inner: RwLock<IndexInner>,
    subscribers: AtomicUsize,
    entries: AtomicUsize,
    distinct_predsets: AtomicUsize,
}

impl SubscriptionIndex {
    pub(crate) fn new() -> SubscriptionIndex {
        SubscriptionIndex {
            inner: RwLock::new(IndexInner::default()),
            subscribers: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            distinct_predsets: AtomicUsize::new(0),
        }
    }

    /// Total subscribers across all entries.
    pub(crate) fn subscriber_count(&self) -> usize {
        self.subscribers.load(Ordering::Relaxed)
    }

    /// Live hash-consed entries (distinct predicate multiset × theme).
    pub(crate) fn entry_count(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Distinct predicate multisets irrespective of theme.
    pub(crate) fn distinct_subscriptions(&self) -> usize {
        self.distinct_predsets.load(Ordering::Relaxed)
    }

    /// Registers a subscriber. Duplicates of an existing canonical form
    /// join that entry's fan-out; new forms allocate an entry and wire its
    /// covering edges against every related entry. Returns the owning
    /// entry's `(slot, uid)` so callers can key per-entry state (e.g.
    /// cost-attribution cells) against the hash-consed identity.
    pub(crate) fn insert(&self, id: SubscriptionId, reg: &Arc<Registration>) -> (u32, u64) {
        let sub = &reg.subscription;
        let (theme_id, theme) = theme_for_tags(sub.theme_tags());
        let key = EntryKey::of(sub, theme_id);
        let mut inner = self.inner.write();

        if let Some(&slot) = inner.by_key.get(&key) {
            let entry = inner.slots[slot as usize]
                .as_ref()
                .expect("by_key points at a live slot");
            let perm = perm_between(&entry.representative, sub);
            let mut fan = entry.fanout.write();
            fan.push(FanoutMember {
                id,
                reg: Arc::clone(reg),
                perm,
            });
            entry.fanout_len.store(fan.len(), Ordering::Relaxed);
            drop(fan);
            let joined = (entry.slot, entry.uid);
            self.subscribers.fetch_add(1, Ordering::Relaxed);
            return joined;
        }

        let slot = match inner.free.pop() {
            Some(s) => s,
            None => {
                inner.slots.push(None);
                (inner.slots.len() - 1) as u32
            }
        };
        let uid = inner.next_uid;
        inner.next_uid += 1;

        // Covering-edge discovery: any entry related by containment shares
        // at least one predicate with the new set, so the union of the
        // per-predicate buckets is a complete candidate list.
        let mut supersets = Vec::new();
        let mut twins = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        let mut unique = key.preds.to_vec();
        unique.dedup();
        for k in &unique {
            if let Some(bucket) = inner.by_pred.get(k) {
                for &s in bucket {
                    if !seen.contains(&s) {
                        seen.push(s);
                    }
                }
            }
        }
        let mut updates: Vec<(u32, Arc<IndexEntry>)> = Vec::new();
        for &s in &seen {
            let other = inner.slots[s as usize]
                .as_ref()
                .expect("by_pred points at live slots");
            let mine_in_other = multiset_subset(&key.preds, &other.key.preds);
            let other_in_mine = multiset_subset(&other.key.preds, &key.preds);
            if mine_in_other && other_in_mine {
                // Equal multisets under a different theme (same theme would
                // have hit by_key): twins both ways, with the permutation
                // between the two representatives.
                let fwd = perm_between(sub, &other.representative).map(Arc::<[usize]>::from);
                let rev = perm_between(&other.representative, sub).map(Arc::<[usize]>::from);
                twins.push(TwinEdge {
                    slot: other.slot,
                    uid: other.uid,
                    perm: fwd,
                });
                // Equal sets also cover each other: a miss on either prunes
                // the other.
                supersets.push(EdgeRef {
                    slot: other.slot,
                    uid: other.uid,
                });
                let mut ot = other.twins.clone();
                ot.push(TwinEdge {
                    slot,
                    uid,
                    perm: rev,
                });
                let mut os = other.supersets.clone();
                os.push(EdgeRef { slot, uid });
                updates.push((s, Arc::new(other.with_edges(os, ot))));
            } else if mine_in_other {
                // New ⊂ other: a miss on the new entry prunes the other.
                supersets.push(EdgeRef {
                    slot: other.slot,
                    uid: other.uid,
                });
            } else if other_in_mine {
                // Other ⊂ new: a miss on the other prunes the new entry.
                let mut os = other.supersets.clone();
                os.push(EdgeRef { slot, uid });
                updates.push((s, Arc::new(other.with_edges(os, other.twins.clone()))));
            }
        }
        for (s, e) in updates {
            inner.slots[s as usize] = Some(e);
        }

        let approx = sub
            .predicates()
            .iter()
            .any(|p| p.is_attribute_approx() || p.is_value_approx());
        let entry = Arc::new(IndexEntry {
            slot,
            uid,
            key: key.clone(),
            approx,
            representative: Arc::clone(sub),
            fanout: Arc::new(RwLock::new(vec![FanoutMember {
                id,
                reg: Arc::clone(reg),
                perm: None,
            }])),
            fanout_len: AtomicUsize::new(1),
            supersets,
            twins,
        });
        inner.slots[slot as usize] = Some(entry);
        inner.by_key.insert(key.clone(), slot);
        if theme.is_empty() {
            inner.broadcast.push(slot);
        } else {
            for tag in theme.tags() {
                inner.by_tag.entry(tag.clone()).or_default().push(slot);
            }
        }
        for k in &unique {
            inner.by_pred.entry(*k).or_default().push(slot);
        }
        let fresh = {
            let count = inner.predsets.entry(key.preds.clone()).or_insert(0);
            *count += 1;
            *count == 1
        };
        if fresh {
            self.distinct_predsets.fetch_add(1, Ordering::Relaxed);
        }
        self.entries.store(inner.by_key.len(), Ordering::Relaxed);
        self.subscribers.fetch_add(1, Ordering::Relaxed);
        (slot, uid)
    }

    /// Removes a subscriber; drops its entry (and the entry's leaves) when
    /// the fan-out empties. Covering edges pointing at the dropped entry
    /// are left in place — they are invalidated by uid and a recycled slot
    /// always gets a fresh uid.
    pub(crate) fn remove(&self, id: SubscriptionId, sub: &Subscription) {
        let (theme_id, theme) = theme_for_tags(sub.theme_tags());
        let key = EntryKey::of(sub, theme_id);
        let mut inner = self.inner.write();
        let Some(&slot) = inner.by_key.get(&key) else {
            return;
        };
        let entry = Arc::clone(
            inner.slots[slot as usize]
                .as_ref()
                .expect("by_key points at a live slot"),
        );
        let now_empty = {
            let mut fan = entry.fanout.write();
            let Some(pos) = fan.iter().position(|m| m.id == id) else {
                return;
            };
            fan.remove(pos);
            entry.fanout_len.store(fan.len(), Ordering::Relaxed);
            fan.is_empty()
        };
        self.subscribers.fetch_sub(1, Ordering::Relaxed);
        if !now_empty {
            return;
        }
        inner.slots[slot as usize] = None;
        inner.free.push(slot);
        inner.by_key.remove(&key);
        if theme.is_empty() {
            inner.broadcast.retain(|&s| s != slot);
        } else {
            for tag in theme.tags() {
                if let Some(bucket) = inner.by_tag.get_mut(tag) {
                    bucket.retain(|&s| s != slot);
                    if bucket.is_empty() {
                        inner.by_tag.remove(tag);
                    }
                }
            }
        }
        let mut unique = key.preds.to_vec();
        unique.dedup();
        for k in &unique {
            if let Some(bucket) = inner.by_pred.get_mut(k) {
                bucket.retain(|&s| s != slot);
                if bucket.is_empty() {
                    inner.by_pred.remove(k);
                }
            }
        }
        let gone = {
            match inner.predsets.get_mut(&key.preds) {
                Some(count) => {
                    *count -= 1;
                    *count == 0
                }
                None => false,
            }
        };
        if gone {
            inner.predsets.remove(&key.preds);
            self.distinct_predsets.fetch_sub(1, Ordering::Relaxed);
        }
        self.entries.store(inner.by_key.len(), Ordering::Relaxed);
    }

    /// Collects the candidate entries for `event` into `scratch` without
    /// allocating in steady state: broadcast entries always, plus (unless
    /// `all_entries`) the buckets of each canonical event tag, deduplicated
    /// by generation stamp. Entries are swept exact-first, smallest
    /// predicate set first (S-ToPSS layering: cheap, most-covering tests
    /// lead). Returns `(total_subscribers, candidate_subscribers)`.
    pub(crate) fn collect_candidates(
        &self,
        event: &Event,
        all_entries: bool,
        scratch: &mut DispatchScratch,
    ) -> (u64, u64) {
        let inner = self.inner.read();
        scratch.begin(inner.slots.len());
        if all_entries {
            for slot in inner.slots.iter().flatten() {
                scratch.push(slot);
            }
        } else {
            for &s in &inner.broadcast {
                if let Some(e) = inner.slots[s as usize].as_ref() {
                    scratch.push(e);
                }
            }
            if !event.theme_tags().is_empty() {
                let (_, theme) = theme_for_tags(event.theme_tags());
                for tag in theme.tags() {
                    if let Some(bucket) = inner.by_tag.get(tag) {
                        for &s in bucket {
                            if let Some(e) = inner.slots[s as usize].as_ref() {
                                scratch.push(e);
                            }
                        }
                    }
                }
            }
        }
        drop(inner);
        scratch
            .entries
            .sort_unstable_by_key(|e| (e.approx, e.key.preds.len()));
        let candidate_subs: u64 = scratch.entries.iter().map(|e| e.fanout_len() as u64).sum();
        (self.subscriber_count() as u64, candidate_subs)
    }
}

impl std::fmt::Debug for SubscriptionIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriptionIndex")
            .field("subscribers", &self.subscriber_count())
            .field("entries", &self.entry_count())
            .field("distinct_subscriptions", &self.distinct_subscriptions())
            .finish()
    }
}

/// A covering verdict recorded for a not-yet-visited candidate entry.
enum Verdict {
    /// A covered subset missed, so this entry cannot match.
    Pruned,
    /// A twin hit; the stored result (already permuted into this entry's
    /// representative order) serves its fan-out without a test.
    TwinHit,
}

/// Reusable per-worker dispatch state: the candidate entry snapshot plus
/// generation-stamped per-slot verdict arrays. Nothing is cleared between
/// events — stamps make stale data unreadable — so steady-state dispatch
/// never allocates (the arrays only grow when the index itself grows).
pub(crate) struct DispatchScratch {
    /// Candidate entries for the current event, sorted for the sweep.
    pub(crate) entries: Vec<Arc<IndexEntry>>,
    generation: u64,
    seen: Vec<u64>,
    verdict_gen: Vec<u64>,
    verdict_uid: Vec<u64>,
    verdict: Vec<Option<Verdict>>,
    twin_results: Vec<Option<MatchResult>>,
}

impl DispatchScratch {
    pub(crate) fn new() -> DispatchScratch {
        DispatchScratch {
            entries: Vec::new(),
            generation: 0,
            seen: Vec::new(),
            verdict_gen: Vec::new(),
            verdict_uid: Vec::new(),
            verdict: Vec::new(),
            twin_results: Vec::new(),
        }
    }

    fn begin(&mut self, slot_count: usize) {
        self.generation += 1;
        self.entries.clear();
        if self.seen.len() < slot_count {
            self.seen.resize(slot_count, 0);
            self.verdict_gen.resize(slot_count, 0);
            self.verdict_uid.resize(slot_count, 0);
            self.verdict.resize_with(slot_count, || None);
            self.twin_results.resize_with(slot_count, || None);
        }
    }

    fn push(&mut self, entry: &Arc<IndexEntry>) {
        let slot = entry.slot as usize;
        if self.seen[slot] != self.generation {
            self.seen[slot] = self.generation;
            self.entries.push(Arc::clone(entry));
        }
    }

    fn set_verdict(&mut self, slot: u32, uid: u64, verdict: Verdict) {
        let s = slot as usize;
        // Only candidates of this event matter, and the first verdict wins
        // (covering soundness makes conflicting verdicts impossible; this
        // is belt-and-braces).
        if self.seen[s] != self.generation || self.verdict_gen[s] == self.generation {
            return;
        }
        self.verdict_gen[s] = self.generation;
        self.verdict_uid[s] = uid;
        self.verdict[s] = Some(verdict);
    }

    /// Whether `entry` was pruned by a covered subset's miss.
    pub(crate) fn is_pruned(&self, entry: &IndexEntry) -> bool {
        let s = entry.slot as usize;
        self.verdict_gen[s] == self.generation
            && self.verdict_uid[s] == entry.uid
            && matches!(self.verdict[s], Some(Verdict::Pruned))
    }

    /// Takes the twin-hit result stored for `entry`, if any.
    pub(crate) fn take_twin_hit(&mut self, entry: &IndexEntry) -> Option<MatchResult> {
        let s = entry.slot as usize;
        if self.verdict_gen[s] == self.generation
            && self.verdict_uid[s] == entry.uid
            && matches!(self.verdict[s], Some(Verdict::TwinHit))
        {
            self.twin_results[s].take()
        } else {
            None
        }
    }

    /// Records a miss on `entry`: every superset entry in the candidate
    /// set is pruned (conjunctive matcher: a missing predicate stays
    /// missing in any superset).
    pub(crate) fn record_miss(&mut self, entry: &IndexEntry) {
        for i in 0..entry.supersets.len() {
            let EdgeRef { slot, uid } = entry.supersets[i];
            self.set_verdict(slot, uid, Verdict::Pruned);
        }
    }

    /// Records a hit on `entry`: candidate twins are short-circuited with
    /// a (permuted) clone of `result`.
    pub(crate) fn record_hit(&mut self, entry: &IndexEntry, result: &MatchResult) {
        for edge in &entry.twins {
            let s = edge.slot as usize;
            if self.seen[s] != self.generation || self.verdict_gen[s] == self.generation {
                continue;
            }
            let twin_result = match &edge.perm {
                Some(perm) => result.with_remapped_predicates(perm),
                None => result.clone(),
            };
            self.verdict_gen[s] = self.generation;
            self.verdict_uid[s] = edge.uid;
            self.verdict[s] = Some(Verdict::TwinHit);
            self.twin_results[s] = Some(twin_result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Registration;
    use std::sync::atomic::AtomicU64;
    use tep_events::parse_subscription;
    use tep_matcher::Matcher;

    fn registration(sub: &Arc<Subscription>) -> Arc<Registration> {
        let (sender, receiver) = crossbeam::channel::bounded(4);
        Arc::new(Registration {
            subscription: Arc::clone(sub),
            sender,
            receiver: Some(receiver),
            consecutive_full: AtomicU64::new(0),
            approx: false,
            explain: false,
            notif_counter: None,
            breaker: None,
        })
    }

    fn add(index: &SubscriptionIndex, id: u64, text: &str) -> Arc<Subscription> {
        let sub = Arc::new(parse_subscription(text).unwrap());
        index.insert(SubscriptionId(id), &registration(&sub));
        sub
    }

    fn candidate_ids(
        index: &SubscriptionIndex,
        scratch: &mut DispatchScratch,
        event: &Event,
        all: bool,
    ) -> Vec<u64> {
        index.collect_candidates(event, all, scratch);
        let mut ids: Vec<u64> = scratch
            .entries
            .iter()
            .flat_map(|e| e.fanout().iter().map(|m| m.id.0).collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn themed_events_reach_overlapping_and_broadcast_entries() {
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        add(&index, 1, "({power, grid}, {a= 1})");
        add(&index, 2, "({transport}, {a= 2})");
        add(&index, 3, "{a= 3}");
        let event = tep_events::parse_event("({power}, {a: 1})").unwrap();
        assert_eq!(candidate_ids(&index, &mut scratch, &event, false), [1, 3]);
    }

    #[test]
    fn themeless_events_reach_only_the_broadcast_set() {
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        add(&index, 1, "({power}, {a= 1})");
        add(&index, 2, "{a= 2}");
        let event = tep_events::parse_event("{a: 1}").unwrap();
        assert_eq!(candidate_ids(&index, &mut scratch, &event, false), [2]);
    }

    #[test]
    fn multi_tag_overlap_is_deduplicated() {
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        add(&index, 1, "({power, grid}, {a= 1})");
        let event = tep_events::parse_event("({power, grid}, {a: 1})").unwrap();
        // Both event tags hit the same entry; the generation stamp keeps it
        // to one candidate.
        assert_eq!(candidate_ids(&index, &mut scratch, &event, false), [1]);
        assert_eq!(scratch.entries.len(), 1);
    }

    #[test]
    fn duplicate_theme_tags_enter_each_bucket_once() {
        // Regression for the old RoutingTable::insert bug: a subscription
        // carrying duplicate tags (possible via deserialization, which
        // bypasses the builder's dedup) must not double-enter its bucket.
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        let json = r#"{"theme_tags":["power","power","Power "],"predicates":[
            {"attribute":"k","value":"v","approx_attribute":false,"approx_value":false}
        ]}"#;
        let sub: Subscription = serde_json::from_str(json).unwrap();
        let sub = Arc::new(sub);
        index.insert(SubscriptionId(7), &registration(&sub));
        let event = tep_events::parse_event("({power}, {k: v})").unwrap();
        assert_eq!(candidate_ids(&index, &mut scratch, &event, false), [7]);
        assert_eq!(scratch.entries.len(), 1);
        assert_eq!(scratch.entries[0].fanout_len(), 1);
        assert_eq!(index.entry_count(), 1);
    }

    #[test]
    fn duplicate_subscriptions_hash_cons_into_one_entry() {
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        add(&index, 1, "({power}, {a= 1, b= 2})");
        add(&index, 2, "({power}, {a= 1, b= 2})");
        // Permuted declaration order still lands on the same entry, with a
        // recorded permutation.
        add(&index, 3, "({power}, {b= 2, a= 1})");
        assert_eq!(index.entry_count(), 1);
        assert_eq!(index.distinct_subscriptions(), 1);
        assert_eq!(index.subscriber_count(), 3);
        let event = tep_events::parse_event("({power}, {a: 1, b: 2})").unwrap();
        index.collect_candidates(&event, false, &mut scratch);
        assert_eq!(scratch.entries.len(), 1);
        let entry = Arc::clone(&scratch.entries[0]);
        let fan = entry.fanout();
        assert_eq!(fan.len(), 3);
        assert!(fan[0].perm.is_none());
        assert!(fan[1].perm.is_none());
        assert_eq!(fan[2].perm.as_deref(), Some(&[1, 0][..]));
    }

    #[test]
    fn covering_edges_prune_supersets_and_short_circuit_twins() {
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        add(&index, 1, "{a= 1}");
        add(&index, 2, "{a= 1, b= 2}");
        add(&index, 3, "({power}, {a= 1})");

        // A miss on the subset entry prunes the superset entry.
        let event = tep_events::parse_event("({power}, {z: 9})").unwrap();
        index.collect_candidates(&event, false, &mut scratch);
        assert_eq!(scratch.entries.len(), 3);
        // Sweep order: smallest predicate sets first.
        assert_eq!(scratch.entries[0].pred_count(), 1);
        let small = Arc::clone(
            scratch
                .entries
                .iter()
                .find(|e| e.pred_count() == 1 && e.fanout()[0].id.0 == 1)
                .unwrap(),
        );
        let big = Arc::clone(
            scratch
                .entries
                .iter()
                .find(|e| e.pred_count() == 2)
                .unwrap(),
        );
        let twin = Arc::clone(
            scratch
                .entries
                .iter()
                .find(|e| e.pred_count() == 1 && e.fanout()[0].id.0 == 3)
                .unwrap(),
        );
        scratch.record_miss(&small);
        assert!(scratch.is_pruned(&big));
        assert!(scratch.is_pruned(&twin), "equal sets cover each other");

        // A hit on one twin short-circuits the other with a cloned result.
        index.collect_candidates(&event, false, &mut scratch);
        let result = tep_matcher::ExactMatcher::new().match_event(
            &small.representative,
            &tep_events::parse_event("{a: 1}").unwrap(),
        );
        assert!(result.is_match(1.0));
        scratch.record_hit(&small, &result);
        assert!(!scratch.is_pruned(&twin));
        let stored = scratch.take_twin_hit(&twin).expect("twin hit recorded");
        assert_eq!(stored.score(), result.score());
        assert!(
            scratch.take_twin_hit(&big).is_none(),
            "strict supersets are not twin-hit"
        );
    }

    #[test]
    fn remove_clears_every_index_leaf() {
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        let sub1 = add(&index, 1, "({power, grid}, {a= 1})");
        let sub2 = add(&index, 2, "{a= 2}");
        index.remove(SubscriptionId(1), &sub1);
        index.remove(SubscriptionId(2), &sub2);
        assert_eq!(index.subscriber_count(), 0);
        assert_eq!(index.entry_count(), 0);
        assert_eq!(index.distinct_subscriptions(), 0);
        let inner = index.inner.read();
        assert!(inner.by_tag.is_empty(), "emptied tag buckets are dropped");
        assert!(inner.broadcast.is_empty());
        assert!(inner.by_pred.is_empty());
        assert!(inner.by_key.is_empty());
        drop(inner);
        let event = tep_events::parse_event("({power}, {a: 1})").unwrap();
        assert!(candidate_ids(&index, &mut scratch, &event, false).is_empty());
    }

    #[test]
    fn removing_an_unknown_id_is_a_no_op() {
        let index = SubscriptionIndex::new();
        let sub = add(&index, 1, "({power}, {a= 1})");
        let stranger = Arc::new(parse_subscription("({water}, {q= 1})").unwrap());
        index.remove(SubscriptionId(99), &stranger);
        index.remove(SubscriptionId(99), &sub);
        assert_eq!(index.subscriber_count(), 1);
        assert_eq!(index.entry_count(), 1);
    }

    #[test]
    fn duplicate_leavers_keep_the_shared_entry_alive() {
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        let s1 = add(&index, 1, "({power}, {a= 1})");
        let s2 = add(&index, 2, "({power}, {a= 1})");
        index.remove(SubscriptionId(1), &s1);
        assert_eq!(index.entry_count(), 1);
        assert_eq!(index.subscriber_count(), 1);
        let event = tep_events::parse_event("({power}, {a: 1})").unwrap();
        assert_eq!(candidate_ids(&index, &mut scratch, &event, false), [2]);
        index.remove(SubscriptionId(2), &s2);
        assert_eq!(index.entry_count(), 0);
    }

    #[test]
    fn recycled_slots_invalidate_stale_covering_edges() {
        let index = SubscriptionIndex::new();
        let mut scratch = DispatchScratch::new();
        add(&index, 1, "{a= 1}");
        let s2 = add(&index, 2, "{a= 1, b= 2}");
        index.remove(SubscriptionId(2), &s2);
        // Reuse the freed slot with an unrelated entry: the stale edge from
        // entry 1 must not prune it.
        add(&index, 3, "{z= 9}");
        let event = tep_events::parse_event("{q: 0}").unwrap();
        index.collect_candidates(&event, false, &mut scratch);
        let small = Arc::clone(
            scratch
                .entries
                .iter()
                .find(|e| e.fanout()[0].id.0 == 1)
                .unwrap(),
        );
        let fresh = Arc::clone(
            scratch
                .entries
                .iter()
                .find(|e| e.fanout()[0].id.0 == 3)
                .unwrap(),
        );
        scratch.record_miss(&small);
        assert!(!scratch.is_pruned(&fresh));
    }
}
