//! Broker configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the [`crate::Broker`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Number of matcher worker threads.
    pub workers: usize,
    /// Minimum best-mapping score for an event to be delivered to a
    /// subscriber. The approximate matcher is probabilistic, so delivery
    /// is thresholded rather than boolean.
    pub delivery_threshold: f64,
    /// Capacity of the ingress event queue; [`crate::Broker::publish`]
    /// blocks when it is full (back-pressure).
    pub queue_capacity: usize,
    /// Capacity of each subscriber's notification channel; notifications
    /// to a full (or dropped) channel are counted as delivery failures
    /// rather than blocking the matching workers.
    pub notification_capacity: usize,
}

impl BrokerConfig {
    /// A config with one worker per available CPU (at least one).
    pub fn auto_workers() -> BrokerConfig {
        BrokerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            ..BrokerConfig::default()
        }
    }

    /// Replaces the worker count.
    pub fn with_workers(mut self, workers: usize) -> BrokerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the delivery threshold.
    pub fn with_delivery_threshold(mut self, threshold: f64) -> BrokerConfig {
        self.delivery_threshold = threshold;
        self
    }
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            workers: 2,
            delivery_threshold: 0.25,
            queue_capacity: 1024,
            notification_capacity: 4096,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = BrokerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_capacity > 0);
        assert!((0.0..=1.0).contains(&c.delivery_threshold));
    }

    #[test]
    fn builders() {
        let c = BrokerConfig::default().with_workers(0).with_delivery_threshold(0.5);
        assert_eq!(c.workers, 1, "worker count is clamped to at least 1");
        assert_eq!(c.delivery_threshold, 0.5);
    }

    #[test]
    fn auto_workers_positive() {
        assert!(BrokerConfig::auto_workers().workers >= 1);
    }
}
