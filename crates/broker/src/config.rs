//! Broker configuration.

use crate::overload::OverloadConfig;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// What [`crate::Broker::publish`] does when the ingress queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PublishPolicy {
    /// Block the publisher until a slot frees up (back-pressure; the
    /// historical behavior).
    Block,
    /// Block up to the given deadline, then fail with
    /// [`crate::BrokerError::PublishTimeout`].
    Timeout(Duration),
    /// Fail immediately with [`crate::BrokerError::QueueFull`].
    Reject,
}

/// What a matching worker does when a subscriber's notification channel
/// is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubscriberPolicy {
    /// Drop the new notification (the historical behavior).
    DropNewest,
    /// Evict the oldest queued notification to make room for the new one.
    ///
    /// The broker keeps a receiver clone per registration to implement the
    /// eviction, so in this mode a subscriber dropping its receiver is
    /// *not* detected as a disconnect — lag is traded for liveness.
    DropOldest,
    /// Drop the new notification, and after this many *consecutive*
    /// full-channel drops reap the registration entirely (the subscriber
    /// is treated as dead-slow and disconnected).
    DisconnectAfter(u64),
}

/// How the broker selects which subscriptions an event is matched
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Run a match test against every registered subscription (the
    /// historical behavior, and the default).
    Broadcast,
    /// Theme-indexed routing: an event is only tested against
    /// subscriptions sharing at least one theme tag with it, plus every
    /// theme-less subscription (those opt out of routing and stay
    /// broadcast).
    ///
    /// This is a **delivery semantic**, not a pure optimization: a
    /// theme-agnostic matcher (e.g. exact matching) delivers across
    /// disjoint themes under [`RoutingPolicy::Broadcast`] but not under
    /// this policy. Thematic matchers already score disjoint-theme pairs
    /// near zero, so for them the observable difference is throughput —
    /// skipped pairs are counted in
    /// [`crate::BrokerStats::routing_skipped`].
    ThemeOverlap,
}

/// Tuning for the always-on flight recorder
/// ([`crate::BrokerConfig::recorder`]): the bounded ring of periodic
/// diagnostic frames that freezes into a JSON bundle when a trigger
/// (worker panic, breaker trip, `Critical` load state, quality drift, or
/// a manual request) fires. See `tep_obs::FlightRecorder` for the
/// mechanism.
/// In serialized form every numeric field treats `0` (or a missing key)
/// as "use the built-in default" — see [`RecorderSettings::normalized`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderSettings {
    /// Ring capacity in frames (clamped to at least 2 at broker start).
    #[serde(default)]
    pub frame_capacity: usize,
    /// Frame tick period in milliseconds (clamped to at least 1). At the
    /// defaults (64 frames × 250 ms) the ring covers the last ~16 s.
    #[serde(default)]
    pub tick_ms: u64,
    /// Directory for the on-disk bundle spool (`tep-diag-<seq>.json`,
    /// oldest-evicted). `None` (the default) keeps bundles in memory
    /// only, still served via `GET /debug/bundle`.
    #[serde(default)]
    pub spool_dir: Option<String>,
    /// Bundle files kept on disk before the oldest is evicted.
    #[serde(default)]
    pub spool_capacity: usize,
    /// Per-trigger-kind cooldown in milliseconds, so a flapping breaker
    /// or a panic loop cannot produce a bundle storm.
    #[serde(default)]
    pub trigger_cooldown_ms: u64,
}

impl Default for RecorderSettings {
    fn default() -> RecorderSettings {
        RecorderSettings {
            frame_capacity: 64,
            tick_ms: 250,
            spool_dir: None,
            spool_capacity: 8,
            trigger_cooldown_ms: 5_000,
        }
    }
}

impl RecorderSettings {
    /// Replaces zero-valued numeric fields (the deserialization default
    /// for a missing key) with the built-in defaults, so a partial
    /// `{"tick_ms": 50}` config behaves like
    /// `RecorderSettings { tick_ms: 50, ..Default::default() }`.
    pub fn normalized(&self) -> RecorderSettings {
        let defaults = RecorderSettings::default();
        RecorderSettings {
            frame_capacity: match self.frame_capacity {
                0 => defaults.frame_capacity,
                n => n,
            },
            tick_ms: match self.tick_ms {
                0 => defaults.tick_ms,
                n => n,
            },
            spool_dir: self.spool_dir.clone(),
            spool_capacity: match self.spool_capacity {
                0 => defaults.spool_capacity,
                n => n,
            },
            trigger_cooldown_ms: match self.trigger_cooldown_ms {
                0 => defaults.trigger_cooldown_ms,
                n => n,
            },
        }
    }
}

/// Configuration of the [`crate::Broker`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Number of matcher worker threads.
    pub workers: usize,
    /// Minimum best-mapping score for an event to be delivered to a
    /// subscriber. The approximate matcher is probabilistic, so delivery
    /// is thresholded rather than boolean.
    pub delivery_threshold: f64,
    /// Capacity of the ingress event queue; what happens when it is full
    /// is decided by [`BrokerConfig::publish_policy`].
    pub queue_capacity: usize,
    /// Capacity of each subscriber's notification channel; what happens
    /// when it is full is decided by [`BrokerConfig::subscriber_policy`].
    pub notification_capacity: usize,
    /// Ingress overload policy.
    pub publish_policy: PublishPolicy,
    /// Subscriber overload policy.
    pub subscriber_policy: SubscriberPolicy,
    /// Whether each subscription × event match test runs under
    /// `catch_unwind`, so a panicking matcher poisons neither the worker
    /// thread nor the other subscriptions of the event. When disabled, a
    /// matcher panic kills the worker; the supervisor respawns it and
    /// recovers the in-flight event (at-least-once: already-delivered
    /// notifications for that event may repeat).
    pub isolate_matcher_panics: bool,
    /// How many times an event's panicking match tests are attempted
    /// before the event is quarantined to the dead-letter queue.
    pub max_match_attempts: u32,
    /// Capacity of the dead-letter queue; when full, the oldest quarantined
    /// event is evicted to admit the newest.
    pub dead_letter_capacity: usize,
    /// How events are routed to subscriptions for match testing.
    pub routing_policy: RoutingPolicy,
    /// Capacity of the per-event trace ring ([`crate::Broker::traces`]):
    /// the broker keeps the last `trace_capacity` [`crate::EventTrace`]
    /// records. `0` (the default) disables tracing entirely — the hot
    /// path then pays nothing for it.
    #[serde(default)]
    pub trace_capacity: usize,
    /// Capacity of the match-explanation ring
    /// ([`crate::Broker::explain_last`]): the broker keeps the last
    /// `explain_capacity` [`crate::MatchExplanation`] records. `0` (the
    /// default) disables the ring; subscribers can still opt in per
    /// subscription via [`crate::SubscribeOptions::explain`].
    #[serde(default)]
    pub explain_capacity: usize,
    /// Deterministic 1-in-k causal span sampling: every k-th published
    /// event (by sequence number) records a publish → route → match →
    /// deliver span tree ([`crate::Broker::span_tree`]). `0` (the
    /// default) disables span tracing entirely.
    #[serde(default)]
    pub span_sample_every: u64,
    /// Capacity of the span ring: the broker keeps the newest
    /// `span_capacity` [`crate::SpanRecord`]s across all sampled events.
    #[serde(default = "default_span_capacity")]
    pub span_capacity: usize,
    /// Whether the broker keeps dimensional (labeled) metrics: per-theme
    /// and per-temperature match counters, per-subscriber notification
    /// counters, and the top-k hottest-theme/term sketches behind
    /// [`crate::Broker::top_themes`]. `false` (the default) keeps the
    /// hot path at one branch per stage.
    #[serde(default)]
    pub labeled_metrics: bool,
    /// Hard cap on distinct label values per labeled metric family;
    /// increments past the cap land in the `_overflow` series so total
    /// counts stay exact while cardinality stays bounded.
    #[serde(default = "default_label_cardinality")]
    pub label_cardinality: usize,
    /// Period, in milliseconds, at which the supervisor pushes a
    /// cumulative metrics frame into the sliding-window ring that backs
    /// the `{window="10s"|"60s"}` series in [`crate::Broker::metrics`].
    /// `0` (the default) disables windowed aggregation.
    #[serde(default)]
    pub window_tick_ms: u64,
    /// Capacity of the sliding-window frame ring (frames beyond it
    /// evict oldest-first). 128 frames at a 1s tick cover both the 10s
    /// and 60s windows with slack.
    #[serde(default = "default_window_capacity")]
    pub window_capacity: usize,
    /// Adaptive overload control ([`crate::LoadState`] machine, deadline /
    /// priority shedding, per-subscriber circuit breakers, and graceful
    /// matching degradation). `None` (the default) disables the whole
    /// subsystem — the hot path then pays one branch per event for it.
    #[serde(default)]
    pub overload: Option<OverloadConfig>,
    /// Maximum jobs a worker drains from the ingress queue per channel
    /// acquisition (`recv_batch`). Batching amortizes the queue lock and
    /// parked-thread wakeups across up to this many events; `1` restores
    /// job-at-a-time dequeue. Larger batches trade a little scheduling
    /// fairness between workers for lower per-event queue overhead —
    /// recovery semantics are unchanged (a crashed worker's entire
    /// undispatched batch is re-enqueued or quarantined).
    #[serde(default = "default_dequeue_batch")]
    pub dequeue_batch: usize,
    /// Always-on flight recorder: periodic diagnostic frames in a
    /// bounded ring, frozen into a JSON bundle when a trigger fires.
    /// `None` (the default) disables the whole subsystem — the hot path
    /// then pays one branch per dequeued event for it.
    #[serde(default)]
    pub recorder: Option<RecorderSettings>,
    /// Deterministic 1-in-k cost attribution: every sampled dispatch
    /// (hashed from event sequence and index-entry id, like the quality
    /// sampler) charges its measured match/deliver nanoseconds to the
    /// owning subscription-index entry, its themes, and its subscribers
    /// ([`crate::Broker::costs`]). `0` (the default) disables the whole
    /// subsystem — the dispatch path then pays one branch for it.
    #[serde(default)]
    pub cost_sample_every: u64,
}

fn default_span_capacity() -> usize {
    1024
}

fn default_label_cardinality() -> usize {
    32
}

fn default_window_capacity() -> usize {
    128
}

fn default_dequeue_batch() -> usize {
    32
}

impl BrokerConfig {
    /// A config with one worker per available CPU (at least one).
    pub fn auto_workers() -> BrokerConfig {
        BrokerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            ..BrokerConfig::default()
        }
    }

    /// Replaces the worker count.
    pub fn with_workers(mut self, workers: usize) -> BrokerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the delivery threshold.
    pub fn with_delivery_threshold(mut self, threshold: f64) -> BrokerConfig {
        self.delivery_threshold = threshold;
        self
    }

    /// Replaces the ingress overload policy.
    pub fn with_publish_policy(mut self, policy: PublishPolicy) -> BrokerConfig {
        self.publish_policy = policy;
        self
    }

    /// Replaces the subscriber overload policy.
    pub fn with_subscriber_policy(mut self, policy: SubscriberPolicy) -> BrokerConfig {
        self.subscriber_policy = policy;
        self
    }

    /// Replaces the per-event match attempt budget (clamped to at least 1).
    pub fn with_max_match_attempts(mut self, attempts: u32) -> BrokerConfig {
        self.max_match_attempts = attempts.max(1);
        self
    }

    /// Enables or disables per-match panic isolation.
    pub fn with_panic_isolation(mut self, isolate: bool) -> BrokerConfig {
        self.isolate_matcher_panics = isolate;
        self
    }

    /// Replaces the routing policy.
    pub fn with_routing_policy(mut self, policy: RoutingPolicy) -> BrokerConfig {
        self.routing_policy = policy;
        self
    }

    /// Replaces the trace-ring capacity (`0` disables tracing).
    pub fn with_trace_capacity(mut self, capacity: usize) -> BrokerConfig {
        self.trace_capacity = capacity;
        self
    }

    /// Replaces the match-explanation ring capacity (`0` disables the
    /// ring).
    pub fn with_explain_capacity(mut self, capacity: usize) -> BrokerConfig {
        self.explain_capacity = capacity;
        self
    }

    /// Enables deterministic 1-in-`k` causal span sampling (`0` disables
    /// span tracing).
    pub fn with_span_sampling(mut self, k: u64) -> BrokerConfig {
        self.span_sample_every = k;
        self
    }

    /// Replaces the span-ring capacity.
    pub fn with_span_capacity(mut self, capacity: usize) -> BrokerConfig {
        self.span_capacity = capacity;
        self
    }

    /// Enables or disables dimensional (labeled) metrics.
    pub fn with_labeled_metrics(mut self, enabled: bool) -> BrokerConfig {
        self.labeled_metrics = enabled;
        self
    }

    /// Replaces the per-family label cardinality cap (clamped to at
    /// least 1).
    pub fn with_label_cardinality(mut self, cap: usize) -> BrokerConfig {
        self.label_cardinality = cap.max(1);
        self
    }

    /// Enables periodic windowed-metrics frames every `tick` (rounded
    /// to milliseconds; sub-millisecond ticks clamp to 1ms so enabling
    /// cannot silently disable).
    pub fn with_window_tick(mut self, tick: Duration) -> BrokerConfig {
        self.window_tick_ms = (tick.as_millis() as u64).max(1);
        self
    }

    /// Replaces the window frame-ring capacity (clamped to at least 2 —
    /// a window needs two endpoints).
    pub fn with_window_capacity(mut self, capacity: usize) -> BrokerConfig {
        self.window_capacity = capacity.max(2);
        self
    }

    /// Enables adaptive overload control with the given tuning. See
    /// [`OverloadConfig`] for the knobs and [`crate::LoadState`] for the
    /// state machine it drives.
    pub fn with_overload_control(mut self, overload: OverloadConfig) -> BrokerConfig {
        self.overload = Some(overload);
        self
    }

    /// Replaces the per-acquisition dequeue batch size (clamped to at
    /// least 1; `1` disables batching).
    pub fn with_dequeue_batch(mut self, batch: usize) -> BrokerConfig {
        self.dequeue_batch = batch.max(1);
        self
    }

    /// Enables the always-on flight recorder with the given tuning. See
    /// [`RecorderSettings`] for the knobs.
    pub fn with_flight_recorder(mut self, settings: RecorderSettings) -> BrokerConfig {
        self.recorder = Some(settings);
        self
    }

    /// Enables deterministic 1-in-`k` cost attribution (`0` disables
    /// it). [`crate::DEFAULT_COST_SAMPLE_EVERY`] is the tuned default
    /// rate the cost gate certifies.
    pub fn with_cost_attribution(mut self, k: u64) -> BrokerConfig {
        self.cost_sample_every = k;
        self
    }
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            workers: 2,
            delivery_threshold: 0.25,
            queue_capacity: 1024,
            notification_capacity: 4096,
            publish_policy: PublishPolicy::Block,
            subscriber_policy: SubscriberPolicy::DropNewest,
            isolate_matcher_panics: true,
            max_match_attempts: 2,
            dead_letter_capacity: 64,
            routing_policy: RoutingPolicy::Broadcast,
            trace_capacity: 0,
            explain_capacity: 0,
            span_sample_every: 0,
            span_capacity: default_span_capacity(),
            labeled_metrics: false,
            label_cardinality: default_label_cardinality(),
            window_tick_ms: 0,
            window_capacity: default_window_capacity(),
            overload: None,
            dequeue_batch: default_dequeue_batch(),
            recorder: None,
            cost_sample_every: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = BrokerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_capacity > 0);
        assert!((0.0..=1.0).contains(&c.delivery_threshold));
        assert!(c.isolate_matcher_panics);
        assert!(c.max_match_attempts >= 1);
        assert!(c.dead_letter_capacity > 0);
        assert_eq!(c.publish_policy, PublishPolicy::Block);
        assert_eq!(c.subscriber_policy, SubscriberPolicy::DropNewest);
        assert_eq!(c.routing_policy, RoutingPolicy::Broadcast);
        assert_eq!(c.trace_capacity, 0, "tracing is opt-in");
        assert_eq!(c.explain_capacity, 0, "explanations are opt-in");
        assert_eq!(c.span_sample_every, 0, "span sampling is opt-in");
        assert_eq!(c.span_capacity, 1024);
        assert!(!c.labeled_metrics, "labeled metrics are opt-in");
        assert_eq!(c.label_cardinality, 32);
        assert_eq!(c.window_tick_ms, 0, "windowed metrics are opt-in");
        assert_eq!(c.window_capacity, 128);
        assert!(c.overload.is_none(), "overload control is opt-in");
        assert!(c.dequeue_batch >= 1, "batch dequeue must stay enabled");
        assert!(c.recorder.is_none(), "the flight recorder is opt-in");
        assert_eq!(c.cost_sample_every, 0, "cost attribution is opt-in");
    }

    #[test]
    fn builders() {
        let c = BrokerConfig::default()
            .with_workers(0)
            .with_delivery_threshold(0.5)
            .with_publish_policy(PublishPolicy::Reject)
            .with_subscriber_policy(SubscriberPolicy::DisconnectAfter(3))
            .with_max_match_attempts(0)
            .with_panic_isolation(false)
            .with_routing_policy(RoutingPolicy::ThemeOverlap)
            .with_trace_capacity(128)
            .with_explain_capacity(64)
            .with_span_sampling(10)
            .with_span_capacity(256)
            .with_labeled_metrics(true)
            .with_label_cardinality(0)
            .with_window_tick(Duration::from_micros(100))
            .with_window_capacity(1)
            .with_dequeue_batch(0)
            .with_cost_attribution(64);
        assert_eq!(c.workers, 1, "worker count is clamped to at least 1");
        assert_eq!(c.delivery_threshold, 0.5);
        assert_eq!(c.publish_policy, PublishPolicy::Reject);
        assert_eq!(c.subscriber_policy, SubscriberPolicy::DisconnectAfter(3));
        assert_eq!(
            c.max_match_attempts, 1,
            "attempt budget is clamped to at least 1"
        );
        assert!(!c.isolate_matcher_panics);
        assert_eq!(c.routing_policy, RoutingPolicy::ThemeOverlap);
        assert_eq!(c.trace_capacity, 128);
        assert_eq!(c.explain_capacity, 64);
        assert_eq!(c.span_sample_every, 10);
        assert_eq!(c.span_capacity, 256);
        assert!(c.labeled_metrics);
        assert_eq!(c.label_cardinality, 1, "cardinality cap clamps to 1");
        assert_eq!(c.window_tick_ms, 1, "sub-ms ticks clamp to 1ms");
        assert_eq!(c.window_capacity, 2, "window ring clamps to 2 frames");
        assert_eq!(c.dequeue_batch, 1, "batch size is clamped to at least 1");
        assert_eq!(c.cost_sample_every, 64);
    }

    #[test]
    fn auto_workers_positive() {
        assert!(BrokerConfig::auto_workers().workers >= 1);
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = BrokerConfig::default()
            .with_publish_policy(PublishPolicy::Timeout(Duration::from_millis(250)))
            .with_subscriber_policy(SubscriberPolicy::DropOldest)
            .with_routing_policy(RoutingPolicy::ThemeOverlap);
        let json = serde_json::to_string(&c).unwrap();
        let back: BrokerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn observability_round_trips_through_json() {
        let c = BrokerConfig::default()
            .with_explain_capacity(32)
            .with_span_sampling(4)
            .with_span_capacity(512)
            .with_labeled_metrics(true)
            .with_label_cardinality(16)
            .with_window_tick(Duration::from_secs(1))
            .with_window_capacity(64)
            .with_cost_attribution(32);
        let json = serde_json::to_string(&c).unwrap();
        let back: BrokerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // A pre-cost-attribution config (no `cost_sample_every` key)
        // still deserializes, defaulting to off.
        let stripped = json.replace(",\"cost_sample_every\":32", "");
        assert_ne!(stripped, json, "cost key should strip");
        let legacy: BrokerConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(legacy.cost_sample_every, 0);
    }

    #[test]
    fn overload_config_round_trips_through_json() {
        let c = BrokerConfig::default().with_overload_control(OverloadConfig {
            shed_priority_floor: 42,
            ..OverloadConfig::sensitive()
        });
        let json = serde_json::to_string(&c).unwrap();
        let back: BrokerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // A pre-overload config (no `overload` key) still deserializes.
        let legacy: BrokerConfig =
            serde_json::from_str(&serde_json::to_string(&BrokerConfig::default()).unwrap())
                .unwrap();
        assert!(legacy.overload.is_none());
    }

    #[test]
    fn recorder_config_round_trips_through_json() {
        let c = BrokerConfig::default().with_flight_recorder(RecorderSettings {
            frame_capacity: 16,
            tick_ms: 50,
            spool_dir: Some("/tmp/tep-diag".to_string()),
            spool_capacity: 4,
            trigger_cooldown_ms: 100,
        });
        let json = serde_json::to_string(&c).unwrap();
        let back: BrokerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // A pre-recorder config (no `recorder` key) still deserializes,
        // and a bare `{}` settings object fills every default.
        let default_json = serde_json::to_string(&BrokerConfig::default()).unwrap();
        let legacy_json = default_json.replace(",\"recorder\":null", "");
        assert_ne!(legacy_json, default_json, "recorder key should strip");
        let legacy: BrokerConfig = serde_json::from_str(&legacy_json).unwrap();
        assert!(legacy.recorder.is_none());
        let bare: RecorderSettings = serde_json::from_str("{}").unwrap();
        assert_eq!(bare.normalized(), RecorderSettings::default());
        let partial: RecorderSettings = serde_json::from_str("{\"tick_ms\": 50}").unwrap();
        assert_eq!(partial.normalized().tick_ms, 50);
        assert_eq!(
            partial.normalized().frame_capacity,
            RecorderSettings::default().frame_capacity
        );
    }
}
