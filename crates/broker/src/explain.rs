//! Match explainability: why each subscription × event test was accepted
//! or rejected, with the semantic evidence behind the decision.
//!
//! When [`crate::BrokerConfig::explain_capacity`] is non-zero the broker
//! keeps the newest explanations in a bounded ring
//! ([`crate::Broker::explain_last`]); individual subscribers can also opt
//! in per subscription ([`crate::SubscribeOptions::explain`]) to have the
//! explanation attached to each delivered [`crate::Notification`].
//! Explanations are computed *after* the match test from its result — the
//! matcher is never re-run and an unexplained broker pays only a branch.

use crate::broker::SubscriptionId;
use std::fmt::Write as _;
use tep_matcher::{MatchDetail, PredicateExplanation};
use tep_obs::escape_json;

/// How a match test's semantic work was served, mirroring the three-way
/// stage-latency split ([`crate::StageLatencies`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTemperature {
    /// The subscription has no approximate (`~`) predicate; no semantic
    /// machinery ran at all.
    Exact,
    /// At least one semantic cache missed: the test paid a projection or
    /// vector computation.
    ThematicCold,
    /// Every lookup was served from warm semantic caches.
    CacheWarm,
}

impl CacheTemperature {
    /// Stable lower-kebab label (`exact`, `thematic-cold`, `cache-warm`).
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheTemperature::Exact => "exact",
            CacheTemperature::ThematicCold => "thematic-cold",
            CacheTemperature::CacheWarm => "cache-warm",
        }
    }
}

/// The final disposition of one subscription × event match test.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchOutcome {
    /// Scored at or above the delivery threshold and handed to the
    /// subscriber's channel.
    Delivered,
    /// Scored at or above the threshold, but the subscriber overload
    /// policy dropped the notification.
    DeliveryDropped,
    /// A valid mapping exists but its score is below the delivery
    /// threshold.
    BelowThreshold,
    /// No valid mapping between predicates and tuples exists at all.
    NoMapping,
    /// Every match attempt panicked; the event was quarantined.
    Panicked {
        /// The panic payload, when it was a string (matcher panics
        /// usually are).
        reason: String,
    },
}

impl MatchOutcome {
    /// Stable lower-kebab label (`delivered`, `delivery-dropped`,
    /// `below-threshold`, `no-mapping`, `panicked`).
    pub fn as_str(&self) -> &'static str {
        match self {
            MatchOutcome::Delivered => "delivered",
            MatchOutcome::DeliveryDropped => "delivery-dropped",
            MatchOutcome::BelowThreshold => "below-threshold",
            MatchOutcome::NoMapping => "no-mapping",
            MatchOutcome::Panicked { .. } => "panicked",
        }
    }

    /// Whether the test cleared the delivery threshold (delivered or
    /// dropped by an overload policy).
    pub fn is_accepted(&self) -> bool {
        matches!(
            self,
            MatchOutcome::Delivered | MatchOutcome::DeliveryDropped
        )
    }
}

/// One subscription × event match test, explained: the score against the
/// threshold, the themes both sides projected under, how the semantic
/// caches served the test, and (when the matcher exposes it) per-predicate
/// distances and projection dimensionalities.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchExplanation {
    /// Publish-order sequence number of the event.
    pub seq: u64,
    /// The subscription tested.
    pub subscription: SubscriptionId,
    /// The best mapping's score (0.0 when none exists or the test
    /// panicked).
    pub score: f64,
    /// The broker's delivery threshold the score was compared against.
    pub threshold: f64,
    /// The subscription's theme tags — the projection context its terms
    /// were scored under.
    pub subscription_themes: Vec<String>,
    /// The event's theme tags.
    pub event_themes: Vec<String>,
    /// How the semantic caches served the test.
    pub temperature: CacheTemperature,
    /// The final disposition.
    pub outcome: MatchOutcome,
    /// Per-predicate evidence (pairings, similarities, distances,
    /// projection dimensionalities). `None` when the test panicked before
    /// producing a result.
    pub detail: Option<MatchDetail>,
}

impl MatchExplanation {
    /// Whether the test cleared the delivery threshold.
    pub fn is_accepted(&self) -> bool {
        self.outcome.is_accepted()
    }

    /// Renders this explanation as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"seq\": {}, \"subscription\": \"{}\", \"score\": {}, \"threshold\": {}, \
             \"temperature\": \"{}\", \"outcome\": \"{}\"",
            self.seq,
            self.subscription,
            json_f64(self.score),
            json_f64(self.threshold),
            self.temperature.as_str(),
            self.outcome.as_str(),
        );
        if let MatchOutcome::Panicked { reason } = &self.outcome {
            let _ = write!(out, ", \"panic_reason\": \"{}\"", escape_json(reason));
        }
        push_string_array(&mut out, "subscription_themes", &self.subscription_themes);
        push_string_array(&mut out, "event_themes", &self.event_themes);
        match &self.detail {
            None => out.push_str(", \"detail\": null"),
            Some(d) => {
                let _ = write!(
                    out,
                    ", \"detail\": {{\"matcher\": \"{}\", \"mapped\": {}, \"predicates\": [",
                    escape_json(d.matcher),
                    d.mapped,
                );
                for (i, p) in d.predicates.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    push_predicate(&mut out, p);
                }
                out.push_str("]}");
            }
        }
        out.push('}');
        out
    }
}

/// Renders a batch of explanations as a JSON array, oldest first — the
/// payload behind the scrape server's `/explain` endpoint.
pub fn render_explanations_json(explanations: &[MatchExplanation]) -> String {
    let mut out = String::from("[");
    for (i, e) in explanations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&e.to_json());
    }
    out.push_str("\n]\n");
    out
}

/// Finite floats render as themselves; NaN/inf have no JSON spelling and
/// degrade to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_string_array(out: &mut String, key: &str, values: &[String]) {
    let _ = write!(out, ", \"{key}\": [");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape_json(v));
    }
    out.push(']');
}

fn push_predicate(out: &mut String, p: &PredicateExplanation) {
    let _ = write!(
        out,
        "{{\"predicate\": {}, \"attribute\": \"{}\", \"value\": \"{}\", \"tuple\": {}, \
         \"similarity\": {}",
        p.predicate,
        escape_json(&p.attribute),
        escape_json(&p.value),
        p.tuple
            .map_or_else(|| "null".to_string(), |t| t.to_string()),
        json_f64(p.similarity),
    );
    if let Some(a) = &p.tuple_attribute {
        let _ = write!(out, ", \"tuple_attribute\": \"{}\"", escape_json(a));
    }
    if let Some(v) = &p.tuple_value {
        let _ = write!(out, ", \"tuple_value\": \"{}\"", escape_json(v));
    }
    for (key, detail) in [
        ("attribute_detail", &p.attribute_detail),
        ("value_detail", &p.value_detail),
    ] {
        if let Some(d) = detail {
            let _ = write!(
                out,
                ", \"{key}\": {{\"score\": {}, \"distance\": {}, \"dims_full\": [{}, {}], \
                 \"dims_projected\": [{}, {}]}}",
                json_f64(d.score),
                d.distance.map_or_else(|| "null".to_string(), json_f64),
                d.dims_full_s,
                d.dims_full_e,
                d.dims_projected_s,
                d.dims_projected_e,
            );
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_matcher::RelatednessDetail;

    fn explanation(outcome: MatchOutcome) -> MatchExplanation {
        MatchExplanation {
            seq: 42,
            subscription: SubscriptionId(3),
            score: 0.5,
            threshold: 0.25,
            subscription_themes: vec!["energy policy".to_string()],
            event_themes: vec!["power \"grid\"".to_string()],
            temperature: CacheTemperature::ThematicCold,
            outcome,
            detail: Some(MatchDetail {
                matcher: "probabilistic",
                score: 0.5,
                mapped: true,
                predicates: vec![PredicateExplanation {
                    predicate: 0,
                    attribute: "type".to_string(),
                    value: "energy usage".to_string(),
                    tuple: Some(1),
                    tuple_attribute: Some("type".to_string()),
                    tuple_value: Some("energy consumption".to_string()),
                    similarity: 0.5,
                    attribute_detail: Some(RelatednessDetail::score_only(1.0)),
                    value_detail: None,
                }],
            }),
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CacheTemperature::Exact.as_str(), "exact");
        assert_eq!(CacheTemperature::ThematicCold.as_str(), "thematic-cold");
        assert_eq!(CacheTemperature::CacheWarm.as_str(), "cache-warm");
        assert_eq!(MatchOutcome::Delivered.as_str(), "delivered");
        assert_eq!(MatchOutcome::DeliveryDropped.as_str(), "delivery-dropped");
        assert_eq!(MatchOutcome::BelowThreshold.as_str(), "below-threshold");
        assert_eq!(MatchOutcome::NoMapping.as_str(), "no-mapping");
        assert_eq!(
            MatchOutcome::Panicked {
                reason: "x".to_string()
            }
            .as_str(),
            "panicked"
        );
        assert!(MatchOutcome::Delivered.is_accepted());
        assert!(MatchOutcome::DeliveryDropped.is_accepted());
        assert!(!MatchOutcome::NoMapping.is_accepted());
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let json = explanation(MatchOutcome::Delivered).to_json();
        assert!(json.contains("\"seq\": 42"));
        assert!(json.contains("\"subscription\": \"s3\""));
        assert!(json.contains("\"outcome\": \"delivered\""));
        assert!(json.contains("\"temperature\": \"thematic-cold\""));
        assert!(
            json.contains("power \\\"grid\\\""),
            "theme tags must be JSON-escaped: {json}"
        );
        assert!(json.contains("\"attribute_detail\""));
        assert!(!json.contains("\"value_detail\""));
        assert_eq!(
            json.matches(['{', '[']).count(),
            json.matches(['}', ']']).count()
        );
    }

    #[test]
    fn panic_outcome_carries_the_reason() {
        let mut e = explanation(MatchOutcome::Panicked {
            reason: "injected \"fault\"".to_string(),
        });
        e.detail = None;
        let json = e.to_json();
        assert!(json.contains("\"outcome\": \"panicked\""));
        assert!(json.contains("\"panic_reason\": \"injected \\\"fault\\\"\""));
        assert!(json.contains("\"detail\": null"));
    }

    #[test]
    fn array_rendering_separates_entries() {
        let batch = [
            explanation(MatchOutcome::Delivered),
            explanation(MatchOutcome::BelowThreshold),
        ];
        let json = render_explanations_json(&batch);
        assert!(json.starts_with('['));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"seq\": 42").count(), 2);
        assert_eq!(render_explanations_json(&[]), "[\n]\n");
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }
}
