//! Worker threads, panic isolation, and the supervisor that respawns them.
//!
//! The failure model:
//!
//! * With [`crate::BrokerConfig::isolate_matcher_panics`] **on** (the
//!   default), every subscription × event match test runs under
//!   `catch_unwind`. A panicking matcher poisons neither the worker
//!   thread nor the event's other subscriptions; the panicking pair is
//!   retried inline up to the per-event attempt budget and the event is
//!   quarantined to the dead-letter queue if the budget runs out.
//! * With isolation **off**, a matcher panic kills the worker thread. The
//!   supervisor notices, recovers the in-flight event from the worker's
//!   slot (re-enqueueing or quarantining it), and respawns a replacement
//!   worker. Delivery becomes at-least-once for the recovered event:
//!   notifications already sent before the crash may repeat.
//!
//! Either way the broker's liveness invariant holds: every accepted event
//! is eventually counted in `processed` (delivered, dropped, or
//! quarantined), so [`crate::Broker::flush_timeout`] terminates.

use crate::broker::{CostState, Registration, Shared, SubscriptionId};
use crate::config::{RoutingPolicy, SubscriberPolicy};
use crate::explain::{CacheTemperature, MatchExplanation, MatchOutcome};
use crate::notification::Notification;
use crate::stats::{nanos_between, EventTrace, WorkerShard};
use crate::subindex::{DispatchScratch, IndexEntry};
use crossbeam::channel::{Receiver, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tep_events::{Event, Subscription};
use tep_matcher::{MatchResult, Matcher};

/// How often the supervisor polls its workers for panic deaths.
const SUPERVISOR_POLL: Duration = Duration::from_millis(1);

/// A unit of work on the ingress queue: one event plus how many matching
/// attempts it has already consumed.
#[derive(Debug, Clone)]
pub(crate) struct Job {
    pub(crate) event: Arc<Event>,
    pub(crate) attempts: u32,
    /// Publish-order sequence number, stable across retries; keys the
    /// event's [`EventTrace`].
    pub(crate) seq: u64,
    /// When this job entered (or re-entered) the ingress queue; the
    /// queue-wait histogram measures from here to the worker's dequeue.
    pub(crate) enqueued_at: Instant,
    /// The event's root (publish) span id, when the event was sampled
    /// for causal tracing; `None` means no spans are recorded for it.
    pub(crate) span: Option<u64>,
    /// Publish deadline from [`crate::PublishOptions`]; consulted only by
    /// the overload controller's shedding decision.
    pub(crate) deadline: Option<Instant>,
    /// Scheduling priority from [`crate::PublishOptions`].
    pub(crate) priority: u8,
}

impl Job {
    pub(crate) fn new(
        event: Arc<Event>,
        seq: u64,
        span: Option<u64>,
        options: crate::PublishOptions,
    ) -> Job {
        Job {
            event,
            attempts: 0,
            seq,
            enqueued_at: Instant::now(),
            span,
            deadline: options.deadline,
            priority: options.priority,
        }
    }
}

/// An event quarantined after exhausting its match attempts.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The quarantined event.
    pub event: Arc<Event>,
    /// Match attempts consumed before quarantine.
    pub attempts: u32,
}

/// Bounded FIFO of quarantined events; when full, the oldest entry is
/// evicted to admit the newest.
#[derive(Debug)]
pub(crate) struct DeadLetterQueue {
    entries: Mutex<VecDeque<DeadLetter>>,
    capacity: usize,
}

impl DeadLetterQueue {
    pub(crate) fn new(capacity: usize) -> DeadLetterQueue {
        DeadLetterQueue {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    fn push(&self, letter: DeadLetter) {
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(letter);
    }

    pub(crate) fn snapshot(&self) -> Vec<DeadLetter> {
        self.entries.lock().iter().cloned().collect()
    }

    pub(crate) fn drain(&self) -> Vec<DeadLetter> {
        self.entries.lock().drain(..).collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.lock().len()
    }
}

/// Quarantines an event and counts it as processed, so `flush` never
/// waits on an event that will not be matched again.
fn quarantine(shared: &Shared, event: Arc<Event>, attempts: u32) {
    shared.dead_letters.push(DeadLetter { event, attempts });
    shared.stats.quarantined.fetch_add(1, Ordering::Relaxed);
    shared.stats.processed.fetch_add(1, Ordering::Relaxed);
}

/// One supervised worker thread.
struct Worker {
    /// `None` once the thread has exited and been joined.
    handle: Option<JoinHandle<()>>,
    /// The worker's dequeued-but-unfinished jobs, for crash recovery: the
    /// front entry is the one being matched, the rest are its batch's
    /// remainder. Only the worker pushes and pops; the supervisor drains
    /// it after a panic death.
    inflight: Arc<Mutex<VecDeque<Job>>>,
    /// Set by the worker as its very last action on a *normal* exit; a
    /// finished thread with this flag clear died to a panic.
    done: Arc<AtomicBool>,
}

fn spawn_worker<M>(
    index: usize,
    rx: &Receiver<Job>,
    shared: &Arc<Shared>,
    matcher: &Arc<M>,
    inflight: Arc<Mutex<VecDeque<Job>>>,
) -> Worker
where
    M: Matcher + Send + Sync + 'static + ?Sized,
{
    let done = Arc::new(AtomicBool::new(false));
    shared.stats.live_workers.fetch_add(1, Ordering::Relaxed);
    let handle = {
        let rx = rx.clone();
        let shared = Arc::clone(shared);
        let matcher = Arc::clone(matcher);
        let inflight = Arc::clone(&inflight);
        let done = Arc::clone(&done);
        std::thread::Builder::new()
            .name(format!("tep-broker-{index}"))
            .spawn(move || {
                let shard = shared.stats.shard(index);
                let batch_max = shared.config.dequeue_batch.max(1);
                // Both scratch buffers are reused across events: the batch
                // amortizes the channel lock, the dispatch scratch keeps
                // the per-event candidate snapshot and covering verdicts
                // allocation-free once its slot arrays have grown to the
                // index's size.
                let mut batch: Vec<Job> = Vec::with_capacity(batch_max);
                let mut scratch = DispatchScratch::new();
                loop {
                    // Drain the inflight deque first: it holds the batch
                    // remainder of a crashed predecessor when this worker
                    // is a respawn, and this worker's own batch otherwise.
                    loop {
                        // The job stays at the front of `inflight` while it
                        // is processed, so a panic death hands the current
                        // job *and* the batch remainder to the supervisor.
                        let Some(job) = inflight.lock().front().cloned() else {
                            break;
                        };
                        process_event(&shared, matcher.as_ref(), shard, &mut scratch, job);
                        inflight.lock().pop_front();
                    }
                    if rx.recv_batch(&mut batch, batch_max).is_err() {
                        break;
                    }
                    inflight.lock().extend(batch.drain(..));
                }
                shared.stats.live_workers.fetch_sub(1, Ordering::Relaxed);
                done.store(true, Ordering::Release);
            })
            .expect("spawn broker worker")
    };
    Worker {
        handle: Some(handle),
        inflight,
        done,
    }
}

/// The supervisor: spawns the initial worker pool, then polls for panic
/// deaths, recovers in-flight events, and respawns replacements until
/// shutdown completes (all workers exited normally after the queue
/// drained).
pub(crate) fn supervisor_loop<M>(
    shared: Arc<Shared>,
    matcher: Arc<M>,
    rx: Receiver<Job>,
    worker_count: usize,
) where
    M: Matcher + Send + Sync + 'static + ?Sized,
{
    let mut workers: Vec<Worker> = (0..worker_count)
        .map(|i| {
            // Pre-size the deque for a full batch so steady-state
            // `extend` never reallocates (zero-alloc hot-path guarantee).
            spawn_worker(
                i,
                &rx,
                &shared,
                &matcher,
                Arc::new(Mutex::new(VecDeque::with_capacity(
                    shared.config.dequeue_batch.max(1),
                ))),
            )
        })
        .collect();
    let mut next_index = worker_count;
    // Periodic window frames ride the supervisor's poll loop: zero extra
    // threads, zero hot-path cost. The initial frame anchors the first
    // windowed delta (the ring needs two frames to produce one).
    let window_tick = (shared.config.window_tick_ms > 0)
        .then(|| Duration::from_millis(shared.config.window_tick_ms));
    let mut last_frame = Instant::now();
    if window_tick.is_some() {
        shared.window.push(shared.current_frame());
    }
    // The load-state machine re-evaluates on the same poll loop: worst
    // observed queue fill (ingress or any subscriber channel) plus the
    // workers' queue-wait EWMA, every `tick_ms`.
    let overload_tick = shared
        .overload
        .as_ref()
        .map(|o| Duration::from_millis(o.config().tick_ms.max(1)));
    let mut last_overload = Instant::now();
    loop {
        if let Some(tick) = window_tick {
            if last_frame.elapsed() >= tick {
                shared.window.push(shared.current_frame());
                last_frame = Instant::now();
            }
        }
        if let Some(tick) = overload_tick {
            if last_overload.elapsed() >= tick {
                let overload = shared.overload.as_ref().expect("tick implies controller");
                let mut fill = rx.len() as f64 / shared.config.queue_capacity.max(1) as f64;
                let sub_capacity = shared.config.notification_capacity.max(1) as f64;
                for reg in shared.registry.read().values() {
                    fill = fill.max(reg.sender.len() as f64 / sub_capacity);
                }
                if let Some((from, to)) = overload.evaluate(fill) {
                    if to == crate::LoadState::Critical {
                        shared.fire_trigger("load_critical", || {
                            format!("load state {} -> critical (fill {fill:.3})", from.as_str())
                        });
                    }
                }
                last_overload = Instant::now();
            }
        }
        // The recorder also ticks here so an idle broker (nothing being
        // dequeued) keeps producing frames; the CAS claim means a busy
        // broker's workers and this loop never double-record an interval.
        if let Some(recorder) = &shared.recorder {
            let now = Instant::now();
            if recorder.tick_due(now) {
                recorder.tick(now, |w| shared.fill_frame(w));
                // Quality drift is derived (no event fires when an alert
                // appears), so poll it on the recorder's cadence; the
                // per-kind cooldown keeps a persistent drift from
                // storming the spool.
                if let Some(quality) = shared.quality.get() {
                    if recorder.trigger_armed("quality_drift") {
                        let report = quality.report();
                        if !report.drift.is_empty() {
                            shared.fire_trigger("quality_drift", || {
                                format!("{} drift alert(s) raised", report.drift.len())
                            });
                        }
                    }
                }
            }
        }
        let shutting_down = shared.shutdown.load(Ordering::Acquire);
        let mut all_exited = true;
        for worker in &mut workers {
            match &worker.handle {
                None => continue, // exited normally earlier
                Some(handle) if !handle.is_finished() => {
                    all_exited = false;
                    continue;
                }
                Some(_) => {}
            }
            let handle = worker.handle.take().expect("checked above");
            let join_panicked = handle.join().is_err();
            if !join_panicked && worker.done.load(Ordering::Acquire) {
                continue; // normal exit: the queue disconnected and drained
            }
            // Panic death: the worker never reached its normal epilogue.
            shared.stats.live_workers.fetch_sub(1, Ordering::Relaxed);
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            shared.fire_trigger("worker_panic", || {
                format!(
                    "worker thread died to an uncaught panic; {} live before respawn",
                    shared.stats.live_workers.load(Ordering::Relaxed)
                )
            });
            // Only the front job was mid-match when the worker died; it
            // is charged an attempt and re-enqueued (or quarantined). The
            // rest of its batch was never dispatched — the replacement
            // worker inherits the deque and processes it as-is, so a full
            // ingress queue can never force innocent jobs into quarantine.
            if let Some(job) = worker.inflight.lock().pop_front() {
                recover_job(&shared, job);
            }
            // Count the respawn *before* spawning the replacement so a
            // stats reader never observes the pool back at full strength
            // with the respawn counter still lagging.
            shared
                .stats
                .workers_respawned
                .fetch_add(1, Ordering::Relaxed);
            let inherited = Arc::clone(&worker.inflight);
            *worker = spawn_worker(next_index, &rx, &shared, &matcher, inherited);
            next_index += 1;
            all_exited = false;
        }
        if shutting_down && all_exited {
            return;
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

/// Puts a crashed worker's in-flight job back into circulation: re-enqueue
/// if it has attempt budget left and the broker is still accepting work,
/// quarantine otherwise.
fn recover_job(shared: &Shared, job: Job) {
    let attempts = job.attempts + 1;
    if attempts >= shared.config.max_match_attempts {
        quarantine(shared, job.event, attempts);
        return;
    }
    let requeue = Job {
        event: Arc::clone(&job.event),
        attempts,
        seq: job.seq,
        // Reset the clock: the queue-wait histogram measures time spent
        // queued, not the crashed attempt that preceded the requeue.
        enqueued_at: Instant::now(),
        span: job.span,
        deadline: job.deadline,
        priority: job.priority,
    };
    if shared.ingress.try_send(requeue).is_err() {
        // Broker closed or queue full: don't risk blocking the supervisor.
        quarantine(shared, job.event, attempts);
    }
}

/// Extracts a human-readable reason from a caught panic payload. Matcher
/// panics are almost always `panic!("message")` strings; anything else
/// degrades to a placeholder rather than losing the explanation.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Assembles one [`MatchExplanation`] from the test's context.
#[allow(clippy::too_many_arguments)]
fn explanation_for(
    shared: &Shared,
    job: &Job,
    id: SubscriptionId,
    reg: &Registration,
    score: f64,
    temperature: CacheTemperature,
    outcome: MatchOutcome,
    detail: Option<tep_matcher::MatchDetail>,
) -> MatchExplanation {
    MatchExplanation {
        seq: job.seq,
        subscription: id,
        score,
        threshold: shared.config.delivery_threshold,
        subscription_themes: reg.subscription.theme_tags().to_vec(),
        event_themes: job.event.theme_tags().to_vec(),
        temperature,
        outcome,
        detail,
    }
}

/// One instrumented match test: panic isolation with the per-event
/// attempt budget, per-attempt `match_tests` accounting, and
/// cache-temperature classification by sampling the matcher's miss
/// counter around the call.
struct TestRun {
    outcome: Option<MatchResult>,
    match_start: Instant,
    match_end: Instant,
    temperature: CacheTemperature,
    last_panic: Option<String>,
    /// Attempt budget burned when every attempt panicked, else 0.
    exhausted: u32,
    /// Attempts executed (each counted in `match_tests`).
    tests_run: usize,
}

fn run_match_test<M>(
    shared: &Shared,
    matcher: &M,
    shard: &WorkerShard,
    subscription: &Subscription,
    approx: bool,
    job: &Job,
    degraded: tep_matcher::DegradedMatching,
) -> TestRun
where
    M: Matcher + ?Sized,
{
    // Approximate subscriptions are classified by sampling the matcher's
    // miss counter around the call: a miss delta means the test computed
    // a projection (thematic-cold), no delta means warm caches served it.
    // Exact-only subscriptions skip the sampling entirely.
    let miss_before = if approx {
        matcher.cache_miss_count()
    } else {
        0
    };
    let match_start = Instant::now();
    let mut last_panic: Option<String> = None;
    let mut tests_run = 0usize;
    let mut exhausted = 0u32;
    let outcome = if shared.config.isolate_matcher_panics {
        let budget = shared
            .config
            .max_match_attempts
            .saturating_sub(job.attempts)
            .max(1);
        let mut outcome = None;
        for _ in 0..budget {
            shard.match_tests.fetch_add(1, Ordering::Relaxed);
            tests_run += 1;
            match catch_unwind(AssertUnwindSafe(|| {
                matcher.match_event_degraded(subscription, &job.event, degraded)
            })) {
                Ok(r) => {
                    outcome = Some(r);
                    break;
                }
                Err(payload) => {
                    shard.worker_panics.fetch_add(1, Ordering::Relaxed);
                    last_panic = Some(panic_reason(payload.as_ref()));
                }
            }
        }
        if outcome.is_none() {
            exhausted = budget;
        }
        outcome
    } else {
        // Unisolated: a panic here unwinds through the worker loop and
        // kills the thread; the supervisor recovers the in-flight job.
        shard.match_tests.fetch_add(1, Ordering::Relaxed);
        tests_run += 1;
        Some(matcher.match_event_degraded(subscription, &job.event, degraded))
    };
    // Chain the timestamps: the match end doubles as the deliver start,
    // halving the clock reads on the hot path.
    let match_end = Instant::now();
    let match_nanos = nanos_between(match_start, match_end);
    let stage = &shard.stage;
    let temperature = if !approx {
        stage.match_exact.record_nanos(match_nanos);
        CacheTemperature::Exact
    } else if matcher.cache_miss_count() > miss_before {
        stage.match_thematic.record_nanos(match_nanos);
        CacheTemperature::ThematicCold
    } else {
        stage.match_cached.record_nanos(match_nanos);
        CacheTemperature::CacheWarm
    };
    TestRun {
        outcome,
        match_start,
        match_end,
        temperature,
        last_panic,
        exhausted,
        tests_run,
    }
}

/// Matches one event against its candidate **index entries** and fans
/// delivery out to each entry's subscriber list, honoring the routing
/// policy, panic isolation, covering, and the subscriber overload
/// policy. Increments `processed` exactly once.
///
/// Dispatch is entry-based: the subscription index hash-consed duplicate
/// subscriptions onto shared entries, so one match test against an
/// entry's representative serves its whole fan-out (match cost scales
/// with distinct subscriptions). With a covering-safe matcher the sweep
/// additionally prunes superset entries on a miss and short-circuits
/// equal-set twins on a hit (`covered_skips`). Diagnostic modes — the
/// explain ring and shadow quality sampling — need one test per
/// subscriber × event pair, so they fall back to per-member testing and
/// disable covering.
///
/// Counters and stage timers go to the calling worker's `shard`;
/// `scratch` is the worker's reusable candidate snapshot + covering
/// verdict state.
fn process_event<M>(
    shared: &Shared,
    matcher: &M,
    shard: &WorkerShard,
    scratch: &mut DispatchScratch,
    job: Job,
) where
    M: Matcher + ?Sized,
{
    // Stage 1 (queue wait): publish → this dequeue. Retried jobs record
    // one sample per pass, timed from their requeue.
    let dequeued = Instant::now();
    let queue_wait_nanos = nanos_between(job.enqueued_at, dequeued);
    shard.stage.queue_wait.record_nanos(queue_wait_nanos);
    // Flight-recorder tick, riding the dequeue timestamp already taken:
    // one branch when off, one relaxed load + compare when not yet due,
    // and an allocation-free frame write for the single claiming worker
    // when due.
    if let Some(recorder) = &shared.recorder {
        if recorder.tick_due(dequeued) {
            recorder.tick(dequeued, |w| shared.fill_frame(w));
        }
    }
    // Overload control (one branch when off): feed the queue-wait EWMA,
    // then decide whether this event is shed at dequeue and at what
    // fidelity the survivors are matched. Shed events still count as
    // `processed` — the liveness invariant (`flush` terminates) must hold
    // under load shedding too.
    let mut degraded = tep_matcher::DegradedMatching::Full;
    if let Some(overload) = &shared.overload {
        overload.observe_queue_wait(queue_wait_nanos);
        if let Some(reason) = overload.shed_reason(job.deadline, job.priority, dequeued) {
            let counter = match reason {
                crate::ShedReason::Deadline => &shard.shed_deadline,
                crate::ShedReason::Load => &shard.shed_load,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            shard.processed.fetch_add(1, Ordering::Relaxed);
            if let Some(parent) = job.span {
                let now = Instant::now();
                shared.spans.record_new(
                    Some(parent),
                    job.seq,
                    "shed",
                    dequeued,
                    now,
                    vec![(
                        "reason".to_string(),
                        match reason {
                            crate::ShedReason::Deadline => "deadline".to_string(),
                            crate::ShedReason::Load => "load".to_string(),
                        },
                    )],
                );
            }
            if shared.trace.is_enabled() {
                shared.trace.push(EventTrace {
                    seq: job.seq,
                    candidates: 0,
                    routing_skipped: 0,
                    match_tests: 0,
                    notifications: 0,
                    quarantined: false,
                });
            }
            return;
        }
        degraded = overload.degraded_mode();
    }
    // Snapshot the candidate entries from the index so matching never
    // holds the index lock. The scratch is reused across events, so the
    // snapshot is allocation-free once its arrays have grown to the
    // index's size.
    let all_entries = match shared.config.routing_policy {
        RoutingPolicy::Broadcast => {
            shard.routed_broadcast.fetch_add(1, Ordering::Relaxed);
            true
        }
        RoutingPolicy::ThemeOverlap => {
            shard.routed_theme_overlap.fetch_add(1, Ordering::Relaxed);
            false
        }
    };
    let (total_subs, candidate_subs) =
        shared
            .index
            .collect_candidates(&job.event, all_entries, scratch);
    // Skip accounting stays in *subscriber* units (as before the index):
    // every subscriber behind a non-candidate entry was skipped without a
    // match test.
    let trace_skipped = if all_entries {
        0usize
    } else {
        total_subs.saturating_sub(candidate_subs) as usize
    };
    if trace_skipped > 0 {
        shard
            .routing_skipped
            .fetch_add(trace_skipped as u64, Ordering::Relaxed);
    }
    let trace_candidates = candidate_subs as usize;
    // The route span covers dequeue → candidate snapshot and parents
    // every match test of the event; `None` for unsampled events keeps
    // the hot path to a branch per stage.
    let route_span = job.span.map(|parent| {
        shared.spans.record_new(
            Some(parent),
            job.seq,
            "route",
            dequeued,
            Instant::now(),
            vec![
                ("candidates".to_string(), trace_candidates.to_string()),
                ("routing_skipped".to_string(), trace_skipped.to_string()),
            ],
        )
    });
    let explain_ring = shared.explain.is_enabled();
    // Diagnostic modes need one test (and one explanation or quality
    // sample) per subscriber × event pair, exactly like pre-index
    // dispatch — aggregation's one-test-per-entry shortcut would starve
    // them — so they force per-member sweeps. Covering additionally
    // requires the matcher to declare conjunctive semantics.
    let per_member = explain_ring || shared.quality.get().is_some();
    let covering = !per_member && matcher.covering_safe();
    let mut trace_match_tests = 0usize;
    let mut trace_notifications = 0usize;
    let mut dead: Vec<SubscriptionId> = Vec::new();
    let mut exhausted_attempts = 0u32;
    // Per-temperature test counts, flushed into the labeled families in
    // one pass at the end of the event (a branch and three adds per
    // event instead of per test).
    let mut temp_exact = 0u64;
    let mut temp_thematic = 0u64;
    let mut temp_cached = 0u64;
    // One event, many candidate tests: let the matcher reuse its
    // event-side scratch (interned symbols) across the whole sweep.
    matcher.begin_event(&job.event);
    for ci in 0..scratch.entries.len() {
        let entry = Arc::clone(&scratch.entries[ci]);
        // Cost attribution: one branch per dispatch when off. When on,
        // the same deterministic splitmix64 decision the quality sampler
        // uses picks 1-in-k (event, entry) dispatches whose measured
        // nanoseconds are charged to the entry, its themes, and its
        // delivered subscribers.
        let cost = shared
            .cost
            .as_ref()
            .filter(|c| c.should_sample(job.seq, entry.uid()));
        let mut cost_match_ns = 0u64;
        let mut cost_deliver_ns = 0u64;
        if per_member {
            // Per-pair sweep: every fan-out member is tested against its
            // own subscription, preserving the one-explanation-per-test
            // and per-pair quality-sampling invariants.
            let fan = entry.fanout();
            for member in fan.iter() {
                let id = member.id;
                let reg = &member.reg;
                let run = run_match_test(
                    shared,
                    matcher,
                    shard,
                    &reg.subscription,
                    reg.approx,
                    &job,
                    degraded,
                );
                trace_match_tests += run.tests_run;
                match run.temperature {
                    CacheTemperature::Exact => temp_exact += 1,
                    CacheTemperature::ThematicCold => temp_thematic += 1,
                    CacheTemperature::CacheWarm => temp_cached += 1,
                }
                if cost.is_some() {
                    // The same span the stage histogram records, so k=1
                    // attribution reconciles exactly.
                    cost_match_ns += nanos_between(run.match_start, run.match_end);
                }
                let Some(result) = run.outcome else {
                    exhausted_attempts = exhausted_attempts.max(run.exhausted);
                    if let Some(route) = route_span {
                        shared.spans.record_new(
                            Some(route),
                            job.seq,
                            "match",
                            run.match_start,
                            run.match_end,
                            vec![
                                ("subscription".to_string(), id.to_string()),
                                (
                                    "temperature".to_string(),
                                    run.temperature.as_str().to_string(),
                                ),
                                ("outcome".to_string(), "panicked".to_string()),
                            ],
                        );
                    }
                    if explain_ring {
                        let reason = run
                            .last_panic
                            .unwrap_or_else(|| "unknown panic".to_string());
                        shared.explain.push(explanation_for(
                            shared,
                            &job,
                            id,
                            reg,
                            0.0,
                            run.temperature,
                            MatchOutcome::Panicked { reason },
                            None,
                        ));
                    }
                    continue;
                };
                let score = result.score();
                let mapped = !result.is_empty();
                let delivering = mapped && result.is_match(shared.config.delivery_threshold);
                // Shadow quality sampling: with no oracle installed this
                // is one `OnceLock` load; with one, unsampled tests add a
                // hash and a modulo. The broker's decision (`delivering`)
                // is judged against ground truth off the delivery path's
                // critical data.
                if let Some(quality) = shared.quality.get() {
                    if quality.should_sample(job.seq, id.0) {
                        let cache = matcher.cache_stats();
                        let lookups = cache.hits + cache.misses;
                        let hit_rate = if lookups == 0 {
                            0.0
                        } else {
                            cache.hits as f64 / lookups as f64
                        };
                        quality.record(&reg.subscription, &job.event, delivering, score, hit_rate);
                    }
                }
                // Explanations are computed once per test, after the
                // result, and only when someone will read them.
                let detail = (explain_ring || (reg.explain && delivering))
                    .then(|| matcher.explain_match(&reg.subscription, &job.event, &result));
                let match_span = route_span.map(|route| {
                    shared.spans.record_new(
                        Some(route),
                        job.seq,
                        "match",
                        run.match_start,
                        run.match_end,
                        vec![
                            ("subscription".to_string(), id.to_string()),
                            (
                                "temperature".to_string(),
                                run.temperature.as_str().to_string(),
                            ),
                            ("score".to_string(), format!("{score}")),
                        ],
                    )
                });
                if delivering {
                    let attached = reg.explain.then(|| {
                        Box::new(explanation_for(
                            shared,
                            &job,
                            id,
                            reg,
                            score,
                            run.temperature,
                            MatchOutcome::Delivered,
                            detail.clone(),
                        ))
                    });
                    let notification = Notification {
                        subscription: id,
                        event: Arc::clone(&job.event),
                        result,
                        explanation: attached,
                    };
                    // Stage 3 (deliver): match decision → channel hand-off.
                    let admitted = deliver(shared, shard, id, reg, notification, &mut dead);
                    if admitted {
                        trace_notifications += 1;
                    }
                    let deliver_end = Instant::now();
                    let deliver_ns = nanos_between(run.match_end, deliver_end);
                    shard.stage.deliver.record_nanos(deliver_ns);
                    if let Some(cost) = cost {
                        cost_deliver_ns += deliver_ns;
                        cost.charge_subscriber(
                            id.0,
                            nanos_between(run.match_start, run.match_end),
                            deliver_ns,
                        );
                    }
                    if let Some(parent) = match_span {
                        shared.spans.record_new(
                            Some(parent),
                            job.seq,
                            "deliver",
                            run.match_end,
                            deliver_end,
                            vec![("admitted".to_string(), admitted.to_string())],
                        );
                    }
                    if explain_ring {
                        let outcome = if admitted {
                            MatchOutcome::Delivered
                        } else {
                            MatchOutcome::DeliveryDropped
                        };
                        shared.explain.push(explanation_for(
                            shared,
                            &job,
                            id,
                            reg,
                            score,
                            run.temperature,
                            outcome,
                            detail,
                        ));
                    }
                } else if explain_ring {
                    let outcome = if mapped {
                        MatchOutcome::BelowThreshold
                    } else {
                        MatchOutcome::NoMapping
                    };
                    shared.explain.push(explanation_for(
                        shared,
                        &job,
                        id,
                        reg,
                        score,
                        run.temperature,
                        outcome,
                        detail,
                    ));
                }
            }
            if let Some(cost) = cost {
                flush_entry_cost(cost, &entry, &job, cost_match_ns, cost_deliver_ns);
            }
            continue;
        }
        // Aggregated sweep: one test per entry serves its whole fan-out.
        if covering {
            if scratch.is_pruned(&entry) {
                // A covered subset entry missed; this entry cannot match.
                shard.covered_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if let Some(result) = scratch.take_twin_hit(&entry) {
                // An equal-set twin hit; deliver its (already permuted)
                // result to this entry's fan-out without a test.
                shard.covered_skips.fetch_add(1, Ordering::Relaxed);
                let score = result.score();
                let twin_start = Instant::now();
                let fan = entry.fanout();
                for member in fan.iter() {
                    let member_result = member.result_for(&result);
                    let attached = member.reg.explain.then(|| {
                        let d = matcher.explain_match(
                            &member.reg.subscription,
                            &job.event,
                            &member_result,
                        );
                        Box::new(explanation_for(
                            shared,
                            &job,
                            member.id,
                            &member.reg,
                            score,
                            CacheTemperature::Exact,
                            MatchOutcome::Delivered,
                            Some(d),
                        ))
                    });
                    let notification = Notification {
                        subscription: member.id,
                        event: Arc::clone(&job.event),
                        result: member_result,
                        explanation: attached,
                    };
                    let admitted = deliver(
                        shared,
                        shard,
                        member.id,
                        &member.reg,
                        notification,
                        &mut dead,
                    );
                    if admitted {
                        trace_notifications += 1;
                    }
                    let deliver_end = Instant::now();
                    let deliver_ns = nanos_between(twin_start, deliver_end);
                    shard.stage.deliver.record_nanos(deliver_ns);
                    if let Some(cost) = cost {
                        cost_deliver_ns += deliver_ns;
                        cost.charge_subscriber(member.id.0, 0, deliver_ns);
                    }
                }
                if let Some(cost) = cost {
                    flush_entry_cost(cost, &entry, &job, cost_match_ns, cost_deliver_ns);
                }
                continue;
            }
        }
        let run = run_match_test(
            shared,
            matcher,
            shard,
            &entry.representative,
            entry.approx,
            &job,
            degraded,
        );
        trace_match_tests += run.tests_run;
        match run.temperature {
            CacheTemperature::Exact => temp_exact += 1,
            CacheTemperature::ThematicCold => temp_thematic += 1,
            CacheTemperature::CacheWarm => temp_cached += 1,
        }
        if cost.is_some() {
            cost_match_ns += nanos_between(run.match_start, run.match_end);
        }
        let Some(result) = run.outcome else {
            exhausted_attempts = exhausted_attempts.max(run.exhausted);
            if let Some(route) = route_span {
                let label = entry.fanout().first().map(|m| m.id.to_string());
                shared.spans.record_new(
                    Some(route),
                    job.seq,
                    "match",
                    run.match_start,
                    run.match_end,
                    vec![
                        (
                            "subscription".to_string(),
                            label.unwrap_or_else(|| "entry".to_string()),
                        ),
                        (
                            "temperature".to_string(),
                            run.temperature.as_str().to_string(),
                        ),
                        ("outcome".to_string(), "panicked".to_string()),
                    ],
                );
            }
            if let Some(cost) = cost {
                flush_entry_cost(cost, &entry, &job, cost_match_ns, cost_deliver_ns);
            }
            continue;
        };
        let score = result.score();
        let mapped = !result.is_empty();
        let delivering = mapped && result.is_match(shared.config.delivery_threshold);
        if covering {
            if !mapped {
                // Conjunctive matcher: a predicate unsupported here stays
                // unsupported in every superset entry.
                scratch.record_miss(&entry);
            } else if delivering {
                scratch.record_hit(&entry, &result);
            }
        }
        let match_span = route_span.map(|route| {
            let label = entry
                .fanout()
                .first()
                .map(|m| m.id.to_string())
                .unwrap_or_else(|| "entry".to_string());
            shared.spans.record_new(
                Some(route),
                job.seq,
                "match",
                run.match_start,
                run.match_end,
                vec![
                    ("subscription".to_string(), label),
                    (
                        "temperature".to_string(),
                        run.temperature.as_str().to_string(),
                    ),
                    ("score".to_string(), format!("{score}")),
                ],
            )
        });
        if delivering {
            let fan = entry.fanout();
            for member in fan.iter() {
                let member_result = member.result_for(&result);
                let attached = member.reg.explain.then(|| {
                    let d =
                        matcher.explain_match(&member.reg.subscription, &job.event, &member_result);
                    Box::new(explanation_for(
                        shared,
                        &job,
                        member.id,
                        &member.reg,
                        score,
                        run.temperature,
                        MatchOutcome::Delivered,
                        Some(d),
                    ))
                });
                let notification = Notification {
                    subscription: member.id,
                    event: Arc::clone(&job.event),
                    result: member_result,
                    explanation: attached,
                };
                // Stage 3 (deliver): match decision → channel hand-off.
                let admitted = deliver(
                    shared,
                    shard,
                    member.id,
                    &member.reg,
                    notification,
                    &mut dead,
                );
                if admitted {
                    trace_notifications += 1;
                }
                let deliver_end = Instant::now();
                let deliver_ns = nanos_between(run.match_end, deliver_end);
                shard.stage.deliver.record_nanos(deliver_ns);
                if let Some(cost) = cost {
                    cost_deliver_ns += deliver_ns;
                    // An aggregated test served the whole fan-out, so a
                    // delivered member's match share is an even split.
                    cost.charge_subscriber(
                        member.id.0,
                        cost_match_ns / fan.len().max(1) as u64,
                        deliver_ns,
                    );
                }
                if let Some(parent) = match_span {
                    shared.spans.record_new(
                        Some(parent),
                        job.seq,
                        "deliver",
                        run.match_end,
                        deliver_end,
                        vec![("admitted".to_string(), admitted.to_string())],
                    );
                }
            }
        }
        if let Some(cost) = cost {
            flush_entry_cost(cost, &entry, &job, cost_match_ns, cost_deliver_ns);
        }
    }
    if !dead.is_empty() {
        let mut reaped: Vec<(SubscriptionId, Arc<Registration>)> = Vec::new();
        {
            let mut registry = shared.registry.write();
            for id in dead {
                if let Some(reg) = registry.remove(&id) {
                    shared
                        .stats
                        .disconnected_subscribers
                        .fetch_add(1, Ordering::Relaxed);
                    reaped.push((id, reg));
                }
            }
        }
        // Index and matcher cleanup run outside the registry lock; an
        // index entry whose fan-out empties is dropped with its leaves.
        for (id, reg) in reaped {
            shared.index.remove(id, &reg.subscription);
            (shared.hooks.release)(&reg.subscription);
        }
    }
    let quarantined = exhausted_attempts > 0;
    if quarantined {
        quarantine(
            shared,
            Arc::clone(&job.event),
            job.attempts + exhausted_attempts,
        );
        if let Some(route) = route_span {
            let now = Instant::now();
            shared.spans.record_new(
                Some(route),
                job.seq,
                "quarantine",
                now,
                now,
                vec![(
                    "attempts".to_string(),
                    (job.attempts + exhausted_attempts).to_string(),
                )],
            );
        }
    } else {
        shard.processed.fetch_add(1, Ordering::Relaxed);
    }
    // Labeled families and top-k sketches, one pass per event: theme
    // attribution, temperature counts, and term frequencies. Disabled
    // cost is the single branch on `dim`.
    if let Some(dim) = &shared.dim {
        let tests = trace_match_tests as u64;
        for tag in job.event.theme_tags() {
            if tests > 0 {
                dim.match_by_theme.add(tag, tests);
            }
            dim.hot_themes.record(tag);
        }
        for tuple in job.event.tuples() {
            dim.hot_terms.record(tuple.attribute());
            dim.hot_terms.record(tuple.value());
        }
        if temp_exact > 0 {
            dim.match_by_temp.add("exact", temp_exact);
        }
        if temp_thematic > 0 {
            dim.match_by_temp.add("thematic", temp_thematic);
        }
        if temp_cached > 0 {
            dim.match_by_temp.add("cached", temp_cached);
        }
    }
    if shared.trace.is_enabled() {
        shared.trace.push(EventTrace {
            seq: job.seq,
            candidates: trace_candidates,
            routing_skipped: trace_skipped,
            match_tests: trace_match_tests,
            notifications: trace_notifications,
            quarantined,
        });
    }
}

/// Flushes one sampled dispatch's measured nanoseconds into the cost
/// tables: the owning index entry (exact, uid-stamped against slot
/// recycling), each of the event's theme tags (the full cost, mirroring
/// `match_by_theme` semantics), and the global sampled totals the
/// reconciliation invariant checks. Subscriber shares were already
/// charged at the delivery sites, where per-member timings exist.
/// Allocation-free in steady state: labels were preformatted at
/// subscribe time and theme counters hit the family's read path.
fn flush_entry_cost(
    cost: &CostState,
    entry: &IndexEntry,
    job: &Job,
    match_ns: u64,
    deliver_ns: u64,
) {
    cost.charge_entry(entry.slot(), entry.uid(), match_ns, deliver_ns);
    let mut tagged = false;
    for tag in job.event.theme_tags() {
        tagged = true;
        cost.charge_theme(tag, match_ns, deliver_ns);
    }
    if !tagged {
        cost.charge_theme("untagged", match_ns, deliver_ns);
    }
}

/// Sends one notification under the configured subscriber overload
/// policy, recording drop reasons and flagging registrations to reap.
/// Returns whether the notification was admitted to the channel.
///
/// With overload control on, the subscriber's circuit breaker gates the
/// send: an Open breaker drops the notification without probing the
/// channel (`breaker_open`), and full-channel failures feed the breaker
/// instead of the blunt `DisconnectAfter` cliff — the subscriber is
/// reaped only after [`crate::BreakerConfig::reap_after_cycles`] Open
/// cycles failed to find it drained.
fn deliver(
    shared: &Shared,
    shard: &WorkerShard,
    id: SubscriptionId,
    reg: &Registration,
    notification: Notification,
    dead: &mut Vec<SubscriptionId>,
) -> bool {
    let breaker = match (&shared.overload, &reg.breaker) {
        (Some(overload), Some(breaker)) => Some((&overload.config().breaker, breaker)),
        _ => None,
    };
    if let Some((config, breaker)) = breaker {
        if !breaker.lock().allow(config, Instant::now()) {
            shard.breaker_open.fetch_add(1, Ordering::Relaxed);
            return false;
        }
    }
    match reg.sender.try_send(notification) {
        Ok(()) => {
            shard.notifications.fetch_add(1, Ordering::Relaxed);
            if let Some(counter) = &reg.notif_counter {
                counter.fetch_add(1, Ordering::Relaxed);
            }
            reg.consecutive_full.store(0, Ordering::Relaxed);
            if let Some((_, breaker)) = breaker {
                breaker.lock().on_success();
            }
            true
        }
        Err(TrySendError::Full(notification)) => {
            let admitted = match shared.config.subscriber_policy {
                SubscriberPolicy::DropNewest => {
                    shard.dropped_full.fetch_add(1, Ordering::Relaxed);
                    false
                }
                SubscriberPolicy::DropOldest => drop_oldest_and_send(shard, reg, notification),
                SubscriberPolicy::DisconnectAfter(limit) => {
                    shard.dropped_full.fetch_add(1, Ordering::Relaxed);
                    let consecutive = reg.consecutive_full.fetch_add(1, Ordering::Relaxed) + 1;
                    // The breaker supersedes the disconnect cliff: backed-off
                    // probing beats permanently losing the subscriber.
                    if consecutive >= limit && breaker.is_none() {
                        dead.push(id);
                    }
                    false
                }
            };
            if let Some((config, breaker)) = breaker {
                let mut state = breaker.lock();
                if admitted {
                    state.on_success();
                } else {
                    match state.on_failure(config, Instant::now()) {
                        crate::overload::BreakerVerdict::Counted => {}
                        crate::overload::BreakerVerdict::Tripped => {
                            shard.breaker_trips.fetch_add(1, Ordering::Relaxed);
                            shared.fire_trigger("breaker_trip", || {
                                format!("subscriber {id} circuit breaker tripped")
                            });
                        }
                        crate::overload::BreakerVerdict::Reap => dead.push(id),
                    }
                }
            }
            admitted
        }
        Err(TrySendError::Disconnected(_)) => {
            shard.dropped_disconnected.fetch_add(1, Ordering::Relaxed);
            dead.push(id);
            false
        }
    }
}

/// `DropOldest`: evict queued notifications until the new one fits. The
/// registration holds a receiver clone, so the channel can never
/// disconnect under this policy. Returns whether the new notification
/// was admitted.
fn drop_oldest_and_send(
    shard: &WorkerShard,
    reg: &Registration,
    mut notification: Notification,
) -> bool {
    let Some(evictor) = &reg.receiver else {
        // Defensive: policy changed after registration; fall back to
        // dropping the new notification.
        shard.dropped_full.fetch_add(1, Ordering::Relaxed);
        return false;
    };
    for _ in 0..8 {
        match reg.sender.try_send(notification) {
            Ok(()) => {
                shard.notifications.fetch_add(1, Ordering::Relaxed);
                if let Some(counter) = &reg.notif_counter {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
                return true;
            }
            Err(TrySendError::Full(back)) => {
                notification = back;
                match evictor.try_recv() {
                    Ok(_evicted) => {
                        shard.dropped_full.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TryRecvError::Empty) => {
                        // The subscriber drained concurrently; retry the send.
                    }
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Contention beyond the retry bound (or an impossible disconnect):
    // count the new notification as dropped rather than spin.
    shard.dropped_full.fetch_add(1, Ordering::Relaxed);
    false
}
