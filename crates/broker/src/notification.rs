//! Notifications delivered to subscribers.

use crate::broker::SubscriptionId;
use crate::explain::MatchExplanation;
use std::sync::Arc;
use tep_events::Event;
use tep_matcher::MatchResult;

/// A delivery to one subscriber: the event plus the full match result,
/// including the top-1/top-k mappings and their probabilities, so a
/// downstream complex-event-processing stage can consume the uncertainty
/// (paper §6.2).
#[derive(Debug, Clone)]
pub struct Notification {
    /// The subscription this delivery is for.
    pub subscription: SubscriptionId,
    /// The published event (shared, not copied per subscriber).
    pub event: Arc<Event>,
    /// The matcher's result (score ≥ the broker's delivery threshold).
    pub result: MatchResult,
    /// The full match explanation, present only for subscribers that
    /// opted in via [`crate::SubscribeOptions::explain`]. Boxed: the
    /// common (unexplained) notification stays small.
    pub explanation: Option<Box<MatchExplanation>>,
}

impl Notification {
    /// The best-mapping score that triggered the delivery.
    pub fn score(&self) -> f64 {
        self.result.score()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_delegates_to_result() {
        let n = Notification {
            subscription: SubscriptionId(7),
            event: Arc::new(Event::builder().tuple("a", "b").build().unwrap()),
            result: MatchResult::no_match(),
            explanation: None,
        };
        assert_eq!(n.score(), 0.0);
        assert_eq!(n.subscription, SubscriptionId(7));
        assert!(n.explanation.is_none(), "explanations are opt-in");
    }
}
