//! Broker runtime counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic broker counters, cheap to read concurrently.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub published: AtomicU64,
    pub processed: AtomicU64,
    pub match_tests: AtomicU64,
    pub notifications: AtomicU64,
    pub delivery_failures: AtomicU64,
}

/// A point-in-time snapshot of the broker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Events accepted by [`crate::Broker::publish`].
    pub published: u64,
    /// Events fully matched against every subscription.
    pub processed: u64,
    /// Individual subscription × event match tests executed.
    pub match_tests: u64,
    /// Notifications delivered to subscriber channels.
    pub notifications: u64,
    /// Notifications dropped (subscriber gone or channel full).
    pub delivery_failures: u64,
}

impl StatsInner {
    pub(crate) fn snapshot(self: &Arc<Self>) -> BrokerStats {
        BrokerStats {
            published: self.published.load(Ordering::Relaxed),
            processed: self.processed.load(Ordering::Relaxed),
            match_tests: self.match_tests.load(Ordering::Relaxed),
            notifications: self.notifications.load(Ordering::Relaxed),
            delivery_failures: self.delivery_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let inner = Arc::new(StatsInner::default());
        inner.published.fetch_add(3, Ordering::Relaxed);
        inner.notifications.fetch_add(2, Ordering::Relaxed);
        let snap = inner.snapshot();
        assert_eq!(snap.published, 3);
        assert_eq!(snap.notifications, 2);
        assert_eq!(snap.processed, 0);
    }
}
