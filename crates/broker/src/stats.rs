//! Broker runtime counters and per-stage latency instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tep_matcher::CacheStats;
use tep_obs::{HistogramSnapshot, LatencyHistogram};

/// Monotonic broker counters, cheap to read concurrently.
///
/// `live_workers` is the one gauge (it can go down); everything else only
/// ever increases. Counters a worker bumps per event or per match test
/// also exist in the per-worker [`WorkerShard`]s: the hot path increments
/// its own shard (no cross-core cache-line ping-pong), cold paths (the
/// supervisor, publish, quarantine) increment the base counters here, and
/// [`StatsInner::snapshot`] reads both — a counter's public value is
/// always `base + Σ shards`.
#[derive(Debug)]
pub(crate) struct StatsInner {
    pub published: AtomicU64,
    pub processed: AtomicU64,
    pub match_tests: AtomicU64,
    pub notifications: AtomicU64,
    pub dropped_full: AtomicU64,
    pub dropped_disconnected: AtomicU64,
    pub worker_panics: AtomicU64,
    pub workers_respawned: AtomicU64,
    pub quarantined: AtomicU64,
    pub rejected_publishes: AtomicU64,
    pub disconnected_subscribers: AtomicU64,
    pub live_workers: AtomicU64,
    pub routing_skipped: AtomicU64,
    pub routed_broadcast: AtomicU64,
    pub routed_theme_overlap: AtomicU64,
    pub covered_skips: AtomicU64,
    pub shed_deadline: AtomicU64,
    pub shed_load: AtomicU64,
    pub breaker_open: AtomicU64,
    pub breaker_trips: AtomicU64,
    /// Per-stage latency histograms for recorders without a worker shard.
    pub stage: StageTimers,
    /// One shard per configured worker, selected by `index % len`. Never
    /// empty (the default layout has one shard).
    shards: Box<[WorkerShard]>,
}

impl Default for StatsInner {
    fn default() -> StatsInner {
        StatsInner::new(1)
    }
}

/// Hot-path counters and stage timers owned by a single worker.
///
/// Workers are the only writers of their own shard, so these atomics are
/// uncontended in steady state; readers merge all shards on demand.
/// Cache-line aligned so neighbouring shards never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct WorkerShard {
    pub processed: AtomicU64,
    pub match_tests: AtomicU64,
    pub notifications: AtomicU64,
    pub dropped_full: AtomicU64,
    pub dropped_disconnected: AtomicU64,
    pub worker_panics: AtomicU64,
    pub shed_deadline: AtomicU64,
    pub shed_load: AtomicU64,
    pub breaker_open: AtomicU64,
    pub breaker_trips: AtomicU64,
    pub routing_skipped: AtomicU64,
    pub routed_broadcast: AtomicU64,
    pub routed_theme_overlap: AtomicU64,
    pub covered_skips: AtomicU64,
    /// Per-stage latency histograms, recorded wait-free on the hot path.
    pub stage: StageTimers,
}

/// Lock-free per-stage latency histograms of the event pipeline. Workers
/// record into these concurrently; [`StageTimers::snapshot`] produces the
/// public [`StageLatencies`] view.
#[derive(Debug, Default)]
pub(crate) struct StageTimers {
    /// Publish → dequeue: time an accepted event sat on the ingress queue.
    pub queue_wait: LatencyHistogram,
    /// Match tests against exact-only subscriptions (no `~` predicate).
    pub match_exact: LatencyHistogram,
    /// Match tests against approximate subscriptions that missed at least
    /// one semantic cache (paid a projection / vector computation).
    pub match_thematic: LatencyHistogram,
    /// Match tests against approximate subscriptions served entirely from
    /// warm semantic caches.
    pub match_cached: LatencyHistogram,
    /// Match decision → notification handed to the subscriber channel.
    pub deliver: LatencyHistogram,
}

impl StageTimers {
    pub(crate) fn snapshot(&self) -> StageLatencies {
        StageLatencies {
            queue_wait: self.queue_wait.snapshot(),
            match_exact: self.match_exact.snapshot(),
            match_thematic: self.match_thematic.snapshot(),
            match_cached: self.match_cached.snapshot(),
            deliver: self.deliver.snapshot(),
        }
    }
}

/// A point-in-time snapshot of the broker's per-stage latency
/// distributions ([`crate::Broker::stage_latencies`]).
///
/// Match latency is split three ways at record time: subscriptions with no
/// approximate (`~`) predicate land in [`StageLatencies::match_exact`];
/// approximate subscriptions are classified per test by sampling the
/// matcher's monotone cache-miss counter around the call —
/// [`StageLatencies::match_thematic`] when the test paid at least one
/// semantic-cache miss, [`StageLatencies::match_cached`] when it was
/// served warm. The classification is approximate under concurrency
/// (another worker's miss can land inside the sampled window) and
/// matchers without semantic caches report every approximate test as
/// cached; use [`StageLatencies::match_combined`] when the split does not
/// matter.
#[derive(Debug, Clone, Default)]
pub struct StageLatencies {
    /// Publish → dequeue queue-wait distribution.
    pub queue_wait: HistogramSnapshot,
    /// Match-test latency against exact-only subscriptions.
    pub match_exact: HistogramSnapshot,
    /// Match-test latency against approximate subscriptions that missed a
    /// semantic cache.
    pub match_thematic: HistogramSnapshot,
    /// Match-test latency against approximate subscriptions served from
    /// warm caches.
    pub match_cached: HistogramSnapshot,
    /// Match decision → subscriber-channel hand-off latency.
    pub deliver: HistogramSnapshot,
}

impl StageLatencies {
    /// All match tests merged into one distribution, regardless of
    /// exact/thematic/cache classification.
    pub fn match_combined(&self) -> HistogramSnapshot {
        self.match_exact
            .merged(&self.match_thematic)
            .merged(&self.match_cached)
    }

    /// Per-stage counts recorded since `earlier` was snapshotted from the
    /// same broker — how the bench isolates steady-state stage latencies
    /// from warm-up traffic (see [`HistogramSnapshot::delta_since`] for
    /// the delta's `max` semantics).
    pub fn delta_since(&self, earlier: &StageLatencies) -> StageLatencies {
        StageLatencies {
            queue_wait: self.queue_wait.delta_since(&earlier.queue_wait),
            match_exact: self.match_exact.delta_since(&earlier.match_exact),
            match_thematic: self.match_thematic.delta_since(&earlier.match_thematic),
            match_cached: self.match_cached.delta_since(&earlier.match_cached),
            deliver: self.deliver.delta_since(&earlier.deliver),
        }
    }
}

/// One event's trip through the pipeline, captured in the bounded trace
/// ring when [`crate::BrokerConfig::trace_capacity`] is non-zero
/// ([`crate::Broker::traces`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTrace {
    /// Publish-order sequence number assigned by
    /// [`crate::Broker::publish`].
    pub seq: u64,
    /// Candidate subscriptions the routing policy selected for this event.
    pub candidates: usize,
    /// Subscriptions skipped without a match test by theme routing.
    pub routing_skipped: usize,
    /// Match tests actually executed (retries included).
    pub match_tests: usize,
    /// Notifications handed to subscriber channels.
    pub notifications: usize,
    /// Whether the event ended in the dead-letter queue.
    pub quarantined: bool,
}

/// Nanoseconds between two [`Instant`]s, saturating at zero; `u64` holds
/// ~584 years, so the cast cannot truncate a real measurement.
pub(crate) fn nanos_between(start: Instant, end: Instant) -> u64 {
    end.saturating_duration_since(start).as_nanos() as u64
}

/// A point-in-time snapshot of the broker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Events accepted by [`crate::Broker::publish`].
    pub published: u64,
    /// Events whose matching pass finished (delivered, dropped, or
    /// quarantined — every accepted event ends up here exactly once).
    pub processed: u64,
    /// Individual subscription × event match tests executed.
    pub match_tests: u64,
    /// Notifications delivered to subscriber channels.
    pub notifications: u64,
    /// Notifications dropped because a subscriber channel was full.
    pub dropped_full: u64,
    /// Notifications dropped because the subscriber hung up.
    pub dropped_disconnected: u64,
    /// Matcher panics caught by worker isolation, plus worker threads
    /// that died to an uncaught panic.
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor after a panic death.
    pub workers_respawned: u64,
    /// Events moved to the dead-letter queue after exhausting their match
    /// attempts.
    pub quarantined: u64,
    /// Publishes refused by the ingress overload policy (queue full or
    /// publish timeout).
    pub rejected_publishes: u64,
    /// Subscriber registrations reaped (hung-up receiver, or the
    /// `DisconnectAfter` policy tripping).
    pub disconnected_subscribers: u64,
    /// Worker threads currently alive (a gauge, not a counter).
    pub live_workers: u64,
    /// Subscription × event pairs skipped without a match test by
    /// [`crate::RoutingPolicy::ThemeOverlap`] because the themes did not
    /// overlap. Always 0 under [`crate::RoutingPolicy::Broadcast`].
    pub routing_skipped: u64,
    /// Events whose candidate set was selected by full broadcast
    /// (either [`crate::RoutingPolicy::Broadcast`], or per-event
    /// fallbacks under theme routing).
    pub routed_broadcast: u64,
    /// Events whose candidate set was selected by the theme-overlap
    /// index under [`crate::RoutingPolicy::ThemeOverlap`].
    pub routed_theme_overlap: u64,
    /// Candidate index entries skipped without a match test by the
    /// covering relation: either pruned because a covered subset entry
    /// missed, or short-circuited because an equal-set twin hit.
    pub covered_skips: u64,
    /// Distinct canonical predicate multisets currently subscribed,
    /// irrespective of theme (a gauge, not a counter). This is what match
    /// cost scales with under subscription aggregation.
    pub distinct_subscriptions: u64,
    /// Live hash-consed index entries (distinct predicate multiset ×
    /// theme; a gauge, not a counter).
    pub index_entries: u64,
    /// Events shed at dequeue because their publish deadline had already
    /// expired (overload control, `Overloaded` and worse). Distinct from
    /// [`BrokerStats::dropped_full`]: shed events never reached matching.
    pub shed_deadline: u64,
    /// Events shed at dequeue because their priority fell below the
    /// configured floor (overload control, `Critical` only).
    pub shed_load: u64,
    /// Notifications dropped because the subscriber's circuit breaker was
    /// open — the subscriber queue was never probed for them.
    pub breaker_open: u64,
    /// Circuit-breaker Closed/Half-Open → Open transitions.
    pub breaker_trips: u64,
    /// Semantic-layer cache counters (projection and measure-memo
    /// caches), sampled from the matcher when the snapshot is taken. All
    /// zeros for matchers without caches.
    pub semantic_cache: CacheStats,
}

impl BrokerStats {
    /// Total notifications that could not be delivered, whatever the
    /// reason — the sum of [`BrokerStats::dropped_full`],
    /// [`BrokerStats::dropped_disconnected`], and
    /// [`BrokerStats::breaker_open`].
    pub fn delivery_failures(&self) -> u64 {
        self.dropped_full + self.dropped_disconnected + self.breaker_open
    }

    /// Events shed at dequeue by overload control, whatever the reason —
    /// the sum of [`BrokerStats::shed_deadline`] and
    /// [`BrokerStats::shed_load`]. These never reached a match test.
    pub fn shed_total(&self) -> u64 {
        self.shed_deadline + self.shed_load
    }
}

impl StatsInner {
    /// A stats block with one [`WorkerShard`] per configured worker
    /// (at least one).
    pub(crate) fn new(workers: usize) -> StatsInner {
        StatsInner {
            published: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            match_tests: AtomicU64::new(0),
            notifications: AtomicU64::new(0),
            dropped_full: AtomicU64::new(0),
            dropped_disconnected: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            rejected_publishes: AtomicU64::new(0),
            disconnected_subscribers: AtomicU64::new(0),
            live_workers: AtomicU64::new(0),
            routing_skipped: AtomicU64::new(0),
            routed_broadcast: AtomicU64::new(0),
            routed_theme_overlap: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_load: AtomicU64::new(0),
            breaker_open: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            covered_skips: AtomicU64::new(0),
            stage: StageTimers::default(),
            shards: (0..workers.max(1))
                .map(|_| WorkerShard::default())
                .collect(),
        }
    }

    /// The shard worker `index` records into. Respawned workers carry
    /// monotonically growing indices, hence the modulo.
    pub(crate) fn shard(&self, index: usize) -> &WorkerShard {
        &self.shards[index % self.shards.len()]
    }

    /// `base + Σ shards` for a counter that is sharded across workers.
    /// Alloc-free: `snapshot` runs inside the broker's 100µs flush poll.
    fn merged(&self, base: &AtomicU64, pick: impl Fn(&WorkerShard) -> &AtomicU64) -> u64 {
        base.load(Ordering::Relaxed)
            + self
                .shards
                .iter()
                .map(|s| pick(s).load(Ordering::Relaxed))
                .sum::<u64>()
    }

    /// Stage latency distributions merged across the base timers and
    /// every worker shard.
    pub(crate) fn stage_snapshot(&self) -> StageLatencies {
        let mut out = self.stage.snapshot();
        for shard in self.shards.iter() {
            let s = shard.stage.snapshot();
            out.queue_wait = out.queue_wait.merged(&s.queue_wait);
            out.match_exact = out.match_exact.merged(&s.match_exact);
            out.match_thematic = out.match_thematic.merged(&s.match_thematic);
            out.match_cached = out.match_cached.merged(&s.match_cached);
            out.deliver = out.deliver.merged(&s.deliver);
        }
        out
    }

    /// Accumulates one stage's histogram (base timers + every worker
    /// shard) into a reused snapshot buffer without allocating — the
    /// flight recorder's frame-tick counterpart of
    /// [`StatsInner::stage_snapshot`].
    pub(crate) fn accumulate_stage(
        &self,
        pick: impl Fn(&StageTimers) -> &LatencyHistogram,
        out: &mut HistogramSnapshot,
    ) {
        pick(&self.stage).accumulate_into(out);
        for shard in self.shards.iter() {
            pick(&shard.stage).accumulate_into(out);
        }
    }

    pub(crate) fn snapshot(self: &Arc<Self>) -> BrokerStats {
        BrokerStats {
            published: self.published.load(Ordering::Relaxed),
            processed: self.merged(&self.processed, |s| &s.processed),
            match_tests: self.merged(&self.match_tests, |s| &s.match_tests),
            notifications: self.merged(&self.notifications, |s| &s.notifications),
            dropped_full: self.merged(&self.dropped_full, |s| &s.dropped_full),
            dropped_disconnected: self
                .merged(&self.dropped_disconnected, |s| &s.dropped_disconnected),
            worker_panics: self.merged(&self.worker_panics, |s| &s.worker_panics),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            rejected_publishes: self.rejected_publishes.load(Ordering::Relaxed),
            disconnected_subscribers: self.disconnected_subscribers.load(Ordering::Relaxed),
            live_workers: self.live_workers.load(Ordering::Relaxed),
            routing_skipped: self.merged(&self.routing_skipped, |s| &s.routing_skipped),
            routed_broadcast: self.merged(&self.routed_broadcast, |s| &s.routed_broadcast),
            routed_theme_overlap: self
                .merged(&self.routed_theme_overlap, |s| &s.routed_theme_overlap),
            covered_skips: self.merged(&self.covered_skips, |s| &s.covered_skips),
            // Filled in by `Broker::stats`, which can reach the index.
            distinct_subscriptions: 0,
            index_entries: 0,
            shed_deadline: self.merged(&self.shed_deadline, |s| &s.shed_deadline),
            shed_load: self.merged(&self.shed_load, |s| &s.shed_load),
            breaker_open: self.merged(&self.breaker_open, |s| &s.breaker_open),
            breaker_trips: self.merged(&self.breaker_trips, |s| &s.breaker_trips),
            // Filled in by `Broker::stats`, which can reach the matcher.
            semantic_cache: CacheStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let inner = Arc::new(StatsInner::default());
        inner.published.fetch_add(3, Ordering::Relaxed);
        inner.notifications.fetch_add(2, Ordering::Relaxed);
        inner.worker_panics.fetch_add(1, Ordering::Relaxed);
        let snap = inner.snapshot();
        assert_eq!(snap.published, 3);
        assert_eq!(snap.notifications, 2);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.processed, 0);
    }

    #[test]
    fn snapshot_merges_worker_shards_with_base_counters() {
        let inner = Arc::new(StatsInner::new(3));
        inner.processed.fetch_add(1, Ordering::Relaxed);
        inner.shard(0).processed.fetch_add(2, Ordering::Relaxed);
        inner.shard(1).processed.fetch_add(3, Ordering::Relaxed);
        // A respawned worker's index wraps onto an existing shard.
        inner.shard(5).processed.fetch_add(4, Ordering::Relaxed);
        inner.shard(2).notifications.fetch_add(7, Ordering::Relaxed);
        let snap = inner.snapshot();
        assert_eq!(snap.processed, 10, "base + all shards");
        assert_eq!(snap.notifications, 7);

        inner.stage.queue_wait.record_nanos(1_000);
        inner.shard(0).stage.queue_wait.record_nanos(2_000);
        inner.shard(2).stage.queue_wait.record_nanos(3_000);
        assert_eq!(inner.stage_snapshot().queue_wait.count(), 3);
    }

    #[test]
    fn delivery_failures_is_the_sum_of_drop_reasons() {
        let inner = Arc::new(StatsInner::default());
        inner.dropped_full.fetch_add(4, Ordering::Relaxed);
        inner.dropped_disconnected.fetch_add(3, Ordering::Relaxed);
        inner.breaker_open.fetch_add(2, Ordering::Relaxed);
        assert_eq!(inner.snapshot().delivery_failures(), 9);
    }

    #[test]
    fn shed_counters_are_distinct_from_drop_counters() {
        let inner = Arc::new(StatsInner::default());
        inner.shed_deadline.fetch_add(5, Ordering::Relaxed);
        inner.shed_load.fetch_add(2, Ordering::Relaxed);
        inner.breaker_trips.fetch_add(1, Ordering::Relaxed);
        let snap = inner.snapshot();
        assert_eq!(snap.shed_total(), 7);
        assert_eq!(snap.shed_deadline, 5);
        assert_eq!(snap.shed_load, 2);
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(
            snap.delivery_failures(),
            0,
            "shedding is admission control, not delivery failure"
        );
    }
}
