//! The theme-indexed subscription table behind
//! [`crate::RoutingPolicy::ThemeOverlap`].
//!
//! Subscriptions are indexed by their (already normalized) theme tags so
//! dispatch can fetch the candidate set for an event with a handful of
//! hash lookups instead of scanning the whole registry. Theme-less
//! subscriptions opt out of routing: they live in a separate broadcast
//! set and are candidates for every event.

use crate::broker::SubscriptionId;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Maps theme tags to the subscriptions carrying them, plus the broadcast
/// set of theme-less subscriptions.
///
/// The table is maintained unconditionally (subscribe/unsubscribe/reap)
/// and only *consulted* under [`crate::RoutingPolicy::ThemeOverlap`], so
/// flipping the policy needs no rebuild.
#[derive(Debug, Default)]
pub(crate) struct RoutingTable {
    inner: RwLock<RoutingInner>,
}

#[derive(Debug, Default)]
struct RoutingInner {
    by_tag: HashMap<String, Vec<SubscriptionId>>,
    broadcast: Vec<SubscriptionId>,
}

impl RoutingTable {
    pub(crate) fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// Indexes `id` under each of its theme tags, or into the broadcast
    /// set when it has none.
    pub(crate) fn insert(&self, id: SubscriptionId, tags: &[String]) {
        let mut inner = self.inner.write();
        if tags.is_empty() {
            inner.broadcast.push(id);
        } else {
            for tag in tags {
                inner.by_tag.entry(tag.clone()).or_default().push(id);
            }
        }
    }

    /// Removes `id` from the index; `tags` must be the tags it was
    /// inserted with (they are immutable on `Subscription`).
    pub(crate) fn remove(&self, id: SubscriptionId, tags: &[String]) {
        let mut inner = self.inner.write();
        if tags.is_empty() {
            inner.broadcast.retain(|x| *x != id);
        } else {
            for tag in tags {
                if let Some(ids) = inner.by_tag.get_mut(tag) {
                    ids.retain(|x| *x != id);
                    if ids.is_empty() {
                        inner.by_tag.remove(tag);
                    }
                }
            }
        }
    }

    /// The candidate subscriptions for an event carrying `tags`: every
    /// themed subscription sharing at least one tag, plus the whole
    /// broadcast set. A theme-less event reaches only the broadcast set.
    ///
    /// The result is sorted and deduplicated (a subscription sharing two
    /// tags with the event appears once).
    pub(crate) fn candidates(&self, tags: &[String]) -> Vec<SubscriptionId> {
        let inner = self.inner.read();
        let mut out = inner.broadcast.clone();
        for tag in tags {
            if let Some(ids) = inner.by_tag.get(tag) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn themed_events_reach_overlapping_and_broadcast_subscriptions() {
        let table = RoutingTable::new();
        table.insert(SubscriptionId(1), &tags(&["power", "computers"]));
        table.insert(SubscriptionId(2), &tags(&["transport"]));
        table.insert(SubscriptionId(3), &tags(&[])); // broadcast
        assert_eq!(
            table.candidates(&tags(&["computers"])),
            [SubscriptionId(1), SubscriptionId(3)]
        );
        assert_eq!(
            table.candidates(&tags(&["transport", "power"])),
            [SubscriptionId(1), SubscriptionId(2), SubscriptionId(3)]
        );
    }

    #[test]
    fn themeless_events_reach_only_the_broadcast_set() {
        let table = RoutingTable::new();
        table.insert(SubscriptionId(1), &tags(&["power"]));
        table.insert(SubscriptionId(2), &tags(&[]));
        assert_eq!(table.candidates(&[]), [SubscriptionId(2)]);
    }

    #[test]
    fn multi_tag_overlap_is_deduplicated() {
        let table = RoutingTable::new();
        table.insert(SubscriptionId(7), &tags(&["a", "b"]));
        assert_eq!(table.candidates(&tags(&["a", "b"])), [SubscriptionId(7)]);
    }

    #[test]
    fn remove_clears_every_index_entry() {
        let table = RoutingTable::new();
        table.insert(SubscriptionId(1), &tags(&["a", "b"]));
        table.insert(SubscriptionId(2), &tags(&[]));
        table.remove(SubscriptionId(1), &tags(&["a", "b"]));
        table.remove(SubscriptionId(2), &tags(&[]));
        assert!(table.candidates(&tags(&["a", "b"])).is_empty());
        assert!(table.candidates(&[]).is_empty());
        // Emptied per-tag buckets are dropped entirely.
        assert!(table.inner.read().by_tag.is_empty());
    }

    #[test]
    fn removing_an_unknown_id_is_a_no_op() {
        let table = RoutingTable::new();
        table.insert(SubscriptionId(1), &tags(&["a"]));
        table.remove(SubscriptionId(9), &tags(&["a", "zz"]));
        assert_eq!(table.candidates(&tags(&["a"])), [SubscriptionId(1)]);
    }
}
