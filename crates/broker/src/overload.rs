//! Adaptive overload control (off by default; see
//! [`crate::BrokerConfig::with_overload_control`]).
//!
//! Three cooperating pieces:
//!
//! * a **load-state machine** ([`LoadState`], [`OverloadController`]):
//!   `Healthy → Elevated → Overloaded → Critical`, driven by an EWMA of
//!   ingress queue wait and by queue fill, with hysteresis — the state
//!   steps *up* immediately when either signal crosses an enter threshold
//!   and steps *down* one rung at a time only after several consecutive
//!   calm supervisor ticks below the (lower) exit threshold, so the broker
//!   cannot flap between reactions at a threshold boundary;
//! * **deadline / priority shedding** decisions ([`ShedReason`]): in
//!   `Overloaded` and worse, events whose publish deadline already expired
//!   are shed at dequeue instead of matched; in `Critical`, events below
//!   the configured priority floor are shed too;
//! * **per-subscriber circuit breakers** ([`BreakerState`]): instead of
//!   the blunt `DisconnectAfter` cliff, consecutive send failures open a
//!   breaker that drops deliveries for an exponentially backed-off,
//!   jittered window, then probes the subscriber with a few Half-Open
//!   sends; only repeated Open cycles reap the subscriber.
//!
//! Everything here is pure state-machine logic over injected clocks and
//! counters — the broker wires it into the hot path, the supervisor ticks
//! it, and `BrokerStats` carries the counts — so it unit-tests without
//! threads.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};
use tep_matcher::DegradedMatching;

/// The broker's load state, ordered by severity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LoadState {
    /// Queue wait and fill are below every threshold; full fidelity.
    #[default]
    Healthy,
    /// Early-warning band: matching may degrade, nothing is shed.
    Elevated,
    /// Sustained pressure: expired-deadline events are shed at dequeue.
    Overloaded,
    /// Survival mode: low-priority events are shed too, matching drops to
    /// the bottom of the degradation ladder.
    Critical,
}

impl LoadState {
    /// All states, in severity order.
    pub const ALL: [LoadState; 4] = [
        LoadState::Healthy,
        LoadState::Elevated,
        LoadState::Overloaded,
        LoadState::Critical,
    ];

    /// Stable lowercase label for metrics and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            LoadState::Healthy => "healthy",
            LoadState::Elevated => "elevated",
            LoadState::Overloaded => "overloaded",
            LoadState::Critical => "critical",
        }
    }

    /// Severity as a small integer (`healthy = 0 … critical = 3`), the
    /// value exported as the `tep_load_state` gauge.
    pub fn severity(self) -> u8 {
        match self {
            LoadState::Healthy => 0,
            LoadState::Elevated => 1,
            LoadState::Overloaded => 2,
            LoadState::Critical => 3,
        }
    }

    fn from_severity(v: u8) -> Option<LoadState> {
        LoadState::ALL.get(v as usize).copied()
    }

    fn step_down(self) -> LoadState {
        LoadState::from_severity(self.severity().saturating_sub(1)).unwrap_or(LoadState::Healthy)
    }
}

/// Why an event was shed at dequeue instead of matched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Its publish deadline had already expired (`Overloaded` and worse).
    Deadline,
    /// Its priority fell below the configured floor (`Critical` only).
    Load,
}

fn default_ewma_alpha() -> f64 {
    0.2
}
fn default_elevated_wait_ms() -> f64 {
    2.0
}
fn default_overloaded_wait_ms() -> f64 {
    10.0
}
fn default_critical_wait_ms() -> f64 {
    50.0
}
fn default_elevated_fill() -> f64 {
    0.50
}
fn default_overloaded_fill() -> f64 {
    0.75
}
fn default_critical_fill() -> f64 {
    0.90
}
fn default_recovery_factor() -> f64 {
    0.7
}
fn default_recovery_ticks() -> u32 {
    3
}
fn default_tick_ms() -> u64 {
    5
}
fn default_shed_priority_floor() -> u8 {
    0
}
fn default_elevated_matching() -> DegradedMatching {
    DegradedMatching::Full
}
fn default_overloaded_matching() -> DegradedMatching {
    DegradedMatching::CacheOnly
}
fn default_critical_matching() -> DegradedMatching {
    DegradedMatching::ExactOnly
}
fn default_breaker() -> BreakerConfig {
    BreakerConfig::default()
}

/// Tuning for the overload-control subsystem. All thresholds have serde
/// defaults, so persisted configs stay forward-compatible as knobs are
/// added.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Smoothing factor for the queue-wait EWMA (`0 < α ≤ 1`; higher
    /// reacts faster).
    #[serde(default = "default_ewma_alpha")]
    pub ewma_alpha: f64,
    /// EWMA queue wait (ms) at which `Elevated` is entered.
    #[serde(default = "default_elevated_wait_ms")]
    pub elevated_wait_ms: f64,
    /// EWMA queue wait (ms) at which `Overloaded` is entered.
    #[serde(default = "default_overloaded_wait_ms")]
    pub overloaded_wait_ms: f64,
    /// EWMA queue wait (ms) at which `Critical` is entered.
    #[serde(default = "default_critical_wait_ms")]
    pub critical_wait_ms: f64,
    /// Queue fill fraction (ingress or any subscriber, `0..=1`) at which
    /// `Elevated` is entered.
    #[serde(default = "default_elevated_fill")]
    pub elevated_fill: f64,
    /// Fill fraction at which `Overloaded` is entered.
    #[serde(default = "default_overloaded_fill")]
    pub overloaded_fill: f64,
    /// Fill fraction at which `Critical` is entered.
    #[serde(default = "default_critical_fill")]
    pub critical_fill: f64,
    /// Exit thresholds are the enter thresholds scaled by this factor
    /// (`0 < f < 1`): the hysteresis band that prevents flapping.
    #[serde(default = "default_recovery_factor")]
    pub recovery_factor: f64,
    /// Consecutive calm supervisor ticks required before stepping down one
    /// state.
    #[serde(default = "default_recovery_ticks")]
    pub recovery_ticks: u32,
    /// How often the supervisor re-evaluates the state (milliseconds).
    #[serde(default = "default_tick_ms")]
    pub tick_ms: u64,
    /// Under `Critical`, events with priority **below** this floor are
    /// shed. The default floor of 0 sheds nothing (priorities are `u8`),
    /// so deadline shedding alone applies until the operator opts in.
    #[serde(default = "default_shed_priority_floor")]
    pub shed_priority_floor: u8,
    /// Matching fidelity in `Elevated`.
    #[serde(default = "default_elevated_matching")]
    pub elevated_matching: DegradedMatching,
    /// Matching fidelity in `Overloaded`.
    #[serde(default = "default_overloaded_matching")]
    pub overloaded_matching: DegradedMatching,
    /// Matching fidelity in `Critical`.
    #[serde(default = "default_critical_matching")]
    pub critical_matching: DegradedMatching,
    /// Per-subscriber circuit-breaker tuning.
    #[serde(default = "default_breaker")]
    pub breaker: BreakerConfig,
}

impl Default for OverloadConfig {
    fn default() -> OverloadConfig {
        OverloadConfig {
            ewma_alpha: default_ewma_alpha(),
            elevated_wait_ms: default_elevated_wait_ms(),
            overloaded_wait_ms: default_overloaded_wait_ms(),
            critical_wait_ms: default_critical_wait_ms(),
            elevated_fill: default_elevated_fill(),
            overloaded_fill: default_overloaded_fill(),
            critical_fill: default_critical_fill(),
            recovery_factor: default_recovery_factor(),
            recovery_ticks: default_recovery_ticks(),
            tick_ms: default_tick_ms(),
            shed_priority_floor: default_shed_priority_floor(),
            elevated_matching: default_elevated_matching(),
            overloaded_matching: default_overloaded_matching(),
            critical_matching: default_critical_matching(),
            breaker: default_breaker(),
        }
    }
}

impl OverloadConfig {
    /// Thresholds tuned for tests and benches: trips at sub-millisecond
    /// queue waits, re-evaluates every millisecond, and recovers after two
    /// calm ticks — an overload storm and its recovery both fit inside a
    /// test's time budget.
    pub fn sensitive() -> OverloadConfig {
        OverloadConfig {
            ewma_alpha: 0.5,
            elevated_wait_ms: 0.2,
            overloaded_wait_ms: 1.0,
            critical_wait_ms: 5.0,
            recovery_ticks: 2,
            tick_ms: 1,
            ..OverloadConfig::default()
        }
    }

    /// The matching fidelity this config prescribes for `state`.
    pub fn matching_for(&self, state: LoadState) -> DegradedMatching {
        match state {
            LoadState::Healthy => DegradedMatching::Full,
            LoadState::Elevated => self.elevated_matching,
            LoadState::Overloaded => self.overloaded_matching,
            LoadState::Critical => self.critical_matching,
        }
    }

    /// Enter thresholds `(wait_ms, fill)` for `state`; `Healthy` has none.
    fn enter_thresholds(&self, state: LoadState) -> Option<(f64, f64)> {
        match state {
            LoadState::Healthy => None,
            LoadState::Elevated => Some((self.elevated_wait_ms, self.elevated_fill)),
            LoadState::Overloaded => Some((self.overloaded_wait_ms, self.overloaded_fill)),
            LoadState::Critical => Some((self.critical_wait_ms, self.critical_fill)),
        }
    }
}

fn default_failure_threshold() -> u64 {
    8
}
fn default_open_backoff_ms() -> u64 {
    50
}
fn default_max_backoff_ms() -> u64 {
    5_000
}
fn default_half_open_probes() -> u32 {
    2
}
fn default_reap_after_cycles() -> u32 {
    4
}
fn default_jitter_seed() -> u64 {
    0x5EED
}

/// Per-subscriber circuit-breaker tuning.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive send failures (queue full) that open the breaker.
    #[serde(default = "default_failure_threshold")]
    pub failure_threshold: u64,
    /// Open window after the first trip (milliseconds); doubles per cycle.
    #[serde(default = "default_open_backoff_ms")]
    pub open_backoff_ms: u64,
    /// Upper bound on the exponential backoff (milliseconds).
    #[serde(default = "default_max_backoff_ms")]
    pub max_backoff_ms: u64,
    /// Successful Half-Open probe sends required to close the breaker.
    #[serde(default = "default_half_open_probes")]
    pub half_open_probes: u32,
    /// Open cycles after which the subscriber is reaped (disconnected).
    #[serde(default = "default_reap_after_cycles")]
    pub reap_after_cycles: u32,
    /// Seed for the deterministic backoff jitter, so N breakers tripped by
    /// the same storm do not all probe again in the same tick.
    #[serde(default = "default_jitter_seed")]
    pub jitter_seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: default_failure_threshold(),
            open_backoff_ms: default_open_backoff_ms(),
            max_backoff_ms: default_max_backoff_ms(),
            half_open_probes: default_half_open_probes(),
            reap_after_cycles: default_reap_after_cycles(),
            jitter_seed: default_jitter_seed(),
        }
    }
}

/// splitmix64 finalizer — the same deterministic mixer the quality sampler
/// uses, here keying backoff jitter off `(seed, breaker key, cycle)`.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(b);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The three classic breaker phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerPhase {
    /// Deliveries flow; consecutive failures are counted.
    Closed,
    /// Deliveries are dropped (counted as `breaker_open`) until `until`.
    Open { until: Instant, cycles: u32 },
    /// The backoff expired; up to `remaining` probe sends decide whether
    /// to close or re-open.
    HalfOpen { remaining: u32, cycles: u32 },
}

/// What [`BreakerState::on_failure`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BreakerVerdict {
    /// Failure counted; the breaker stays closed (or open) for now.
    Counted,
    /// The breaker just transitioned to Open (counts as one trip).
    Tripped,
    /// Repeated Open cycles exhausted the budget: reap the subscriber.
    Reap,
}

/// One subscriber's circuit breaker. Guarded by a mutex in the
/// registration; all methods take `now` so the logic is clock-injectable.
#[derive(Debug)]
pub(crate) struct BreakerState {
    failures: u64,
    phase: BreakerPhase,
    /// Stable per-subscriber jitter key (the subscription id).
    key: u64,
}

impl BreakerState {
    pub(crate) fn new(key: u64) -> BreakerState {
        BreakerState {
            failures: 0,
            phase: BreakerPhase::Closed,
            key,
        }
    }

    /// Whether the breaker currently drops deliveries.
    pub(crate) fn is_open(&self) -> bool {
        matches!(self.phase, BreakerPhase::Open { .. })
    }

    /// Gate one delivery: `true` → attempt the send (Closed, Half-Open
    /// probe, or an Open window that just expired into Half-Open);
    /// `false` → drop it without touching the subscriber queue.
    pub(crate) fn allow(&mut self, config: &BreakerConfig, now: Instant) -> bool {
        match self.phase {
            BreakerPhase::Closed | BreakerPhase::HalfOpen { .. } => true,
            BreakerPhase::Open { until, cycles } => {
                if now >= until {
                    self.phase = BreakerPhase::HalfOpen {
                        remaining: config.half_open_probes.max(1),
                        cycles,
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A delivery succeeded: reset the failure streak; enough Half-Open
    /// probe successes close the breaker (and forgive past cycles).
    pub(crate) fn on_success(&mut self) {
        self.failures = 0;
        if let BreakerPhase::HalfOpen { remaining, .. } = &mut self.phase {
            *remaining = remaining.saturating_sub(1);
            if *remaining == 0 {
                self.phase = BreakerPhase::Closed;
            }
        }
    }

    /// A delivery found the subscriber queue full.
    pub(crate) fn on_failure(&mut self, config: &BreakerConfig, now: Instant) -> BreakerVerdict {
        match self.phase {
            BreakerPhase::Closed => {
                self.failures += 1;
                if self.failures >= config.failure_threshold.max(1) {
                    self.trip(config, now, 0);
                    BreakerVerdict::Tripped
                } else {
                    BreakerVerdict::Counted
                }
            }
            BreakerPhase::HalfOpen { cycles, .. } => {
                let next = cycles + 1;
                if next >= config.reap_after_cycles.max(1) {
                    BreakerVerdict::Reap
                } else {
                    self.trip(config, now, next);
                    BreakerVerdict::Tripped
                }
            }
            // `allow` already dropped the delivery while Open; a failure
            // here can only come from a racing send that was gated before
            // the trip — count it and move on.
            BreakerPhase::Open { .. } => BreakerVerdict::Counted,
        }
    }

    fn trip(&mut self, config: &BreakerConfig, now: Instant, cycles: u32) {
        self.failures = 0;
        let base = config.open_backoff_ms.max(1);
        let backoff = base
            .saturating_mul(1u64 << cycles.min(16))
            .min(config.max_backoff_ms.max(base));
        // Deterministic jitter in [0, backoff/4]: spreads the re-probe
        // times of breakers tripped by the same storm.
        let jitter =
            mix(config.jitter_seed, self.key.wrapping_add(cycles as u64)) % (backoff / 4 + 1);
        self.phase = BreakerPhase::Open {
            until: now + Duration::from_millis(backoff + jitter),
            cycles,
        };
    }
}

/// Sentinel for "no forced state" in the `forced` atomic.
const NO_FORCE: u8 = u8::MAX;

/// The shared load-state machine. Workers feed queue-wait samples from the
/// dequeue path ([`Self::observe_queue_wait`], lock-free); the supervisor
/// calls [`Self::evaluate`] every `tick_ms`; everything else reads the
/// current state with a single relaxed load.
#[derive(Debug)]
pub(crate) struct OverloadController {
    config: OverloadConfig,
    /// EWMA of queue wait in nanoseconds, stored as `f64` bits.
    ewma_wait_ns: AtomicU64,
    /// Total queue-wait samples, to detect idle ticks.
    samples: AtomicU64,
    /// Samples seen at the previous `evaluate` tick (supervisor-only).
    last_samples: AtomicU64,
    state: AtomicU8,
    forced: AtomicU8,
    calm_ticks: AtomicU32,
    transitions: AtomicU64,
    /// Nanoseconds since `started` of the last transition.
    state_since_ns: AtomicU64,
    started: Instant,
}

impl OverloadController {
    pub(crate) fn new(config: OverloadConfig) -> OverloadController {
        OverloadController {
            config,
            ewma_wait_ns: AtomicU64::new(0f64.to_bits()),
            samples: AtomicU64::new(0),
            last_samples: AtomicU64::new(0),
            state: AtomicU8::new(LoadState::Healthy.severity()),
            forced: AtomicU8::new(NO_FORCE),
            calm_ticks: AtomicU32::new(0),
            transitions: AtomicU64::new(0),
            state_since_ns: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    pub(crate) fn config(&self) -> &OverloadConfig {
        &self.config
    }

    /// Folds one dequeue's queue wait into the EWMA (lock-free CAS loop;
    /// the first sample seeds the average directly).
    pub(crate) fn observe_queue_wait(&self, nanos: u64) {
        let first = self.samples.fetch_add(1, Ordering::Relaxed) == 0;
        let alpha = self.config.ewma_alpha.clamp(0.01, 1.0);
        loop {
            let cur = self.ewma_wait_ns.load(Ordering::Relaxed);
            let cur_f = f64::from_bits(cur);
            let next = if first {
                nanos as f64
            } else {
                cur_f + alpha * (nanos as f64 - cur_f)
            };
            if self
                .ewma_wait_ns
                .compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
    }

    /// The EWMA queue wait in milliseconds.
    pub(crate) fn ewma_wait_ms(&self) -> f64 {
        f64::from_bits(self.ewma_wait_ns.load(Ordering::Relaxed)) / 1e6
    }

    /// The effective state (forced override wins).
    pub(crate) fn current(&self) -> LoadState {
        if let Some(s) = LoadState::from_severity(self.forced.load(Ordering::Relaxed)) {
            return s;
        }
        LoadState::from_severity(self.state.load(Ordering::Relaxed)).unwrap_or(LoadState::Healthy)
    }

    /// Whether the state is pinned by [`Self::force`].
    pub(crate) fn forced(&self) -> Option<LoadState> {
        LoadState::from_severity(self.forced.load(Ordering::Relaxed))
    }

    /// Pins (or with `None` releases) the state — for drills, benches, and
    /// the quality harness measuring the F1 cost of a degraded rung.
    pub(crate) fn force(&self, state: Option<LoadState>) {
        self.forced.store(
            state.map_or(NO_FORCE, LoadState::severity),
            Ordering::Relaxed,
        );
    }

    /// The matching fidelity for the current state.
    pub(crate) fn degraded_mode(&self) -> DegradedMatching {
        self.config.matching_for(self.current())
    }

    /// Shedding decision for one dequeued event; `None` = match it.
    pub(crate) fn shed_reason(
        &self,
        deadline: Option<Instant>,
        priority: u8,
        now: Instant,
    ) -> Option<ShedReason> {
        let state = self.current();
        if state < LoadState::Overloaded {
            return None;
        }
        if deadline.is_some_and(|d| now > d) {
            return Some(ShedReason::Deadline);
        }
        if state == LoadState::Critical && priority < self.config.shed_priority_floor {
            return Some(ShedReason::Load);
        }
        None
    }

    /// One supervisor tick: re-evaluates the state from the EWMA wait and
    /// the worst observed queue fill. Returns `Some((from, to))` on a
    /// transition. Single-caller (the supervisor thread); concurrent
    /// readers only ever see a consistent `state` byte.
    pub(crate) fn evaluate(&self, fill: f64) -> Option<(LoadState, LoadState)> {
        // Idle decay: when no event was dequeued since the last tick, the
        // EWMA would freeze at its storm-time value and the broker could
        // never recover — decay it as if a zero-wait sample had arrived.
        let samples = self.samples.load(Ordering::Relaxed);
        if samples == self.last_samples.swap(samples, Ordering::Relaxed) {
            let alpha = self.config.ewma_alpha.clamp(0.01, 1.0);
            loop {
                let cur = self.ewma_wait_ns.load(Ordering::Relaxed);
                let next = (f64::from_bits(cur) * (1.0 - alpha)).to_bits();
                if self
                    .ewma_wait_ns
                    .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    break;
                }
            }
        }

        let wait_ms = self.ewma_wait_ms();
        let current = LoadState::from_severity(self.state.load(Ordering::Relaxed))
            .unwrap_or(LoadState::Healthy);

        // The candidate is the worst state either signal justifies.
        let mut candidate = LoadState::Healthy;
        for state in [
            LoadState::Elevated,
            LoadState::Overloaded,
            LoadState::Critical,
        ] {
            let Some((enter_wait, enter_fill)) = self.config.enter_thresholds(state) else {
                continue;
            };
            if wait_ms >= enter_wait || fill >= enter_fill {
                candidate = state;
            }
        }

        if candidate > current {
            // Escalate immediately: overload reactions must not wait out a
            // calm-down counter.
            self.calm_ticks.store(0, Ordering::Relaxed);
            return Some(self.transition(current, candidate));
        }
        if current == LoadState::Healthy {
            return None;
        }
        // De-escalation: both signals must sit below the *exit* threshold
        // (enter × recovery_factor) of the current state for
        // `recovery_ticks` consecutive ticks, then step down one rung.
        let factor = self.config.recovery_factor.clamp(0.01, 1.0);
        let (enter_wait, enter_fill) = self
            .config
            .enter_thresholds(current)
            .expect("non-healthy states have thresholds");
        if wait_ms < enter_wait * factor && fill < enter_fill * factor {
            let calm = self.calm_ticks.fetch_add(1, Ordering::Relaxed) + 1;
            if calm >= self.config.recovery_ticks.max(1) {
                self.calm_ticks.store(0, Ordering::Relaxed);
                return Some(self.transition(current, current.step_down()));
            }
        } else {
            self.calm_ticks.store(0, Ordering::Relaxed);
        }
        None
    }

    fn transition(&self, from: LoadState, to: LoadState) -> (LoadState, LoadState) {
        self.state.store(to.severity(), Ordering::Relaxed);
        self.transitions.fetch_add(1, Ordering::Relaxed);
        self.state_since_ns
            .store(self.started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        (from, to)
    }

    /// Number of state transitions since start.
    pub(crate) fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Seconds the machine has sat in the current state.
    pub(crate) fn state_age_secs(&self) -> f64 {
        let since = self.state_since_ns.load(Ordering::Relaxed);
        (self.started.elapsed().as_nanos() as u64).saturating_sub(since) as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticked(c: &OverloadController, fill: f64, ticks: u32) -> Option<(LoadState, LoadState)> {
        let mut last = None;
        for _ in 0..ticks {
            // Keep the sample counter moving so idle decay stays out of
            // these hysteresis tests.
            c.observe_queue_wait(0);
            if let Some(t) = c.evaluate(fill) {
                last = Some(t);
            }
        }
        last
    }

    #[test]
    fn escalates_immediately_and_recovers_stepwise() {
        let c = OverloadController::new(OverloadConfig {
            ewma_alpha: 1.0, // each sample replaces the EWMA: exact control
            recovery_ticks: 3,
            ..OverloadConfig::default()
        });
        assert_eq!(c.current(), LoadState::Healthy);

        // One 60ms wait sample jumps straight to Critical — no rung-at-a-
        // time climb on the way up.
        c.observe_queue_wait(60_000_000);
        assert_eq!(
            c.evaluate(0.0),
            Some((LoadState::Healthy, LoadState::Critical))
        );
        assert_eq!(c.current(), LoadState::Critical);

        // Calm samples: no step-down before `recovery_ticks` consecutive
        // calm evaluations, then exactly one rung per window.
        c.observe_queue_wait(0);
        assert_eq!(c.evaluate(0.0), None);
        c.observe_queue_wait(0);
        assert_eq!(c.evaluate(0.0), None);
        c.observe_queue_wait(0);
        assert_eq!(
            c.evaluate(0.0),
            Some((LoadState::Critical, LoadState::Overloaded))
        );
        assert_eq!(
            ticked(&c, 0.0, 3),
            Some((LoadState::Overloaded, LoadState::Elevated))
        );
        assert_eq!(
            ticked(&c, 0.0, 3),
            Some((LoadState::Elevated, LoadState::Healthy))
        );
        assert_eq!(c.transitions(), 4);
    }

    #[test]
    fn hysteresis_band_blocks_flapping() {
        let c = OverloadController::new(OverloadConfig {
            ewma_alpha: 1.0,
            recovery_factor: 0.5,
            recovery_ticks: 2,
            ..OverloadConfig::default()
        });
        // 2.2ms enters Elevated (threshold 2.0).
        c.observe_queue_wait(2_200_000);
        assert!(c.evaluate(0.0).is_some());
        // 1.5ms is below the enter threshold but above the exit threshold
        // (1.0ms): the naive machine would flap, this one holds Elevated.
        for _ in 0..10 {
            c.observe_queue_wait(1_500_000);
            assert_eq!(c.evaluate(0.0), None);
        }
        assert_eq!(c.current(), LoadState::Elevated);
    }

    #[test]
    fn interrupted_calm_restarts_the_recovery_window() {
        let c = OverloadController::new(OverloadConfig {
            ewma_alpha: 1.0,
            recovery_ticks: 3,
            ..OverloadConfig::default()
        });
        c.observe_queue_wait(3_000_000);
        assert!(c.evaluate(0.0).is_some());
        // Two calm ticks, then a loud one: the counter must restart.
        ticked(&c, 0.0, 2);
        c.observe_queue_wait(1_900_000); // inside the hysteresis band
        assert_eq!(c.evaluate(0.0), None);
        assert_eq!(ticked(&c, 0.0, 2), None, "window restarted");
        assert_eq!(
            ticked(&c, 0.0, 1),
            Some((LoadState::Elevated, LoadState::Healthy))
        );
    }

    #[test]
    fn queue_fill_alone_escalates() {
        let c = OverloadController::new(OverloadConfig::default());
        c.observe_queue_wait(0);
        assert_eq!(
            c.evaluate(0.95),
            Some((LoadState::Healthy, LoadState::Critical))
        );
        assert_eq!(c.current(), LoadState::Critical);
    }

    #[test]
    fn idle_decay_recovers_without_traffic() {
        let c = OverloadController::new(OverloadConfig {
            ewma_alpha: 0.5,
            recovery_ticks: 1,
            ..OverloadConfig::default()
        });
        c.observe_queue_wait(100_000_000); // 100ms → Critical
        assert!(c.evaluate(0.0).is_some());
        // No further samples: decay alone must walk it back to Healthy.
        let mut ticks = 0;
        while c.current() != LoadState::Healthy {
            c.evaluate(0.0);
            ticks += 1;
            assert!(ticks < 1000, "idle decay must converge");
        }
    }

    #[test]
    fn forced_state_overrides_and_releases() {
        let c = OverloadController::new(OverloadConfig::default());
        c.force(Some(LoadState::Critical));
        assert_eq!(c.current(), LoadState::Critical);
        assert_eq!(c.forced(), Some(LoadState::Critical));
        assert_eq!(c.degraded_mode(), DegradedMatching::ExactOnly);
        // The organic machine keeps ticking underneath but the forced
        // state wins until released.
        c.observe_queue_wait(0);
        c.evaluate(0.0);
        assert_eq!(c.current(), LoadState::Critical);
        c.force(None);
        assert_eq!(c.current(), LoadState::Healthy);
    }

    #[test]
    fn shed_reasons_follow_state_and_config() {
        let c = OverloadController::new(OverloadConfig {
            shed_priority_floor: 10,
            ..OverloadConfig::default()
        });
        let now = Instant::now();
        let expired = Some(now - Duration::from_millis(1));
        let future = Some(now + Duration::from_secs(60));

        // Healthy/Elevated shed nothing, expired deadline or not.
        assert_eq!(c.shed_reason(expired, 0, now), None);
        c.force(Some(LoadState::Elevated));
        assert_eq!(c.shed_reason(expired, 0, now), None);

        // Overloaded sheds expired deadlines only.
        c.force(Some(LoadState::Overloaded));
        assert_eq!(c.shed_reason(expired, 0, now), Some(ShedReason::Deadline));
        assert_eq!(c.shed_reason(future, 0, now), None);
        assert_eq!(c.shed_reason(None, 0, now), None);

        // Critical also sheds below the priority floor.
        c.force(Some(LoadState::Critical));
        assert_eq!(c.shed_reason(None, 9, now), Some(ShedReason::Load));
        assert_eq!(c.shed_reason(None, 10, now), None);
        assert_eq!(c.shed_reason(expired, 200, now), Some(ShedReason::Deadline));
    }

    #[test]
    fn default_priority_floor_sheds_nothing_on_priority() {
        let c = OverloadController::new(OverloadConfig::default());
        c.force(Some(LoadState::Critical));
        assert_eq!(c.shed_reason(None, 0, Instant::now()), None);
    }

    #[test]
    fn breaker_full_lifecycle() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            open_backoff_ms: 100,
            max_backoff_ms: 1_000,
            half_open_probes: 2,
            reap_after_cycles: 3,
            jitter_seed: 7,
        };
        let mut b = BreakerState::new(42);
        let t0 = Instant::now();

        // Closed: failures below the threshold keep it closed.
        assert!(b.allow(&cfg, t0));
        assert_eq!(b.on_failure(&cfg, t0), BreakerVerdict::Counted);
        assert_eq!(b.on_failure(&cfg, t0), BreakerVerdict::Counted);
        assert!(!b.is_open());
        // A success resets the streak.
        b.on_success();
        assert_eq!(b.on_failure(&cfg, t0), BreakerVerdict::Counted);
        assert_eq!(b.on_failure(&cfg, t0), BreakerVerdict::Counted);
        assert_eq!(b.on_failure(&cfg, t0), BreakerVerdict::Tripped);
        assert!(b.is_open());

        // Open: deliveries are gated off until the backoff expires.
        assert!(!b.allow(&cfg, t0 + Duration::from_millis(1)));
        // Backoff is base 100ms + jitter ≤ 25ms: by 130ms it is Half-Open.
        let probe_time = t0 + Duration::from_millis(130);
        assert!(b.allow(&cfg, probe_time));
        assert!(!b.is_open());

        // Half-Open: two successful probes close it.
        b.on_success();
        assert!(b.allow(&cfg, probe_time));
        b.on_success();
        assert_eq!(b.phase, BreakerPhase::Closed);
    }

    #[test]
    fn breaker_reprobes_with_doubled_backoff_then_reaps() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            open_backoff_ms: 10,
            max_backoff_ms: 10_000,
            half_open_probes: 1,
            reap_after_cycles: 3,
            jitter_seed: 7,
        };
        let mut b = BreakerState::new(9);
        let mut now = Instant::now();

        // Cycle 0.
        assert_eq!(b.on_failure(&cfg, now), BreakerVerdict::Tripped);
        let mut backoffs = Vec::new();
        for expected_cycle in 1..3u32 {
            // Wait out the window (backoff + max jitter), probe, fail.
            let window = 10u64 << (expected_cycle - 1);
            now += Duration::from_millis(window + window / 4 + 1);
            assert!(b.allow(&cfg, now), "cycle {expected_cycle} should probe");
            assert_eq!(b.on_failure(&cfg, now), BreakerVerdict::Tripped);
            let BreakerPhase::Open { until, cycles } = b.phase else {
                panic!("must be open");
            };
            assert_eq!(cycles, expected_cycle);
            backoffs.push(until - now);
        }
        assert!(backoffs[1] > backoffs[0], "backoff must grow: {backoffs:?}");
        // Final cycle: the next half-open failure reaps.
        now += Duration::from_millis(10_000);
        assert!(b.allow(&cfg, now));
        assert_eq!(b.on_failure(&cfg, now), BreakerVerdict::Reap);
    }

    #[test]
    fn breaker_backoff_caps_at_max() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            open_backoff_ms: 100,
            max_backoff_ms: 150,
            half_open_probes: 1,
            reap_after_cycles: 100,
            jitter_seed: 1,
        };
        let mut b = BreakerState::new(1);
        let mut now = Instant::now();
        b.on_failure(&cfg, now);
        for _ in 0..5 {
            now += Duration::from_secs(1);
            assert!(b.allow(&cfg, now));
            b.on_failure(&cfg, now);
            let BreakerPhase::Open { until, .. } = b.phase else {
                panic!("open");
            };
            // max 150ms + 25% jitter headroom
            assert!(until - now <= Duration::from_millis(188));
        }
    }

    #[test]
    fn jitter_is_deterministic_and_seed_dependent() {
        let now = Instant::now();
        let trip_until = |seed: u64, key: u64| {
            let cfg = BreakerConfig {
                failure_threshold: 1,
                jitter_seed: seed,
                ..BreakerConfig::default()
            };
            let mut b = BreakerState::new(key);
            b.on_failure(&cfg, now);
            match b.phase {
                BreakerPhase::Open { until, .. } => until,
                _ => panic!("open"),
            }
        };
        assert_eq!(trip_until(1, 5), trip_until(1, 5), "same seed: same jitter");
        // Different keys under one seed should usually differ (that's the
        // point of per-subscriber jitter); these particular inputs do.
        assert_ne!(trip_until(1, 5), trip_until(1, 6));
    }

    #[test]
    fn load_state_labels_and_severity_round_trip() {
        for (i, s) in LoadState::ALL.into_iter().enumerate() {
            assert_eq!(s.severity() as usize, i);
            assert_eq!(LoadState::from_severity(s.severity()), Some(s));
        }
        assert_eq!(LoadState::from_severity(4), None);
        assert_eq!(LoadState::Critical.as_str(), "critical");
        assert_eq!(LoadState::Critical.step_down(), LoadState::Overloaded);
        assert_eq!(LoadState::Healthy.step_down(), LoadState::Healthy);
    }
}
