//! The shadow quality evaluator: live precision/recall/F1 estimation.
//!
//! The paper's headline claim is a quality/throughput tradeoff, yet a
//! running broker normally has no quality signal at all — it knows how
//! *fast* it matches, not how *well*. This module closes that gap with
//! deterministic 1-in-k shadow sampling: every k-th subscription × event
//! match test (selected by a hash of the sequence number and the
//! subscription id, so the sample is unbiased across rounds and thread
//! interleavings) is replayed against a [`QualityOracle`] that knows the
//! ground truth. The broker's own decision — delivered or not at the
//! configured threshold — is scored as a true/false positive/negative,
//! and rolling precision/recall/F1 estimates with Wilson confidence
//! bounds are available from [`crate::Broker::quality`] and the
//! `/quality` scrape endpoint.
//!
//! A bounded buffer of the most recent samples additionally powers
//! **drift alerts**: when the recent half of the buffer disagrees with
//! the older half on F1, mean match score, or semantic-cache hit rate
//! beyond fixed thresholds, the report carries a [`DriftAlert`] — the
//! operator's cue that matching quality moved even while cumulative
//! averages still look healthy.
//!
//! Cost model: unsampled tests pay one `OnceLock` load, one hash, and
//! one modulo; with sampling disabled entirely (no oracle installed)
//! the hot path pays a single branch.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tep_events::{Event, Subscription};

/// Ground truth for shadow quality sampling.
///
/// `judge` returns whether `event` is truly relevant to `subscription`,
/// or `None` when the oracle cannot say (unknown pairs are counted but
/// excluded from precision/recall). Implementations live outside the
/// broker — `tep-eval` builds one from its generated workloads — so the
/// broker stays free of dataset dependencies.
pub trait QualityOracle: Send + Sync {
    /// Whether `event` is relevant to `subscription`, if known.
    fn judge(&self, subscription: &Subscription, event: &Event) -> Option<bool>;
}

impl fmt::Debug for dyn QualityOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QualityOracle").finish_non_exhaustive()
    }
}

/// Most recent samples retained for drift detection.
const SAMPLE_BUFFER: usize = 1024;
/// Minimum samples per buffer half before drift is evaluated.
const DRIFT_MIN_HALF: usize = 32;
/// Absolute F1 shift between buffer halves that raises an alert.
const DRIFT_F1_THRESHOLD: f64 = 0.15;
/// Absolute mean-score shift between buffer halves that raises an alert.
const DRIFT_SCORE_THRESHOLD: f64 = 0.15;
/// Absolute cache-hit-rate shift between buffer halves that raises one.
const DRIFT_CACHE_THRESHOLD: f64 = 0.25;

/// One judged shadow sample.
#[derive(Debug, Clone, Copy)]
struct Sample {
    /// The broker's decision at the delivery threshold.
    predicted: bool,
    /// The oracle's verdict (`None` = unknown pair).
    actual: Option<bool>,
    /// The match score the broker computed.
    score: f64,
    /// Semantic-cache hit rate at sample time.
    cache_hit_rate: f64,
}

/// Shared state of the shadow evaluator, installed by
/// [`crate::Broker::with_quality_sampling`].
pub(crate) struct QualityState {
    every: u64,
    oracle: Box<dyn QualityOracle>,
    true_positives: AtomicU64,
    false_positives: AtomicU64,
    false_negatives: AtomicU64,
    true_negatives: AtomicU64,
    unknown: AtomicU64,
    samples: Mutex<VecDeque<Sample>>,
}

impl fmt::Debug for QualityState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QualityState")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// splitmix64 finalizer: decorrelates `(seq, subscription)` pairs so
/// `% every` samples uniformly even when the per-round pair count
/// divides `every` (a plain `seq % k` would test the *same* pairs every
/// round on a cyclic workload).
pub(crate) fn mix(seq: u64, subscription: u64) -> u64 {
    let mut z = seq
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(subscription);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl QualityState {
    pub(crate) fn new(every: u64, oracle: Box<dyn QualityOracle>) -> QualityState {
        QualityState {
            every: every.max(1),
            oracle,
            true_positives: AtomicU64::new(0),
            false_positives: AtomicU64::new(0),
            false_negatives: AtomicU64::new(0),
            true_negatives: AtomicU64::new(0),
            unknown: AtomicU64::new(0),
            samples: Mutex::new(VecDeque::new()),
        }
    }

    /// Deterministic 1-in-`every` sampling decision for one match test.
    pub(crate) fn should_sample(&self, seq: u64, subscription: u64) -> bool {
        mix(seq, subscription).is_multiple_of(self.every)
    }

    /// Judges one sampled test against the oracle and folds it into the
    /// rolling state. `predicted` is the broker's delivery decision.
    pub(crate) fn record(
        &self,
        subscription: &Subscription,
        event: &Event,
        predicted: bool,
        score: f64,
        cache_hit_rate: f64,
    ) {
        let actual = self.oracle.judge(subscription, event);
        let counter = match (predicted, actual) {
            (_, None) => &self.unknown,
            (true, Some(true)) => &self.true_positives,
            (true, Some(false)) => &self.false_positives,
            (false, Some(true)) => &self.false_negatives,
            (false, Some(false)) => &self.true_negatives,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let mut samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        if samples.len() == SAMPLE_BUFFER {
            samples.pop_front();
        }
        samples.push_back(Sample {
            predicted,
            actual,
            score,
            cache_hit_rate,
        });
    }

    /// The current rolling quality report.
    pub(crate) fn report(&self) -> QualityReport {
        let tp = self.true_positives.load(Ordering::Relaxed);
        let fp = self.false_positives.load(Ordering::Relaxed);
        let fn_ = self.false_negatives.load(Ordering::Relaxed);
        let tn = self.true_negatives.load(Ordering::Relaxed);
        let unknown = self.unknown.load(Ordering::Relaxed);
        let precision = ratio(tp, tp + fp);
        let recall = ratio(tp, tp + fn_);
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        // F1 is estimated over every sample that enters it (tp+fp+fn);
        // the normal-approximation interval on that effective count is
        // the agreement band the bench gate uses against offline F1.
        let f1_n = tp + fp + fn_;
        let f1_ci = if f1_n == 0 {
            (0.0, 1.0)
        } else {
            let half = 1.96 * (f1 * (1.0 - f1) / f1_n as f64).sqrt();
            ((f1 - half).max(0.0), (f1 + half).min(1.0))
        };
        let drift = self.drift_alerts();
        QualityReport {
            sample_every: self.every,
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            true_negatives: tn,
            unknown,
            precision,
            precision_ci: wilson(tp, tp + fp),
            recall,
            recall_ci: wilson(tp, tp + fn_),
            f1,
            f1_ci,
            drift,
        }
    }

    /// Compares the recent half of the sample buffer against the older
    /// half on F1, mean score, and cache hit rate.
    fn drift_alerts(&self) -> Vec<DriftAlert> {
        let samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        let half = samples.len() / 2;
        if half < DRIFT_MIN_HALF {
            return Vec::new();
        }
        let older: Vec<Sample> = samples.iter().take(half).copied().collect();
        let recent: Vec<Sample> = samples.iter().skip(half).copied().collect();
        drop(samples);
        let mut alerts = Vec::new();
        let checks = [
            (
                DriftKind::F1,
                window_f1(&older),
                window_f1(&recent),
                DRIFT_F1_THRESHOLD,
            ),
            (
                DriftKind::MeanScore,
                mean(older.iter().map(|s| s.score)),
                mean(recent.iter().map(|s| s.score)),
                DRIFT_SCORE_THRESHOLD,
            ),
            (
                DriftKind::CacheHitRate,
                mean(older.iter().map(|s| s.cache_hit_rate)),
                mean(recent.iter().map(|s| s.cache_hit_rate)),
                DRIFT_CACHE_THRESHOLD,
            ),
        ];
        for (kind, older_value, recent_value, threshold) in checks {
            if (recent_value - older_value).abs() > threshold {
                alerts.push(DriftAlert {
                    kind,
                    older: older_value,
                    recent: recent_value,
                });
            }
        }
        alerts
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// F1 over one buffer half, unknown-verdict samples excluded.
fn window_f1(samples: &[Sample]) -> f64 {
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    for s in samples {
        match (s.predicted, s.actual) {
            (true, Some(true)) => tp += 1,
            (true, Some(false)) => fp += 1,
            (false, Some(true)) => fn_ += 1,
            _ => {}
        }
    }
    let p = ratio(tp, tp + fp);
    let r = ratio(tp, tp + fn_);
    if p + r > 0.0 {
        2.0 * p * r / (p + r)
    } else {
        0.0
    }
}

/// The 95% Wilson score interval for `successes / total` — well-behaved
/// at small counts and at proportions near 0 or 1, unlike the naive
/// normal interval.
fn wilson(successes: u64, total: u64) -> (f64, f64) {
    if total == 0 {
        return (0.0, 1.0);
    }
    let n = total as f64;
    let p = successes as f64 / n;
    let z = 1.96f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Which rolling statistic shifted beyond its drift threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// F1 over the recent samples moved against the older ones.
    F1,
    /// The mean match score shifted (score-distribution drift).
    MeanScore,
    /// The semantic-cache hit rate shifted (working-set drift).
    CacheHitRate,
}

impl DriftKind {
    /// Stable lowercase name for JSON/labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            DriftKind::F1 => "f1",
            DriftKind::MeanScore => "mean_score",
            DriftKind::CacheHitRate => "cache_hit_rate",
        }
    }
}

/// One detected shift between the older and recent halves of the
/// rolling sample buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAlert {
    /// The statistic that shifted.
    pub kind: DriftKind,
    /// Its value over the older half.
    pub older: f64,
    /// Its value over the recent half.
    pub recent: f64,
}

/// A point-in-time report from the shadow quality evaluator
/// ([`crate::Broker::quality`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// The configured 1-in-k sampling rate.
    pub sample_every: u64,
    /// Delivered and truly relevant.
    pub true_positives: u64,
    /// Delivered but not relevant.
    pub false_positives: u64,
    /// Relevant but not delivered.
    pub false_negatives: u64,
    /// Correctly not delivered.
    pub true_negatives: u64,
    /// Sampled pairs the oracle could not judge.
    pub unknown: u64,
    /// tp / (tp + fp); 0 when undefined.
    pub precision: f64,
    /// 95% Wilson interval for the precision.
    pub precision_ci: (f64, f64),
    /// tp / (tp + fn); 0 when undefined.
    pub recall: f64,
    /// 95% Wilson interval for the recall.
    pub recall_ci: (f64, f64),
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// 95% normal-approximation interval for the F1 estimate over its
    /// effective sample count (tp + fp + fn).
    pub f1_ci: (f64, f64),
    /// Rolling drift alerts; empty when quality is stable (or there are
    /// not yet enough samples to compare halves).
    pub drift: Vec<DriftAlert>,
}

impl QualityReport {
    /// Total judged samples (unknown excluded).
    pub fn judged(&self) -> u64 {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// Half-width of the F1 confidence interval.
    pub fn f1_ci_half_width(&self) -> f64 {
        (self.f1_ci.1 - self.f1_ci.0) / 2.0
    }
}

/// Renders a [`QualityReport`] as the `/quality` JSON document.
pub fn render_quality_json(report: &QualityReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"sample_every\": {},", report.sample_every);
    let _ = writeln!(out, "  \"true_positives\": {},", report.true_positives);
    let _ = writeln!(out, "  \"false_positives\": {},", report.false_positives);
    let _ = writeln!(out, "  \"false_negatives\": {},", report.false_negatives);
    let _ = writeln!(out, "  \"true_negatives\": {},", report.true_negatives);
    let _ = writeln!(out, "  \"unknown\": {},", report.unknown);
    let _ = writeln!(out, "  \"judged\": {},", report.judged());
    let _ = writeln!(out, "  \"precision\": {:.6},", report.precision);
    let _ = writeln!(
        out,
        "  \"precision_ci\": [{:.6}, {:.6}],",
        report.precision_ci.0, report.precision_ci.1
    );
    let _ = writeln!(out, "  \"recall\": {:.6},", report.recall);
    let _ = writeln!(
        out,
        "  \"recall_ci\": [{:.6}, {:.6}],",
        report.recall_ci.0, report.recall_ci.1
    );
    let _ = writeln!(out, "  \"f1\": {:.6},", report.f1);
    let _ = writeln!(
        out,
        "  \"f1_ci\": [{:.6}, {:.6}],",
        report.f1_ci.0, report.f1_ci.1
    );
    out.push_str("  \"drift\": [");
    for (i, alert) in report.drift.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"kind\": \"{}\", \"older\": {:.6}, \"recent\": {:.6}}}",
            alert.kind.as_str(),
            alert.older,
            alert.recent
        );
    }
    if !report.drift.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_events::{parse_event, parse_subscription};

    /// An oracle driven by a fixed answer.
    struct FixedOracle(Option<bool>);

    impl QualityOracle for FixedOracle {
        fn judge(&self, _s: &Subscription, _e: &Event) -> Option<bool> {
            self.0
        }
    }

    fn sub() -> Subscription {
        parse_subscription("{a= 1}").unwrap()
    }

    fn event() -> Event {
        parse_event("{a: 1}").unwrap()
    }

    #[test]
    fn sampling_is_deterministic_and_close_to_rate() {
        let q = QualityState::new(100, Box::new(FixedOracle(Some(true))));
        let first: Vec<bool> = (0..10_000).map(|seq| q.should_sample(seq, 3)).collect();
        let second: Vec<bool> = (0..10_000).map(|seq| q.should_sample(seq, 3)).collect();
        assert_eq!(first, second, "sampling must be deterministic");
        let hits = first.iter().filter(|s| **s).count();
        assert!(
            (50..=200).contains(&hits),
            "1-in-100 over 10k draws should land near 100, got {hits}"
        );
        // Different subscriptions sample different sequences.
        let other_hits = (0..10_000u64).filter(|s| q.should_sample(*s, 4)).count();
        assert!(other_hits > 0);
        let overlap = (0..10_000u64)
            .filter(|s| q.should_sample(*s, 3) && q.should_sample(*s, 4))
            .count();
        assert!(overlap < hits, "subscriptions must not sample in lockstep");
    }

    #[test]
    fn confusion_counts_and_f1() {
        let state = QualityState::new(1, Box::new(FixedOracle(Some(true))));
        // 3 true positives, 1 false negative against an always-true oracle.
        for predicted in [true, true, true, false] {
            state.record(&sub(), &event(), predicted, 0.8, 0.5);
        }
        let r = state.report();
        assert_eq!(r.true_positives, 3);
        assert_eq!(r.false_negatives, 1);
        assert_eq!(r.judged(), 4);
        assert!((r.precision - 1.0).abs() < 1e-12);
        assert!((r.recall - 0.75).abs() < 1e-12);
        let expected_f1 = 2.0 * 1.0 * 0.75 / 1.75;
        assert!((r.f1 - expected_f1).abs() < 1e-12);
        assert!(r.precision_ci.0 <= r.precision && r.precision <= r.precision_ci.1);
        assert!(r.recall_ci.0 <= r.recall && r.recall <= r.recall_ci.1);
        assert!(r.f1_ci.0 <= r.f1 && r.f1 <= r.f1_ci.1);
        assert!(
            r.f1_ci_half_width() > 0.0,
            "4 samples leave real uncertainty"
        );
    }

    #[test]
    fn unknown_pairs_are_counted_but_excluded() {
        let state = QualityState::new(1, Box::new(FixedOracle(None)));
        state.record(&sub(), &event(), true, 0.9, 0.0);
        let r = state.report();
        assert_eq!(r.unknown, 1);
        assert_eq!(r.judged(), 0);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.f1_ci, (0.0, 1.0), "no information, no interval");
    }

    #[test]
    fn drift_alert_fires_on_a_score_shift() {
        let state = QualityState::new(1, Box::new(FixedOracle(Some(true))));
        // Older half: high scores; recent half: collapsed scores.
        for _ in 0..DRIFT_MIN_HALF * 2 {
            state.record(&sub(), &event(), true, 0.9, 0.8);
        }
        for _ in 0..DRIFT_MIN_HALF * 2 {
            state.record(&sub(), &event(), false, 0.1, 0.8);
        }
        let r = state.report();
        let kinds: Vec<DriftKind> = r.drift.iter().map(|a| a.kind).collect();
        assert!(
            kinds.contains(&DriftKind::MeanScore),
            "drift: {:?}",
            r.drift
        );
        assert!(
            kinds.contains(&DriftKind::F1),
            "recall collapse must alert on F1: {:?}",
            r.drift
        );
        assert!(!kinds.contains(&DriftKind::CacheHitRate));
    }

    #[test]
    fn stable_stream_raises_no_drift() {
        let state = QualityState::new(1, Box::new(FixedOracle(Some(true))));
        for _ in 0..DRIFT_MIN_HALF * 4 {
            state.record(&sub(), &event(), true, 0.8, 0.6);
        }
        assert!(state.report().drift.is_empty());
    }

    #[test]
    fn quality_json_is_balanced_and_complete() {
        let state = QualityState::new(7, Box::new(FixedOracle(Some(false))));
        state.record(&sub(), &event(), true, 0.5, 0.5);
        let json = render_quality_json(&state.report());
        for key in [
            "sample_every",
            "true_positives",
            "false_positives",
            "precision_ci",
            "recall_ci",
            "f1_ci",
            "drift",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        assert_eq!(
            json.matches(['{', '[']).count(),
            json.matches(['}', ']']).count()
        );
    }

    #[test]
    fn wilson_interval_sanity() {
        assert_eq!(wilson(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson(85, 100);
        assert!(lo > 0.75 && lo < 0.85, "lo {lo}");
        assert!(hi > 0.85 && hi < 0.95, "hi {hi}");
        let (lo, hi) = wilson(100, 100);
        assert!(
            lo > 0.94 && hi > 0.99 && hi <= 1.0,
            "extremes stay well-behaved: {lo} {hi}"
        );
    }
}
