//! # tep-broker
//!
//! A publish/subscribe **broker middleware** that runs a
//! [`tep_matcher::Matcher`] over a pool of worker threads — the
//! event-based middleware context the paper targets (§1: "there is a need
//! for middleware to abstract application developers from underlying
//! technologies").
//!
//! The broker preserves the classic decoupling dimensions (Fig. 1):
//!
//! * **space** — publishers never see subscribers; they only call
//!   [`Broker::publish`];
//! * **time/synchronization** — publishing is non-blocking; matching and
//!   delivery happen on worker threads and notifications arrive on
//!   per-subscriber channels;
//! * **semantics** — the loosened fourth dimension: with a thematic
//!   matcher plugged in, subscribers receive events whose vocabulary they
//!   never agreed on.
//!
//! ```
//! use std::sync::Arc;
//! use tep_broker::{Broker, BrokerConfig};
//! use tep_matcher::ExactMatcher;
//! use tep_events::{parse_event, parse_subscription};
//!
//! let broker = Broker::start(Arc::new(ExactMatcher::new()), BrokerConfig::default());
//! let (_id, rx) = broker.subscribe(parse_subscription("{device= computer}")?)?;
//! broker.publish(parse_event("{device: computer, office: room 112}")?)?;
//! broker.flush();
//! let n = rx.try_recv().expect("notification delivered");
//! assert_eq!(n.result.score(), 1.0);
//! broker.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod broker;
mod config;
mod notification;
mod stats;

pub use broker::{Broker, BrokerError, SubscriptionId};
pub use config::BrokerConfig;
pub use notification::Notification;
pub use stats::BrokerStats;
