//! # tep-broker
//!
//! A publish/subscribe **broker middleware** that runs a
//! [`tep_matcher::Matcher`] over a pool of worker threads — the
//! event-based middleware context the paper targets (§1: "there is a need
//! for middleware to abstract application developers from underlying
//! technologies").
//!
//! The broker preserves the classic decoupling dimensions (Fig. 1):
//!
//! * **space** — publishers never see subscribers; they only call
//!   [`Broker::publish`];
//! * **time/synchronization** — publishing is non-blocking; matching and
//!   delivery happen on worker threads and notifications arrive on
//!   per-subscriber channels;
//! * **semantics** — the loosened fourth dimension: with a thematic
//!   matcher plugged in, subscribers receive events whose vocabulary they
//!   never agreed on.
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use tep_broker::{Broker, BrokerConfig};
//! use tep_matcher::ExactMatcher;
//! use tep_events::{parse_event, parse_subscription};
//!
//! let broker = Broker::start(Arc::new(ExactMatcher::new()), BrokerConfig::default());
//! let (_id, rx) = broker.subscribe(parse_subscription("{device= computer}")?)?;
//! broker.publish(parse_event("{device: computer, office: room 112}")?)?;
//! broker.flush_timeout(Duration::from_secs(30))?;
//! let n = rx.try_recv().expect("notification delivered");
//! assert_eq!(n.result.score(), 1.0);
//! broker.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Failure model
//!
//! The worker pool is **supervised** (see `DESIGN.md` at the repo root
//! for the full rationale):
//!
//! * matcher panics are caught per subscription × event match test
//!   ([`BrokerConfig::isolate_matcher_panics`], on by default), so one
//!   poisonous event cannot take down a worker or starve other
//!   subscriptions;
//! * events whose match tests keep panicking past
//!   [`BrokerConfig::max_match_attempts`] are quarantined into a bounded
//!   dead-letter queue ([`Broker::dead_letters`]);
//! * with isolation off, a panic kills the worker and the supervisor
//!   respawns it, recovering the in-flight event (at-least-once);
//! * ingress overload is governed by [`PublishPolicy`]
//!   (block / timeout / reject) and subscriber overload by
//!   [`SubscriberPolicy`] (drop-newest / drop-oldest / disconnect);
//! * with [`BrokerConfig::with_overload_control`], an adaptive load-state
//!   machine ([`LoadState`]) additionally sheds expired-deadline or
//!   low-priority events at dequeue, degrades matching fidelity
//!   ([`DegradedMatching`]), and wraps each subscriber in a circuit
//!   breaker ([`BreakerConfig`]) instead of a hard disconnect cliff;
//! * [`Broker::flush_timeout`] bounds how long a caller waits on the
//!   liveness invariant: every accepted event is eventually counted in
//!   [`BrokerStats::processed`] — delivered, dropped, or quarantined.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod broker;
mod config;
mod explain;
mod notification;
mod overload;
mod quality;
mod stats;
mod subindex;
mod supervisor;

pub use broker::{
    Broker, BrokerError, CostReport, PublishOptions, SubscribeOptions, SubscriptionId,
    DEFAULT_COST_SAMPLE_EVERY,
};
pub use config::{BrokerConfig, PublishPolicy, RecorderSettings, RoutingPolicy, SubscriberPolicy};
pub use explain::{render_explanations_json, CacheTemperature, MatchExplanation, MatchOutcome};
pub use notification::Notification;
pub use overload::{BreakerConfig, LoadState, OverloadConfig, ShedReason};
pub use quality::{render_quality_json, DriftAlert, DriftKind, QualityOracle, QualityReport};
pub use stats::{BrokerStats, EventTrace, StageLatencies};
pub use supervisor::DeadLetter;
// Re-exported so downstream code can consume [`Broker::metrics`],
// [`Broker::stage_latencies`], [`Broker::span_tree`], and the scrape
// server without depending on `tep-obs` or `tep-matcher` directly.
pub use tep_matcher::{DegradedMatching, MatchDetail, PredicateExplanation, RelatednessDetail};
pub use tep_obs::{
    render_spans_json, serve, span_tree, CostEntry, DiagnosticFrame, FlightRecorder,
    HistogramSnapshot, MetricsRegistry, RecorderConfig, ScrapeHandlers, ScrapeServer, SpanNode,
    SpanRecord, StageStat, WindowedDelta,
};
