//! The plain (non-thematic) distributional vector space of §3.1.

use crate::intern::{intern_term, resolve_term, TermId};
use crate::shard::{CacheStats, ShardedCache};
use crate::sparse::SparseVector;
use std::sync::Arc;
use tep_index::{InvertedIndex, Tokenizer};

/// Bound on memoized normalized term vectors.
const TERM_CACHE_CAPACITY: usize = 1 << 16;

/// The ESA-style distributional vector space (paper §3.1, Fig. 5 steps
/// 1–2): each word is a TF/IDF-weighted vector of documents, a multi-word
/// term is the sum of its word vectors, and relatedness between terms is
/// `1 / (1 + euclidean_distance)` (Eqs. 5–6).
///
/// This type alone implements the *non-thematic approximate* approach the
/// paper baselines against (its prior work \[16\]); the thematic extension
/// lives in [`crate::ParametricVectorSpace`].
#[derive(Debug, Clone)]
pub struct DistributionalSpace {
    index: Arc<InvertedIndex>,
    tokenizer: Tokenizer,
    /// Memoized unit-norm term vectors, keyed by interned [`TermId`] so a
    /// warm probe allocates nothing; shared across clones so the PVSM and
    /// the non-thematic measure reuse one table.
    normalized_cache: Arc<ShardedCache<TermId, Arc<SparseVector>>>,
}

impl DistributionalSpace {
    /// Wraps a built inverted index.
    pub fn new(index: InvertedIndex) -> DistributionalSpace {
        DistributionalSpace {
            index: Arc::new(index),
            tokenizer: Tokenizer::default(),
            normalized_cache: Arc::new(ShardedCache::new(16, TERM_CACHE_CAPACITY)),
        }
    }

    /// Wraps a shared inverted index with a custom query tokenizer.
    pub fn with_tokenizer(index: Arc<InvertedIndex>, tokenizer: Tokenizer) -> DistributionalSpace {
        DistributionalSpace {
            index,
            tokenizer,
            normalized_cache: Arc::new(ShardedCache::new(16, TERM_CACHE_CAPACITY)),
        }
    }

    /// The underlying inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Shared handle to the underlying index.
    pub fn index_arc(&self) -> Arc<InvertedIndex> {
        Arc::clone(&self.index)
    }

    /// The full-space vector of a single word (empty if unindexed).
    pub fn word_vector(&self, word: &str) -> SparseVector {
        match self.index.word_id(word) {
            None => SparseVector::zero(),
            Some(wid) => SparseVector::from_sorted(
                self.index
                    .postings(wid)
                    .iter()
                    .map(|p| (p.doc, p.weight))
                    .collect(),
            ),
        }
    }

    /// The full-space vector of a (possibly multi-word) term: the sum of
    /// its word vectors. Unknown words contribute nothing; a term with no
    /// indexed word yields the zero vector.
    pub fn term_vector(&self, term: &str) -> SparseVector {
        let mut acc = SparseVector::zero();
        for word in self.tokenizer.tokenize(term) {
            let wv = self.word_vector(&word);
            if !wv.is_zero() {
                acc = acc.add(&wv);
            }
        }
        acc
    }

    /// Non-thematic semantic relatedness between two terms: Eq. 6 over
    /// **unit-normalized** term vectors.
    ///
    /// Normalization makes the measure rank by vector overlap rather than
    /// magnitude (see [`crate::ParametricVectorSpace::relatedness`]).
    /// Equal terms score `1.0`; a term with a zero vector (unknown to the
    /// corpus) scores `0.0` against any distinct term.
    pub fn relatedness(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let va = self.term_vector_normalized(a);
        let vb = self.term_vector_normalized(b);
        if va.is_zero() || vb.is_zero() {
            return 0.0;
        }
        relatedness_from_distance(va.euclidean_distance(&vb))
    }

    /// The memoized unit-norm vector of `term` (zero stays zero). This is
    /// the hot path of the non-thematic measure; the memo table is shared
    /// by clones of this space.
    pub fn term_vector_normalized(&self, term: &str) -> Arc<SparseVector> {
        let id = intern_term(term);
        self.normalized_cache
            .get_or_insert_with(&id, || Arc::new(self.term_vector(term).normalized()))
    }

    /// Interned-key variant of [`Self::term_vector_normalized`].
    pub fn term_vector_normalized_id(&self, term: TermId) -> Arc<SparseVector> {
        self.normalized_cache.get_or_insert_with(&term, || {
            Arc::new(self.term_vector(&resolve_term(term)).normalized())
        })
    }

    /// Precomputes and pins the normalized vector of `term` so cache
    /// rotation never evicts it; pins are refcounted — release with
    /// [`Self::unpin_term`].
    pub fn pin_term(&self, term: &str) -> TermId {
        let id = intern_term(term);
        self.normalized_cache
            .pin_with(&id, || Arc::new(self.term_vector(term).normalized()));
        id
    }

    /// Releases one [`Self::pin_term`] pin.
    pub fn unpin_term(&self, term: &str) {
        self.normalized_cache.unpin(&intern_term(term));
    }

    /// Hit / miss / eviction counters for the term-vector cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.normalized_cache.stats()
    }

    /// The term-vector cache's miss counter alone (one relaxed atomic
    /// load; no shard locks).
    pub fn miss_count(&self) -> u64 {
        self.normalized_cache.miss_count()
    }

    /// The query tokenizer.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }
}

/// Eq. 6: `relatedness = 1 / (distance + 1)`.
pub(crate) fn relatedness_from_distance(distance: f64) -> f64 {
    1.0 / (distance + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_corpus::{Corpus, CorpusConfig};

    fn space() -> DistributionalSpace {
        let corpus = Corpus::generate(&CorpusConfig::small());
        DistributionalSpace::new(InvertedIndex::build(&corpus))
    }

    #[test]
    fn word_vector_support_is_document_frequency() {
        let s = space();
        let wid = s.index().word_id("energy").unwrap();
        assert_eq!(
            s.word_vector("energy").nnz(),
            s.index().document_frequency(wid)
        );
    }

    #[test]
    fn unknown_word_is_zero_vector() {
        let s = space();
        assert!(s.word_vector("zzzzunknown").is_zero());
        assert!(s.term_vector("zzzz yyyy").is_zero());
    }

    #[test]
    fn term_vector_sums_word_vectors() {
        let s = space();
        let combined = s.term_vector("energy consumption");
        let manual = s.word_vector("energy").add(&s.word_vector("consumption"));
        assert_eq!(combined, manual);
    }

    #[test]
    fn identical_terms_have_relatedness_one() {
        let s = space();
        assert!((s.relatedness("parking", "parking") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synonyms_beat_cross_domain_terms() {
        let s = space();
        // 'energy consumption' / 'electricity usage' are synonyms in the
        // generator's thesaurus; 'zebra crossing' is transport.
        let syn = s.relatedness("energy consumption", "electricity usage");
        let far = s.relatedness("energy consumption", "zebra crossing");
        assert!(
            syn > far,
            "expected synonym relatedness {syn} > cross-domain {far}"
        );
    }

    #[test]
    fn relatedness_is_symmetric_and_bounded() {
        let s = space();
        let ab = s.relatedness("parking", "garage");
        let ba = s.relatedness("garage", "parking");
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab <= 1.0);
    }

    #[test]
    fn eq6_shape() {
        assert_eq!(relatedness_from_distance(0.0), 1.0);
        assert!(relatedness_from_distance(1.0) == 0.5);
        assert!(relatedness_from_distance(99.0) < 0.02);
    }
}
