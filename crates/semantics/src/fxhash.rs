//! A minimal Fx-style multiply-xor hasher for the interner and memo caches.
//!
//! The warm matching path performs several hash-map probes per relatedness
//! call (term-id lookups, theme-id lookups, memo-cache probes). With the
//! standard library's default SipHash those probes dominate the cost of a
//! cache *hit*: SipHash is keyed and DoS-resistant, but an order of
//! magnitude slower than a multiply-based mix on the short fixed-width
//! keys used here (`u32`/`u64` ids, small tuples, interned strings).
//!
//! [`FxHasher`] is the word-at-a-time multiply-xor scheme used by rustc's
//! `FxHashMap`: `state = (state.rotate_left(5) ^ word) * K` with a single
//! odd 64-bit constant. It is **not** collision-resistant against
//! adversarial keys; it is used only for process-internal tables whose keys
//! are interner-assigned dense ids or already-filtered vocabulary terms,
//! where worst-case flooding is bounded by the corpus size.

use std::hash::{BuildHasher, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher (rustc's Fx scheme).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.mix(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.mix(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so the low bits (used for both shard selection
        // and HashMap bucket indexing) depend on every input word.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

/// `BuildHasher` producing [`FxHasher`]s; drop-in replacement for
/// `RandomState` on internal tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Convenience: hash a single value to completion.
#[inline]
pub fn fx_hash64<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(fx_hash64(&42u64), fx_hash64(&42u64));
        assert_eq!(fx_hash64(&"thematic"), fx_hash64(&"thematic"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Dense interner ids are sequential; the avalanche must spread
        // them across shards (low bits) rather than mapping id -> shard id.
        let shards = 16u64;
        let mut seen = std::collections::HashSet::new();
        for id in 0u32..64 {
            seen.insert(fx_hash64(&id) % shards);
        }
        assert!(seen.len() > 8, "low bits too regular: {seen:?}");
    }

    #[test]
    fn byte_stream_matches_wordwise_padding_rules() {
        // Different-length prefixes must not collide trivially.
        let a = fx_hash64(&[1u8, 2, 3]);
        let b = fx_hash64(&[1u8, 2, 3, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn tuple_keys_hash_consistently() {
        let k = (7u32, 9u32, 7u32, 9u32);
        assert_eq!(fx_hash64(&k), fx_hash64(&k));
        assert_ne!(fx_hash64(&(1u32, 2u32)), fx_hash64(&(2u32, 1u32)));
    }
}
