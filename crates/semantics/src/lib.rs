//! # tep-semantics
//!
//! The distributional-semantics layer of thematic event processing:
//!
//! * [`SparseVector`] — sorted sparse document vectors with merge-based
//!   arithmetic;
//! * [`DistributionalSpace`] — the plain (non-thematic) ESA vector space of
//!   paper §3.1: a term is the TF/IDF-weighted vector of the documents it
//!   occurs in, and relatedness is `1 / (1 + euclidean_distance)`
//!   (Eqs. 5–6);
//! * [`Theme`] — a normalized set of theme tags;
//! * [`ParametricVectorSpace`] — the paper's §4 contribution: before
//!   distances are measured, term vectors are **projected** onto the
//!   sub-basis of documents selected by a theme (Algorithm 1), with idf
//!   recomputed over that sub-basis;
//! * [`SemanticMeasure`] — the `sm : T × 2^TH × T × 2^TH → [0,1]` function
//!   abstraction, with thematic, non-thematic, cached and precomputed
//!   implementations.
//!
//! ```
//! use tep_corpus::{Corpus, CorpusConfig};
//! use tep_index::InvertedIndex;
//! use tep_semantics::{DistributionalSpace, ParametricVectorSpace, SemanticMeasure, Theme};
//!
//! let corpus = Corpus::generate(&CorpusConfig::small());
//! let space = DistributionalSpace::new(InvertedIndex::build(&corpus));
//! let pvsm = ParametricVectorSpace::new(space);
//!
//! let energy = Theme::new(["energy policy"]);
//! let sim = pvsm.relatedness("energy consumption", &energy, "electricity usage", &energy);
//! let dif = pvsm.relatedness("energy consumption", &energy, "zebra crossing", &energy);
//! assert!(sim > dif);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod fxhash;
pub mod intern;
mod measure;
mod projection;
mod pvsm;
mod shard;
mod space;
mod sparse;
mod theme;

pub use fxhash::{fx_hash64, FxBuildHasher, FxHasher};
pub use intern::{
    intern_term, intern_theme, resolve_term, resolve_theme, theme_for_tags, TermId, ThemeId,
};
pub use measure::{
    CachedMeasure, EsaMeasure, PrecomputedMeasure, RelatednessDetail, SemanticMeasure,
    ThematicEsaMeasure,
};
pub use projection::ThemeBasis;
pub use pvsm::{ParametricVectorSpace, PvsmCacheStats};
pub use shard::{CacheStats, ShardedCache};
pub use space::DistributionalSpace;
pub use sparse::SparseVector;
pub use theme::Theme;
