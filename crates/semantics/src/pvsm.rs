//! The Parametric Vector Space Model (paper §4) with memoization.

use crate::intern::{intern_term, intern_theme, resolve_term, resolve_theme, TermId, ThemeId};
use crate::measure::RelatednessDetail;
use crate::projection::ThemeBasis;
use crate::shard::{CacheStats, ShardedCache};
use crate::space::{relatedness_from_distance, DistributionalSpace};
use crate::sparse::SparseVector;
use crate::theme::Theme;
use std::sync::Arc;

/// Shard count for the PVSM caches; high enough that 2–8 broker workers
/// rarely collide on a shard lock.
const SHARDS: usize = 16;
/// Bound on cached theme bases (themes are workload vocabulary, not data).
const BASIS_CAPACITY: usize = 4_096;
/// Bound on cached projections per table (raw and normalized).
const PROJECTION_CAPACITY: usize = 1 << 17;

/// Per-cache counter snapshot for the PVSM; see
/// [`ParametricVectorSpace::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PvsmCacheStats {
    /// Theme-basis cache counters.
    pub basis: CacheStats,
    /// Raw-projection cache counters.
    pub projection: CacheStats,
    /// Normalized-projection cache counters.
    pub normalized: CacheStats,
}

impl PvsmCacheStats {
    /// Sum of the three caches, for flat reporting.
    pub fn total(&self) -> CacheStats {
        self.basis.merge(self.projection).merge(self.normalized)
    }
}

/// The paper's Parametric Vector Space Model: a distributional space whose
/// vectors are *projected into thematic dimensions passed as parameters
/// before being used* (§4).
///
/// Building the PVSM is identical to building the non-thematic space; the
/// parametrization happens at use time. Because the same themes and terms
/// recur across events, the PVSM memoizes:
///
/// * the **theme basis** per [`Theme`] (Fig. 5 step 3);
/// * the **projected vector** per `(term, theme)` pair (step 4 input),
///   both raw and unit-normalized.
///
/// All cache keys are interned `(ThemeId, TermId)` symbols (see
/// [`crate::intern`]), so a warm lookup allocates nothing, and all caches
/// are sharded and bounded ([`ShardedCache`]); a PVSM can be shared across
/// broker worker threads.
#[derive(Debug)]
pub struct ParametricVectorSpace {
    space: DistributionalSpace,
    basis_cache: ShardedCache<ThemeId, Arc<ThemeBasis>>,
    projection_cache: ShardedCache<(ThemeId, TermId), Arc<SparseVector>>,
    /// Unit-norm copies of the projections, used by the relatedness path.
    normalized_cache: ShardedCache<(ThemeId, TermId), Arc<SparseVector>>,
}

impl ParametricVectorSpace {
    /// Wraps a distributional space.
    pub fn new(space: DistributionalSpace) -> ParametricVectorSpace {
        ParametricVectorSpace {
            space,
            basis_cache: ShardedCache::new(SHARDS, BASIS_CAPACITY),
            projection_cache: ShardedCache::new(SHARDS, PROJECTION_CAPACITY),
            normalized_cache: ShardedCache::new(SHARDS, PROJECTION_CAPACITY),
        }
    }

    /// The underlying (non-thematic) space.
    pub fn space(&self) -> &DistributionalSpace {
        &self.space
    }

    /// The (memoized) basis of `theme`.
    pub fn basis(&self, theme: &Theme) -> Arc<ThemeBasis> {
        let id = intern_theme(theme);
        self.basis_cache
            .get_or_insert_with(&id, || Arc::new(ThemeBasis::compute(&self.space, theme)))
    }

    /// The (memoized) basis of an interned theme.
    pub fn basis_by_id(&self, theme: ThemeId) -> Arc<ThemeBasis> {
        self.basis_cache.get_or_insert_with(&theme, || {
            Arc::new(ThemeBasis::compute(&self.space, &resolve_theme(theme)))
        })
    }

    /// The (memoized) thematic projection of `term` given `theme`
    /// (Algorithm 1). The empty theme yields the full-space vector.
    pub fn project(&self, term: &str, theme: &Theme) -> Arc<SparseVector> {
        let key = (intern_theme(theme), intern_term(term));
        self.projection_cache
            .get_or_insert_with(&key, || self.compute_projection(term, theme))
    }

    /// Interned-key variant of [`Self::project`]; the hot path once both
    /// symbols are known — probing allocates nothing.
    pub fn project_ids(&self, term: TermId, theme: ThemeId) -> Arc<SparseVector> {
        self.projection_cache
            .get_or_insert_with(&(theme, term), || {
                self.compute_projection(&resolve_term(term), &resolve_theme(theme))
            })
    }

    fn compute_projection(&self, term: &str, theme: &Theme) -> Arc<SparseVector> {
        if theme.is_empty() {
            Arc::new(self.space.term_vector(term))
        } else {
            Arc::new(self.basis(theme).project_term(&self.space, term))
        }
    }

    /// The (memoized) unit-norm thematic projection of `term` given
    /// `theme`. The zero vector stays zero.
    pub fn project_normalized(&self, term: &str, theme: &Theme) -> Arc<SparseVector> {
        let key = (intern_theme(theme), intern_term(term));
        self.normalized_cache
            .get_or_insert_with(&key, || Arc::new(self.project(term, theme).normalized()))
    }

    /// Interned-key variant of [`Self::project_normalized`].
    pub fn project_normalized_ids(&self, term: TermId, theme: ThemeId) -> Arc<SparseVector> {
        self.normalized_cache
            .get_or_insert_with(&(theme, term), || {
                Arc::new(self.project_ids(term, theme).normalized())
            })
    }

    /// Precomputes and **pins** the normalized projection of
    /// `(term, theme)` (and the theme's basis) so cache rotation cannot
    /// evict it; used by the broker to keep live subscriptions' projections
    /// resident for their whole lifetime. Pins are refcounted; release with
    /// [`Self::unpin_projection`].
    pub fn pin_projection(&self, term: &str, theme: &Theme) -> (TermId, ThemeId) {
        let (term_id, theme_id) = (intern_term(term), intern_theme(theme));
        self.basis_cache.pin_with(&theme_id, || {
            Arc::new(ThemeBasis::compute(&self.space, theme))
        });
        self.normalized_cache.pin_with(&(theme_id, term_id), || {
            Arc::new(self.project_ids(term_id, theme_id).normalized())
        });
        (term_id, theme_id)
    }

    /// Releases one pin taken by [`Self::pin_projection`].
    pub fn unpin_projection(&self, term: TermId, theme: ThemeId) {
        self.normalized_cache.unpin(&(theme, term));
        self.basis_cache.unpin(&theme);
    }

    /// Euclidean distance between the raw thematic projections of two
    /// terms (Fig. 5 step 4; Eq. 5, verbatim).
    pub fn distance(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64 {
        let vs = self.project(term_s, theme_s);
        let ve = self.project(term_e, theme_e);
        vs.euclidean_distance(&ve)
    }

    /// The thematic semantic measure
    /// `sm : T × 2^TH × T × 2^TH → [0, 1]`: Eq. 6 over **unit-normalized**
    /// projected vectors.
    ///
    /// Normalization makes the measure rank by vector *overlap* rather
    /// than by vector magnitude — standard practice for ESA spaces (the
    /// paper's §3.1 notes relatedness is "measured using cosine or
    /// Euclidean distance"; on unit vectors the two orderings coincide).
    ///
    /// Two special cases sit above the geometry:
    ///
    /// * **equal terms always score 1.0**, whatever the themes — string
    ///   identity is stronger evidence than any distributional estimate,
    ///   and without this rule two disjoint themes would push the *same
    ///   word* to the relatedness floor;
    /// * a term whose projection is **zero** (unknown to the corpus, or
    ///   filtered out entirely by its theme) carries no evidence and
    ///   scores `0.0` against any distinct term.
    pub fn relatedness(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64 {
        if term_s == term_e {
            return 1.0;
        }
        let vs = self.project_normalized(term_s, theme_s);
        let ve = self.project_normalized(term_e, theme_e);
        if vs.is_zero() || ve.is_zero() {
            return 0.0;
        }
        relatedness_from_distance(vs.euclidean_distance(&ve))
    }

    /// Interned-symbol variant of [`Self::relatedness`]. Term interning is
    /// exact (no normalization), so `term_s == term_e` iff the ids are
    /// equal — the float path is identical to the string variant.
    pub fn relatedness_ids(
        &self,
        term_s: TermId,
        theme_s: ThemeId,
        term_e: TermId,
        theme_e: ThemeId,
    ) -> f64 {
        if term_s == term_e {
            return 1.0;
        }
        let vs = self.project_normalized_ids(term_s, theme_s);
        let ve = self.project_normalized_ids(term_e, theme_e);
        if vs.is_zero() || ve.is_zero() {
            return 0.0;
        }
        relatedness_from_distance(vs.euclidean_distance(&ve))
    }

    /// Cache-warm-only variant of [`Self::relatedness`]: answers **only**
    /// from already-resident normalized projections and never computes a
    /// basis or projection. Returns `None` when either side's projection is
    /// not resident; returns the exact same score as [`Self::relatedness`]
    /// when both are. Counter-free and promotion-free (see
    /// [`ShardedCache::peek`]), so a degraded broker probing warm state
    /// does not perturb cache statistics or LRU ordering.
    ///
    /// Subscription-side projections are pinned for the subscription's
    /// lifetime ([`Self::pin_projection`]), so under a warm workload this
    /// degrades only the cold event-term tail, not the whole measure.
    pub fn relatedness_warm(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> Option<f64> {
        if term_s == term_e {
            return Some(1.0);
        }
        let ks = (intern_theme(theme_s), intern_term(term_s));
        let ke = (intern_theme(theme_e), intern_term(term_e));
        let vs = self.normalized_cache.peek(&ks)?;
        let ve = self.normalized_cache.peek(&ke)?;
        if vs.is_zero() || ve.is_zero() {
            return Some(0.0);
        }
        Some(relatedness_from_distance(vs.euclidean_distance(&ve)))
    }

    /// [`Self::relatedness`] plus the evidence behind the score: the raw
    /// distance (when the geometric path was taken) and each side's
    /// dimensionality before and after theme projection.
    ///
    /// Off the hot path: the full-space vectors are recomputed rather
    /// than cached (only projections are memoized), but the score comes
    /// from the same normalized projections the hot path uses, so it is
    /// bit-identical to [`Self::relatedness`].
    pub fn explain_relatedness(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> RelatednessDetail {
        let vs = self.project_normalized(term_s, theme_s);
        let ve = self.project_normalized(term_e, theme_e);
        let mut detail = RelatednessDetail {
            score: 0.0,
            distance: None,
            dims_full_s: self.space.term_vector(term_s).nnz(),
            dims_full_e: self.space.term_vector(term_e).nnz(),
            dims_projected_s: vs.nnz(),
            dims_projected_e: ve.nnz(),
        };
        // Same short-circuit order as `relatedness`.
        if term_s == term_e {
            detail.score = 1.0;
        } else if !vs.is_zero() && !ve.is_zero() {
            let d = vs.euclidean_distance(&ve);
            detail.distance = Some(d);
            detail.score = relatedness_from_distance(d);
        }
        detail
    }

    /// Number of cached theme bases, raw projections, and normalized
    /// projections.
    pub fn cache_sizes(&self) -> (usize, usize, usize) {
        (
            self.basis_cache.len(),
            self.projection_cache.len(),
            self.normalized_cache.len(),
        )
    }

    /// Total misses across the three PVSM caches — three relaxed atomic
    /// loads, no shard locks, cheap enough to sample per match test.
    pub fn miss_count(&self) -> u64 {
        self.basis_cache.miss_count()
            + self.projection_cache.miss_count()
            + self.normalized_cache.miss_count()
    }

    /// Hit / miss / eviction counters for each PVSM cache.
    pub fn cache_stats(&self) -> PvsmCacheStats {
        PvsmCacheStats {
            basis: self.basis_cache.stats(),
            projection: self.projection_cache.stats(),
            normalized: self.normalized_cache.stats(),
        }
    }

    /// Drops all memoized bases and projections — including pinned entries
    /// (outstanding pins degrade to no-ops). Used by the timing harness to
    /// measure cold-start behaviour.
    pub fn clear_caches(&self) {
        self.basis_cache.clear();
        self.projection_cache.clear();
        self.normalized_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_corpus::{Corpus, CorpusConfig};
    use tep_index::InvertedIndex;

    fn pvsm() -> ParametricVectorSpace {
        let corpus = Corpus::generate(&CorpusConfig::small());
        ParametricVectorSpace::new(DistributionalSpace::new(InvertedIndex::build(&corpus)))
    }

    #[test]
    fn caches_fill_and_clear() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let _ = p.relatedness("energy consumption", &th, "electricity usage", &th);
        let (bases, projections, normalized) = p.cache_sizes();
        assert_eq!(bases, 1);
        assert_eq!(projections, 2);
        assert_eq!(normalized, 2);
        p.clear_caches();
        assert_eq!(p.cache_sizes(), (0, 0, 0));
    }

    #[test]
    fn cache_stats_track_hits_and_misses() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let a = p.project("energy consumption", &th);
        let b = p.project("energy consumption", &th);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = p.cache_stats();
        assert_eq!(stats.projection.hits, 1);
        assert_eq!(stats.projection.misses, 1);
        assert_eq!(stats.projection.entries, 1);
        assert_eq!(stats.total().entries, 2, "basis + projection resident");
    }

    #[test]
    fn cached_projection_is_stable() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let a = p.project("energy consumption", &th);
        let b = p.project("energy consumption", &th);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
    }

    #[test]
    fn id_and_string_paths_agree_exactly() {
        let p = pvsm();
        let ths = Theme::new(["energy policy"]);
        let the = Theme::new(["energy metering"]);
        let (ts, te) = (
            intern_term("energy consumption"),
            intern_term("electricity usage"),
        );
        let (ids, ide) = (intern_theme(&ths), intern_theme(&the));
        let via_strings = p.relatedness("energy consumption", &ths, "electricity usage", &the);
        let via_ids = p.relatedness_ids(ts, ids, te, ide);
        assert_eq!(
            via_strings.to_bits(),
            via_ids.to_bits(),
            "id path must be bit-identical"
        );
        assert_eq!(p.relatedness_ids(ts, ids, ts, ide), 1.0);
    }

    #[test]
    fn pinned_projection_survives_clear_of_unpinned_neighbours() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let (tid, thid) = p.pin_projection("energy consumption", &th);
        let stats = p.cache_stats();
        assert_eq!(stats.normalized.pinned, 1);
        assert_eq!(stats.basis.pinned, 1);
        let pinned = p.project_normalized_ids(tid, thid);
        assert!((pinned.norm() - 1.0).abs() < 1e-4);
        p.unpin_projection(tid, thid);
        let stats = p.cache_stats();
        assert_eq!(stats.normalized.pinned, 0);
        // Still cached after unpin (demoted to the hot generation).
        let again = p.project_normalized_ids(tid, thid);
        assert!(Arc::ptr_eq(&pinned, &again));
    }

    #[test]
    fn empty_theme_equals_full_space_relatedness() {
        let p = pvsm();
        let e = Theme::empty();
        let thematic = p.relatedness("parking", &e, "garage", &e);
        let plain = p.space().relatedness("parking", "garage");
        assert!((thematic - plain).abs() < 1e-9);
    }

    #[test]
    fn thematic_projection_improves_synonym_contrast() {
        let p = pvsm();
        let ths = Theme::new(["energy policy", "energy metering"]);
        let the = Theme::new(["energy policy", "energy metering", "building energy"]);
        let syn = p.relatedness("energy consumption", &ths, "electricity usage", &the);
        let far = p.relatedness("energy consumption", &ths, "zebra crossing", &the);
        assert!(syn > far, "synonyms {syn} should beat cross-domain {far}");
    }

    #[test]
    fn identical_term_and_theme_is_perfectly_related() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        assert!((p.relatedness("energy meter", &th, "energy meter", &th) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_cache_is_coherent_after_clear() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let before = p.relatedness("energy consumption", &th, "electricity usage", &th);
        p.clear_caches();
        let after = p.relatedness("energy consumption", &th, "electricity usage", &th);
        assert_eq!(before, after, "clearing caches must not change values");
        let v = p.project_normalized("energy consumption", &th);
        assert!((v.norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn equal_terms_score_one_under_any_theme_pair() {
        let p = pvsm();
        let a = Theme::new(["energy policy"]);
        let b = Theme::new(["land transport"]);
        assert_eq!(p.relatedness("device", &a, "device", &b), 1.0);
        assert_eq!(p.relatedness("zzz unknown", &a, "zzz unknown", &b), 1.0);
    }

    #[test]
    fn relatedness_warm_mirrors_full_path_only_when_resident() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let (a, b) = ("energy consumption", "electricity usage");
        // Cold cache: no projections resident, no warm answer — but equal
        // terms short-circuit without any geometry.
        assert_eq!(p.relatedness_warm(a, &th, b, &th), None);
        assert_eq!(p.relatedness_warm(a, &th, a, &th), Some(1.0));
        // One side resident is not enough.
        p.project_normalized(a, &th);
        assert_eq!(p.relatedness_warm(a, &th, b, &th), None);
        // Both resident: bit-identical to the full path, and the probe
        // itself must not move the cache counters.
        let full = p.relatedness(a, &th, b, &th);
        let counters = p.cache_stats().total();
        let warm = p.relatedness_warm(a, &th, b, &th).expect("both warm");
        assert_eq!(warm.to_bits(), full.to_bits());
        assert_eq!(p.cache_stats().total(), counters, "peek is counter-free");
        // Eviction (clear) takes the warm answer away again.
        p.clear_caches();
        assert_eq!(p.relatedness_warm(a, &th, b, &th), None);
    }

    #[test]
    fn pinned_projections_stay_warm() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let (a, b) = ("energy consumption", "electricity usage");
        p.pin_projection(a, &th);
        p.pin_projection(b, &th);
        let warm = p.relatedness_warm(a, &th, b, &th).expect("pinned is warm");
        assert_eq!(warm.to_bits(), p.relatedness(a, &th, b, &th).to_bits());
    }

    #[test]
    fn measure_is_within_unit_interval() {
        let p = pvsm();
        let a = Theme::new(["land transport"]);
        let b = Theme::new(["air quality"]);
        for (x, y) in [
            ("parking", "ozone"),
            ("bus", "rainfall"),
            ("noise", "noise"),
        ] {
            let r = p.relatedness(x, &a, y, &b);
            assert!((0.0..=1.0).contains(&r), "relatedness {r} out of range");
        }
    }
}
