//! The Parametric Vector Space Model (paper §4) with memoization.

use crate::projection::ThemeBasis;
use crate::space::{relatedness_from_distance, DistributionalSpace};
use crate::sparse::SparseVector;
use crate::theme::Theme;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The paper's Parametric Vector Space Model: a distributional space whose
/// vectors are *projected into thematic dimensions passed as parameters
/// before being used* (§4).
///
/// Building the PVSM is identical to building the non-thematic space; the
/// parametrization happens at use time. Because the same themes and terms
/// recur across events, the PVSM memoizes:
///
/// * the **theme basis** per [`Theme`] (Fig. 5 step 3);
/// * the **projected vector** per `(term, theme)` pair (step 4 input).
///
/// Both caches are concurrency-safe; a PVSM can be shared across broker
/// worker threads.
#[derive(Debug)]
pub struct ParametricVectorSpace {
    space: DistributionalSpace,
    basis_cache: RwLock<HashMap<Theme, Arc<ThemeBasis>>>,
    projection_cache: RwLock<HashMap<(Theme, String), Arc<SparseVector>>>,
    /// Unit-norm copies of the projections, used by the relatedness path.
    normalized_cache: RwLock<HashMap<(Theme, String), Arc<SparseVector>>>,
}

impl ParametricVectorSpace {
    /// Wraps a distributional space.
    pub fn new(space: DistributionalSpace) -> ParametricVectorSpace {
        ParametricVectorSpace {
            space,
            basis_cache: RwLock::new(HashMap::new()),
            projection_cache: RwLock::new(HashMap::new()),
            normalized_cache: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying (non-thematic) space.
    pub fn space(&self) -> &DistributionalSpace {
        &self.space
    }

    /// The (memoized) basis of `theme`.
    pub fn basis(&self, theme: &Theme) -> Arc<ThemeBasis> {
        if let Some(b) = self.basis_cache.read().get(theme) {
            return Arc::clone(b);
        }
        let computed = Arc::new(ThemeBasis::compute(&self.space, theme));
        let mut cache = self.basis_cache.write();
        Arc::clone(cache.entry(theme.clone()).or_insert(computed))
    }

    /// The (memoized) thematic projection of `term` given `theme`
    /// (Algorithm 1). The empty theme yields the full-space vector.
    pub fn project(&self, term: &str, theme: &Theme) -> Arc<SparseVector> {
        let key = (theme.clone(), term.to_string());
        if let Some(v) = self.projection_cache.read().get(&key) {
            return Arc::clone(v);
        }
        let vector = if theme.is_empty() {
            Arc::new(self.space.term_vector(term))
        } else {
            Arc::new(self.basis(theme).project_term(&self.space, term))
        };
        let mut cache = self.projection_cache.write();
        Arc::clone(cache.entry(key).or_insert(vector))
    }

    /// The (memoized) unit-norm thematic projection of `term` given
    /// `theme`. The zero vector stays zero.
    pub fn project_normalized(&self, term: &str, theme: &Theme) -> Arc<SparseVector> {
        let key = (theme.clone(), term.to_string());
        if let Some(v) = self.normalized_cache.read().get(&key) {
            return Arc::clone(v);
        }
        let normalized = Arc::new(self.project(term, theme).normalized());
        let mut cache = self.normalized_cache.write();
        Arc::clone(cache.entry(key).or_insert(normalized))
    }

    /// Euclidean distance between the raw thematic projections of two
    /// terms (Fig. 5 step 4; Eq. 5, verbatim).
    pub fn distance(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64 {
        let vs = self.project(term_s, theme_s);
        let ve = self.project(term_e, theme_e);
        vs.euclidean_distance(&ve)
    }

    /// The thematic semantic measure
    /// `sm : T × 2^TH × T × 2^TH → [0, 1]`: Eq. 6 over **unit-normalized**
    /// projected vectors.
    ///
    /// Normalization makes the measure rank by vector *overlap* rather
    /// than by vector magnitude — standard practice for ESA spaces (the
    /// paper's §3.1 notes relatedness is "measured using cosine or
    /// Euclidean distance"; on unit vectors the two orderings coincide).
    ///
    /// Two special cases sit above the geometry:
    ///
    /// * **equal terms always score 1.0**, whatever the themes — string
    ///   identity is stronger evidence than any distributional estimate,
    ///   and without this rule two disjoint themes would push the *same
    ///   word* to the relatedness floor;
    /// * a term whose projection is **zero** (unknown to the corpus, or
    ///   filtered out entirely by its theme) carries no evidence and
    ///   scores `0.0` against any distinct term.
    pub fn relatedness(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64 {
        if term_s == term_e {
            return 1.0;
        }
        let vs = self.project_normalized(term_s, theme_s);
        let ve = self.project_normalized(term_e, theme_e);
        if vs.is_zero() || ve.is_zero() {
            return 0.0;
        }
        relatedness_from_distance(vs.euclidean_distance(&ve))
    }

    /// Number of cached theme bases and projected vectors.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (
            self.basis_cache.read().len(),
            self.projection_cache.read().len(),
        )
    }

    /// Drops all memoized bases and projections (used by the timing
    /// harness to measure cold-start behaviour).
    pub fn clear_caches(&self) {
        self.basis_cache.write().clear();
        self.projection_cache.write().clear();
        self.normalized_cache.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_corpus::{Corpus, CorpusConfig};
    use tep_index::InvertedIndex;

    fn pvsm() -> ParametricVectorSpace {
        let corpus = Corpus::generate(&CorpusConfig::small());
        ParametricVectorSpace::new(DistributionalSpace::new(InvertedIndex::build(&corpus)))
    }

    #[test]
    fn caches_fill_and_clear() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let _ = p.relatedness("energy consumption", &th, "electricity usage", &th);
        let (bases, projections) = p.cache_sizes();
        assert_eq!(bases, 1);
        assert_eq!(projections, 2);
        p.clear_caches();
        assert_eq!(p.cache_sizes(), (0, 0));
    }

    #[test]
    fn cached_projection_is_stable() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let a = p.project("energy consumption", &th);
        let b = p.project("energy consumption", &th);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
    }

    #[test]
    fn empty_theme_equals_full_space_relatedness() {
        let p = pvsm();
        let e = Theme::empty();
        let thematic = p.relatedness("parking", &e, "garage", &e);
        let plain = p.space().relatedness("parking", "garage");
        assert!((thematic - plain).abs() < 1e-9);
    }

    #[test]
    fn thematic_projection_improves_synonym_contrast() {
        let p = pvsm();
        let ths = Theme::new(["energy policy", "energy metering"]);
        let the = Theme::new(["energy policy", "energy metering", "building energy"]);
        let syn = p.relatedness("energy consumption", &ths, "electricity usage", &the);
        let far = p.relatedness("energy consumption", &ths, "zebra crossing", &the);
        assert!(syn > far, "synonyms {syn} should beat cross-domain {far}");
    }

    #[test]
    fn identical_term_and_theme_is_perfectly_related() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        assert!((p.relatedness("energy meter", &th, "energy meter", &th) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_cache_is_coherent_after_clear() {
        let p = pvsm();
        let th = Theme::new(["energy policy"]);
        let before = p.relatedness("energy consumption", &th, "electricity usage", &th);
        p.clear_caches();
        let after = p.relatedness("energy consumption", &th, "electricity usage", &th);
        assert_eq!(before, after, "clearing caches must not change values");
        let v = p.project_normalized("energy consumption", &th);
        assert!((v.norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn equal_terms_score_one_under_any_theme_pair() {
        let p = pvsm();
        let a = Theme::new(["energy policy"]);
        let b = Theme::new(["land transport"]);
        assert_eq!(p.relatedness("device", &a, "device", &b), 1.0);
        assert_eq!(p.relatedness("zzz unknown", &a, "zzz unknown", &b), 1.0);
    }

    #[test]
    fn measure_is_within_unit_interval() {
        let p = pvsm();
        let a = Theme::new(["land transport"]);
        let b = Theme::new(["air quality"]);
        for (x, y) in [
            ("parking", "ozone"),
            ("bus", "rainfall"),
            ("noise", "noise"),
        ] {
            let r = p.relatedness(x, &a, y, &b);
            assert!((0.0..=1.0).contains(&r), "relatedness {r} out of range");
        }
    }
}
