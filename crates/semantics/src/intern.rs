//! Global term/theme interning: `u32` symbols for the semantic hot path.
//!
//! Every `(Theme, String)` cache key the PVSM used to build allocated a
//! fresh `String` and cloned a `Theme` *even on a cache hit*. Interning
//! replaces those keys with copyable `(ThemeId, TermId)` pairs: the interner
//! is probed with borrowed data (`&str` / `&Theme`), so the steady state —
//! every term and theme already interned — performs zero allocations.
//!
//! The tables are sharded and guarded by cheap read-locks (the workspace
//! forbids `unsafe`, so a true lock-free table is off the menu); after
//! warm-up essentially every access is a read-lock acquire plus one hash
//! probe, which is uncontended across broker workers.
//!
//! Ids are process-global and stable for the lifetime of the process. They
//! are never recycled; the tables only grow with the *vocabulary*, not with
//! event volume, so growth is bounded by the corpus and workload schema.

use crate::fxhash::{fx_hash64, FxBuildHasher};
use crate::theme::Theme;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

type FxMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Interned symbol for a vocabulary term (attribute name, value term, …).
///
/// Two `TermId`s are equal iff the exact strings they intern are equal (no
/// normalization is applied at interning time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The raw symbol value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// A placeholder id for pre-zeroed cache slots (never handed out for
    /// a real term by itself — only meaningful alongside a liveness tag).
    pub(crate) const fn placeholder() -> TermId {
        TermId(0)
    }
}

/// Interned symbol for a normalized [`Theme`].
///
/// Aliased spellings of the same tag set (different order, case, or
/// whitespace) intern to the **same** `ThemeId`, because interning goes
/// through the canonical `Theme` representation. [`ThemeId::EMPTY`] is
/// reserved for the empty theme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThemeId(u32);

impl ThemeId {
    /// The id of the empty theme (no thematic information).
    pub const EMPTY: ThemeId = ThemeId(0);

    /// The raw symbol value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Whether this is the empty theme's id.
    pub fn is_empty_theme(self) -> bool {
        self == ThemeId::EMPTY
    }
}

const TERM_SHARDS: usize = 16;

struct Interner {
    /// term string → id, sharded by string hash so concurrent interning of
    /// disjoint vocabularies does not contend.
    term_ids: [RwLock<FxMap<Box<str>, u32>>; TERM_SHARDS],
    /// id → term string (index = id).
    terms: RwLock<Vec<Arc<str>>>,
    /// canonical theme → id. `Theme` hashes by its precomputed fingerprint,
    /// so probing is O(1) and allocation-free.
    theme_ids: RwLock<FxMap<Theme, u32>>,
    /// id → canonical theme (index = id). Slot 0 is the empty theme.
    themes: RwLock<Vec<Arc<Theme>>>,
    /// Verbatim tag-list → theme id front cache, so callers holding a raw
    /// `&[String]` tag slice (events, subscriptions) skip `Theme::new`'s
    /// normalize-sort-dedup-hash work entirely on repeat sightings.
    /// `Vec<String>: Borrow<[String]>` makes the probe allocation-free.
    tags_front: RwLock<FxMap<Vec<String>, u32>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let empty = Arc::new(Theme::empty());
        let mut theme_ids = FxMap::default();
        theme_ids.insert((*empty).clone(), 0);
        Interner {
            term_ids: std::array::from_fn(|_| RwLock::new(FxMap::default())),
            terms: RwLock::new(Vec::new()),
            theme_ids: RwLock::new(theme_ids),
            themes: RwLock::new(vec![empty]),
            tags_front: RwLock::new(FxMap::default()),
        }
    })
}

fn term_shard(term: &str) -> usize {
    // High word: the shard's inner map hashes with the same function and
    // indexes buckets by the low bits (see `ShardedCache::shard`).
    ((fx_hash64(&term) >> 32) as usize) % TERM_SHARDS
}

/// Interns `term`, returning its stable id. Alloc-free when the term is
/// already interned.
pub fn intern_term(term: &str) -> TermId {
    let it = interner();
    let shard = &it.term_ids[term_shard(term)];
    if let Some(&id) = shard.read().get(term) {
        return TermId(id);
    }
    // Miss path: allocate the key, assign the next id under the `terms`
    // write lock (double-checked under the shard write lock).
    let mut map = shard.write();
    if let Some(&id) = map.get(term) {
        return TermId(id);
    }
    let mut terms = it.terms.write();
    let id = u32::try_from(terms.len()).expect("interner overflow: > 4 billion terms");
    terms.push(Arc::from(term));
    map.insert(Box::from(term), id);
    TermId(id)
}

/// The string a [`TermId`] was interned from.
///
/// # Panics
///
/// Panics if `id` was not produced by [`intern_term`] in this process.
pub fn resolve_term(id: TermId) -> Arc<str> {
    Arc::clone(&interner().terms.read()[id.0 as usize])
}

/// Interns a (canonical) theme, returning its stable id. Alloc-free when
/// the theme is already interned; probing hashes only the theme's
/// precomputed fingerprint.
pub fn intern_theme(theme: &Theme) -> ThemeId {
    let it = interner();
    if let Some(&id) = it.theme_ids.read().get(theme) {
        return ThemeId(id);
    }
    let mut map = it.theme_ids.write();
    if let Some(&id) = map.get(theme) {
        return ThemeId(id);
    }
    let mut themes = it.themes.write();
    let id = u32::try_from(themes.len()).expect("interner overflow: > 4 billion themes");
    themes.push(Arc::new(theme.clone()));
    map.insert(theme.clone(), id);
    ThemeId(id)
}

/// The canonical [`Theme`] a [`ThemeId`] was interned from.
///
/// # Panics
///
/// Panics if `id` was not produced by this process's interner.
pub fn resolve_theme(id: ThemeId) -> Arc<Theme> {
    Arc::clone(&interner().themes.read()[id.0 as usize])
}

/// Resolves a raw tag list (as carried by events and subscriptions) to its
/// interned theme, building the canonical [`Theme`] only on first sighting.
///
/// This is the matcher's per-call entry point: the old hot path ran
/// `Theme::new(tags)` — normalize, sort, dedup, hash, allocate — for both
/// sides of *every* `match_event`. With the front cache a repeat tag list
/// costs one read-lock probe.
pub fn theme_for_tags(tags: &[String]) -> (ThemeId, Arc<Theme>) {
    let it = interner();
    if let Some(&id) = it.tags_front.read().get(tags) {
        return (ThemeId(id), resolve_theme(ThemeId(id)));
    }
    let theme = Theme::new(tags);
    let id = intern_theme(&theme);
    it.tags_front.write().insert(tags.to_vec(), id.0);
    (id, resolve_theme(id))
}

/// Number of interned terms and themes, for diagnostics: `(terms, themes)`.
pub fn interner_sizes() -> (usize, usize) {
    let it = interner();
    (it.terms.read().len(), it.themes.read().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn term_ids_are_stable_and_resolve_round_trips() {
        let a = intern_term("energy consumption");
        let b = intern_term("energy consumption");
        assert_eq!(a, b);
        assert_eq!(&*resolve_term(a), "energy consumption");
        let c = intern_term("electricity usage");
        assert_ne!(a, c);
        assert_eq!(&*resolve_term(c), "electricity usage");
    }

    #[test]
    fn terms_are_not_normalized() {
        // Interning is exact: case variants are distinct symbols. (The
        // semantic layer normalizes *before* interning where it matters.)
        assert_ne!(intern_term("Parking"), intern_term("parking"));
    }

    #[test]
    fn empty_theme_has_reserved_id() {
        assert_eq!(intern_theme(&Theme::empty()), ThemeId::EMPTY);
        assert!(resolve_theme(ThemeId::EMPTY).is_empty());
        assert!(ThemeId::EMPTY.is_empty_theme());
    }

    #[test]
    fn aliased_theme_spellings_share_an_id() {
        let a = intern_theme(&Theme::new(["Energy Policy", "land transport"]));
        let b = intern_theme(&Theme::new(["land  transport", "energy policy"]));
        assert_eq!(a, b);
        assert_eq!(
            resolve_theme(a).tags(),
            &["energy policy".to_string(), "land transport".to_string()]
        );
    }

    #[test]
    fn tags_front_cache_matches_canonical_interning() {
        let tags = vec!["Air Quality".to_string(), "ozone".to_string()];
        let (id1, theme1) = theme_for_tags(&tags);
        let (id2, theme2) = theme_for_tags(&tags);
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&theme1, &theme2));
        // A different spelling of the same set resolves to the same id.
        let respelled = vec!["ozone".to_string(), "air quality".to_string()];
        let (id3, _) = theme_for_tags(&respelled);
        assert_eq!(id1, id3);
        assert_eq!(id1, intern_theme(&Theme::new(["ozone", "air quality"])));
    }

    #[test]
    fn concurrent_interning_returns_stable_ids() {
        let words: Vec<String> = (0..64).map(|i| format!("concurrent term {i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let words = words.clone();
                thread::spawn(move || words.iter().map(|w| intern_term(w)).collect::<Vec<_>>())
            })
            .collect();
        let results: Vec<Vec<TermId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &results[1..] {
            assert_eq!(ids, &results[0], "all threads must agree on ids");
        }
        for (word, id) in words.iter().zip(&results[0]) {
            assert_eq!(&*resolve_term(*id), word.as_str());
        }
    }

    #[test]
    fn concurrent_theme_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                thread::spawn(move || {
                    (0..32)
                        .map(|i| intern_theme(&Theme::new([format!("shared tag {i}")])))
                        .collect::<Vec<_>>()
                        // Also exercise the front cache concurrently.
                        .into_iter()
                        .chain(
                            (0..4)
                                .map(|i| theme_for_tags(&[format!("front tag {}", (t + i) % 4)]).0),
                        )
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<ThemeId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &results[1..] {
            assert_eq!(ids[..32], results[0][..32]);
        }
    }
}
