//! Normalized theme-tag sets.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A theme: a normalized, deduplicated, sorted set of tag terms.
///
/// "We define a theme as a set of terms that describe the content of an
/// event or a subscription" (paper §3.2). Tags are normalized like
/// vocabulary terms (lowercase, single spaces); the set is sorted so equal
/// tag sets compare and hash equal regardless of declaration order, which
/// makes [`Theme`] usable as a projection-cache key.
///
/// The empty theme is meaningful: it denotes *no thematic information*, and
/// the parametric space treats it as "do not project" (the non-thematic
/// behaviour).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Theme {
    tags: Vec<String>,
    /// Precomputed fingerprint so hot-path hashing is O(1).
    fingerprint: u64,
}

impl Theme {
    /// Builds a theme from tag strings.
    ///
    /// ```
    /// use tep_semantics::Theme;
    /// let a = Theme::new(["Energy", "appliances "]);
    /// let b = Theme::new(["appliances", "energy"]);
    /// assert_eq!(a, b);
    /// assert_eq!(a.len(), 2);
    /// ```
    pub fn new<I, S>(tags: I) -> Theme
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut normalized: Vec<String> = tags
            .into_iter()
            .map(|t| normalize(t.as_ref()))
            .filter(|t| !t.is_empty())
            .collect();
        normalized.sort();
        normalized.dedup();
        let mut h = DefaultHasher::new();
        normalized.hash(&mut h);
        Theme {
            fingerprint: h.finish(),
            tags: normalized,
        }
    }

    /// The empty theme (no projection).
    pub fn empty() -> Theme {
        Theme::new(std::iter::empty::<&str>())
    }

    /// The normalized tags, sorted.
    pub fn tags(&self) -> &[String] {
        &self.tags
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the theme carries no tags.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Whether every tag of `other` is also a tag of `self`.
    pub fn contains_theme(&self, other: &Theme) -> bool {
        other
            .tags
            .iter()
            .all(|t| self.tags.binary_search(t).is_ok())
    }

    /// Whether `tag` (normalized) is in the theme.
    pub fn contains_tag(&self, tag: &str) -> bool {
        self.tags.binary_search(&normalize(tag)).is_ok()
    }

    /// The union of two themes.
    pub fn union(&self, other: &Theme) -> Theme {
        Theme::new(self.tags.iter().chain(other.tags.iter()))
    }
}

impl Hash for Theme {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

impl fmt::Display for Theme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.tags.join(", "))
    }
}

impl<S: AsRef<str>> FromIterator<S> for Theme {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Theme {
        Theme::new(iter)
    }
}

fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for word in raw.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        for ch in word.chars() {
            out.extend(ch.to_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn normalization_and_order_independence() {
        let a = Theme::new(["Land  Transport", "protection of nature"]);
        let b = Theme::new(["protection of nature", "land transport"]);
        assert_eq!(a, b);
        assert!(a.contains_tag("LAND TRANSPORT"));
    }

    #[test]
    fn dedup_and_empty_tags_removed() {
        let t = Theme::new(["energy", "energy", "  "]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_theme() {
        let t = Theme::empty();
        assert!(t.is_empty());
        assert_eq!(t.to_string(), "{}");
    }

    #[test]
    fn containment() {
        let small = Theme::new(["energy"]);
        let big = Theme::new(["energy", "appliances"]);
        assert!(big.contains_theme(&small));
        assert!(!small.contains_theme(&big));
        assert!(big.contains_theme(&Theme::empty()));
    }

    #[test]
    fn union_merges() {
        let a = Theme::new(["energy"]);
        let b = Theme::new(["appliances", "energy"]);
        assert_eq!(a.union(&b).len(), 2);
    }

    #[test]
    fn usable_as_hash_key() {
        let mut map = HashMap::new();
        map.insert(Theme::new(["a", "b"]), 1);
        assert_eq!(map.get(&Theme::new(["b", "a"])), Some(&1));
    }

    #[test]
    fn display_lists_tags() {
        let t = Theme::new(["power", "computers"]);
        assert_eq!(t.to_string(), "{computers, power}");
    }

    #[test]
    fn from_iterator() {
        let t: Theme = ["x", "y"].into_iter().collect();
        assert_eq!(t.len(), 2);
    }
}
