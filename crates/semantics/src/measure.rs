//! The semantic-measure abstraction and its implementations.

use crate::intern::{intern_term, intern_theme, resolve_term, resolve_theme, TermId, ThemeId};
use crate::pvsm::ParametricVectorSpace;
use crate::shard::{CacheStats, ShardedCache};
use crate::space::DistributionalSpace;
use crate::theme::Theme;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A relatedness score together with the geometric evidence behind it,
/// for explainability: the raw distance the score was derived from (Eq.
/// 6) and the dimensionality of each side's vector before and after
/// theme projection.
///
/// `distance` is `None` when no distance was taken — equal terms
/// short-circuit to `1.0`, zero projections to `0.0`, and non-geometric
/// measures (e.g. [`PrecomputedMeasure`]) never take one. Dimensionality
/// fields are zero for measures without vector representations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RelatednessDetail {
    /// The relatedness score, identical to what
    /// [`SemanticMeasure::relatedness`] returns for the same arguments.
    pub score: f64,
    /// Euclidean distance between the (normalized, projected) vectors,
    /// when the geometric path was taken.
    pub distance: Option<f64>,
    /// Non-zero dimensions of the subscription term's full-space vector.
    pub dims_full_s: usize,
    /// Non-zero dimensions of the event term's full-space vector.
    pub dims_full_e: usize,
    /// Non-zero dimensions of the subscription term's projected vector.
    pub dims_projected_s: usize,
    /// Non-zero dimensions of the event term's projected vector.
    pub dims_projected_e: usize,
}

impl RelatednessDetail {
    /// A score-only detail (no geometry), for measures that don't keep
    /// vector representations.
    pub fn score_only(score: f64) -> RelatednessDetail {
        RelatednessDetail {
            score,
            ..RelatednessDetail::default()
        }
    }
}

/// The paper's semantic measure
/// `sm : T × 2^TH × T × 2^TH → [0, 1]` (§4.3): relatedness between a
/// subscription-side term and an event-side term, each contextualized by
/// its theme.
///
/// Implementations must be symmetric
/// (`sm(a, tha, b, thb) == sm(b, thb, a, tha)`) and return `1.0` for equal
/// term/theme pairs.
pub trait SemanticMeasure: Send + Sync + fmt::Debug {
    /// Semantic relatedness in `[0, 1]`.
    fn relatedness(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64;

    /// Relatedness by **interned symbols** — the batched hot path. The
    /// matcher interns each side's terms and themes once per match test
    /// and probes per cell with copyable ids, so a warm cell costs one
    /// memo probe instead of four intern-table round-trips. The contract:
    /// bit-identical to [`Self::relatedness`] on the strings the ids were
    /// interned from. Default: resolve and delegate (correct for any
    /// measure; id-aware implementations override with a direct path).
    fn relatedness_ids(
        &self,
        term_s: TermId,
        theme_s: ThemeId,
        term_e: TermId,
        theme_e: ThemeId,
    ) -> f64 {
        let (ts, te) = (resolve_term(term_s), resolve_term(term_e));
        let (ths, the) = (resolve_theme(theme_s), resolve_theme(theme_e));
        self.relatedness(&ts, &ths, &te, &the)
    }

    /// The relatedness score plus the evidence behind it, for
    /// explainability. **Off the hot path** — implementations may
    /// recompute vectors; the contract is only that `explain(..).score`
    /// equals `relatedness(..)` for the same arguments. Default: score
    /// with no geometry.
    fn explain(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> RelatednessDetail {
        RelatednessDetail::score_only(self.relatedness(term_s, theme_s, term_e, theme_e))
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "measure"
    }

    /// Precomputes (and, where the implementation supports it, **pins**)
    /// the state needed to score `term` under `theme`, so long-lived
    /// consumers — a broker subscription's predicate terms — stay resident
    /// across cache eviction. Default: no-op.
    fn prepare_term(&self, _term: &str, _theme: &Theme) {}

    /// Releases one [`Self::prepare_term`] pin. Default: no-op.
    fn release_term(&self, _term: &str, _theme: &Theme) {}

    /// Aggregated hit/miss/eviction counters over every cache this measure
    /// consults (memo tables, projection caches, …). Default: zeros.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// The aggregated **miss counter alone**, monotone, sampled on the
    /// match hot path to attribute latency to cache-warm vs. cache-cold
    /// work — implementations must keep this to plain atomic loads
    /// ([`Self::cache_stats`] may walk shard locks to count entries and
    /// is too heavy to call per match test). Default: 0 (no caches).
    fn cache_miss_count(&self) -> u64 {
        0
    }

    /// Cache-warm-only relatedness: answer from already-resident state
    /// (memo tables, pinned projections) **without computing anything
    /// expensive**, or return `None` when the answer is not warm. The
    /// contract: a `Some(score)` must equal what [`Self::relatedness`]
    /// would return for the same arguments, and the probe must not
    /// perturb cache counters or eviction order.
    ///
    /// This is the middle rung of the broker's degradation ladder (exact →
    /// cache-warm semantic → full semantic): under overload the broker
    /// keeps whatever semantic fidelity is already paid for and skips only
    /// the cold computations. Default: `None` (no warm state to consult).
    fn relatedness_warm(
        &self,
        _term_s: &str,
        _theme_s: &Theme,
        _term_e: &str,
        _theme_e: &Theme,
    ) -> Option<f64> {
        None
    }
}

impl<M: SemanticMeasure + ?Sized> SemanticMeasure for Arc<M> {
    fn relatedness(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64 {
        (**self).relatedness(term_s, theme_s, term_e, theme_e)
    }
    fn relatedness_ids(
        &self,
        term_s: TermId,
        theme_s: ThemeId,
        term_e: TermId,
        theme_e: ThemeId,
    ) -> f64 {
        (**self).relatedness_ids(term_s, theme_s, term_e, theme_e)
    }
    fn explain(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> RelatednessDetail {
        (**self).explain(term_s, theme_s, term_e, theme_e)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn prepare_term(&self, term: &str, theme: &Theme) {
        (**self).prepare_term(term, theme)
    }
    fn release_term(&self, term: &str, theme: &Theme) {
        (**self).release_term(term, theme)
    }
    fn cache_stats(&self) -> CacheStats {
        (**self).cache_stats()
    }
    fn cache_miss_count(&self) -> u64 {
        (**self).cache_miss_count()
    }
    fn relatedness_warm(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> Option<f64> {
        (**self).relatedness_warm(term_s, theme_s, term_e, theme_e)
    }
}

/// The **non-thematic** ESA measure (paper's prior work \[16\], the §5.2.5
/// baseline): full-space distributional relatedness; themes are ignored.
#[derive(Debug, Clone)]
pub struct EsaMeasure {
    space: Arc<DistributionalSpace>,
}

impl EsaMeasure {
    /// Wraps a distributional space.
    pub fn new(space: Arc<DistributionalSpace>) -> EsaMeasure {
        EsaMeasure { space }
    }

    /// The wrapped space.
    pub fn space(&self) -> &DistributionalSpace {
        &self.space
    }
}

impl SemanticMeasure for EsaMeasure {
    fn relatedness(&self, term_s: &str, _ths: &Theme, term_e: &str, _the: &Theme) -> f64 {
        if term_s == term_e {
            return 1.0;
        }
        self.space.relatedness(term_s, term_e)
    }

    fn explain(&self, term_s: &str, _ths: &Theme, term_e: &str, _the: &Theme) -> RelatednessDetail {
        // Non-thematic: "projection" is the identity, so the projected
        // dimensionality equals the full-space one.
        let vs = self.space.term_vector_normalized(term_s);
        let ve = self.space.term_vector_normalized(term_e);
        let mut detail = RelatednessDetail {
            score: 0.0,
            distance: None,
            dims_full_s: vs.nnz(),
            dims_full_e: ve.nnz(),
            dims_projected_s: vs.nnz(),
            dims_projected_e: ve.nnz(),
        };
        // The same short-circuit order as `relatedness`, so the score is
        // bit-identical.
        if term_s == term_e {
            detail.score = 1.0;
        } else if !vs.is_zero() && !ve.is_zero() {
            let d = vs.euclidean_distance(&ve);
            detail.distance = Some(d);
            detail.score = crate::space::relatedness_from_distance(d);
        }
        detail
    }

    fn name(&self) -> &'static str {
        "esa"
    }

    fn prepare_term(&self, term: &str, _theme: &Theme) {
        self.space.pin_term(term);
    }

    fn release_term(&self, term: &str, _theme: &Theme) {
        self.space.unpin_term(term);
    }

    fn cache_stats(&self) -> CacheStats {
        self.space.cache_stats()
    }

    fn cache_miss_count(&self) -> u64 {
        self.space.miss_count()
    }
}

/// The **thematic** measure: ESA over the [`ParametricVectorSpace`] —
/// vectors are projected by the respective themes before the distance is
/// taken (§4.2–4.3).
#[derive(Debug, Clone)]
pub struct ThematicEsaMeasure {
    pvsm: Arc<ParametricVectorSpace>,
}

impl ThematicEsaMeasure {
    /// Wraps a parametric vector space.
    pub fn new(pvsm: Arc<ParametricVectorSpace>) -> ThematicEsaMeasure {
        ThematicEsaMeasure { pvsm }
    }

    /// The wrapped parametric space.
    pub fn pvsm(&self) -> &ParametricVectorSpace {
        &self.pvsm
    }
}

impl SemanticMeasure for ThematicEsaMeasure {
    fn relatedness(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64 {
        self.pvsm.relatedness(term_s, theme_s, term_e, theme_e)
    }

    fn relatedness_ids(
        &self,
        term_s: TermId,
        theme_s: ThemeId,
        term_e: TermId,
        theme_e: ThemeId,
    ) -> f64 {
        self.pvsm.relatedness_ids(term_s, theme_s, term_e, theme_e)
    }

    fn explain(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> RelatednessDetail {
        self.pvsm
            .explain_relatedness(term_s, theme_s, term_e, theme_e)
    }

    fn name(&self) -> &'static str {
        "thematic-esa"
    }

    fn prepare_term(&self, term: &str, theme: &Theme) {
        self.pvsm.pin_projection(term, theme);
    }

    fn release_term(&self, term: &str, theme: &Theme) {
        let (term_id, theme_id) = (intern_term(term), intern_theme(theme));
        self.pvsm.unpin_projection(term_id, theme_id);
    }

    fn cache_stats(&self) -> CacheStats {
        self.pvsm.cache_stats().total()
    }

    fn cache_miss_count(&self) -> u64 {
        self.pvsm.miss_count()
    }

    fn relatedness_warm(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> Option<f64> {
        self.pvsm.relatedness_warm(term_s, theme_s, term_e, theme_e)
    }
}

/// Fully canonicalized memo key: the two `(term, theme)` sides ordered by
/// interned symbol so both orientations of the symmetric measure — and, in
/// particular, **equal terms under different themes** — probe one entry.
type MeasureKey = (TermId, ThemeId, TermId, ThemeId);

fn canonical_key(ts: TermId, ths: ThemeId, te: TermId, the: ThemeId) -> MeasureKey {
    if (ts, ths) <= (te, the) {
        (ts, ths, te, the)
    } else {
        (te, the, ts, ths)
    }
}

/// Slots in each worker's L1 score cache (per thread, ~512 KiB). Sized so
/// a working vocabulary of a few thousand term-pair keys fits with a low
/// direct-mapped collision rate; the table is allocated lazily on first
/// use, so threads that never score pay nothing.
const L1_SLOTS: usize = 16384;

/// One direct-mapped L1 slot. `generation == 0` means empty; live slots
/// belong to whichever [`CachedMeasure`] generation last wrote them, so
/// distinct measure instances (and cleared caches) can never serve each
/// other's scores.
#[derive(Clone, Copy)]
struct L1Slot {
    generation: u32,
    key: MeasureKey,
    score: f64,
}

const EMPTY_L1_SLOT: L1Slot = L1Slot {
    generation: 0,
    key: (
        TermId::placeholder(),
        ThemeId::EMPTY,
        TermId::placeholder(),
        ThemeId::EMPTY,
    ),
    score: 0.0,
};

thread_local! {
    /// Per-worker L1 in front of the sharded memo: probed and filled with
    /// no locks, no shared-cache atomics, and (after the one-time table
    /// allocation) no heap traffic. Direct-mapped: a colliding key simply
    /// overwrites the slot, and the sharded L2 still backstops it.
    static MEASURE_L1: RefCell<Vec<L1Slot>> = const { RefCell::new(Vec::new()) };
}

/// Generation source for [`CachedMeasure`] instances. Starts at 1 so the
/// zeroed empty slot can never match a live measure.
static NEXT_GENERATION: AtomicU32 = AtomicU32::new(1);

#[inline]
fn l1_index(key: MeasureKey) -> usize {
    let k0 = ((key.0.as_u32() as u64) << 32) | key.1.as_u32() as u64;
    let k1 = ((key.2.as_u32() as u64) << 32) | key.3.as_u32() as u64;
    // Fibonacci-style mixer; the rotate keeps the two halves from
    // cancelling when the same term appears on both sides.
    let h = (k0 ^ k1.rotate_left(23)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> (64 - 14)) as usize // log2(L1_SLOTS) top bits
}

/// Memoizes another measure per `(term, theme, term, theme)` tuple.
///
/// Heterogeneous event workloads repeat the same attribute/value terms
/// across thousands of events, so the hit rate is high; this is the
/// "caching" optimization the paper lists under future throughput work
/// (§5.3.2). Keys are interned symbols (no allocation on a warm probe),
/// canonically ordered over *both* the term and the theme — the previous
/// key ordered by term only, so the symmetric pair `sm(t, A, t, B)` /
/// `sm(t, B, t, A)` occupied two entries — and the table is sharded and
/// bounded ([`ShardedCache`]) so long-running brokers don't grow it
/// without limit.
pub struct CachedMeasure<M> {
    inner: M,
    cache: ShardedCache<MeasureKey, f64>,
    /// Liveness tag for this instance's entries in the thread-local L1;
    /// re-drawn from [`NEXT_GENERATION`] on [`CachedMeasure::clear`] so
    /// stale L1 slots die without touching other threads.
    generation: AtomicU32,
    /// Probes answered by the thread-local L1 (they bypass the sharded
    /// cache's own hit counters).
    l1_hits: AtomicU64,
}

/// Bound on memoized score pairs.
const MEASURE_CAPACITY: usize = 1 << 18;

impl<M: SemanticMeasure> CachedMeasure<M> {
    /// Wraps `inner` with a bounded, sharded memo table.
    pub fn new(inner: M) -> CachedMeasure<M> {
        CachedMeasure {
            inner,
            cache: ShardedCache::new(16, MEASURE_CAPACITY),
            generation: AtomicU32::new(NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)),
            l1_hits: AtomicU64::new(0),
        }
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the memo table is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Drops all memoized scores, including every thread's L1 entries
    /// (invalidated wholesale by retiring this instance's generation).
    pub fn clear(&self) {
        self.cache.clear();
        self.generation.store(
            NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Counters for the memo table alone (excluding the inner measure's
    /// caches; [`SemanticMeasure::cache_stats`] reports both merged).
    /// L1-answered probes count as hits.
    pub fn memo_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        stats.hits += self.l1_hits.load(Ordering::Relaxed);
        stats
    }
}

impl<M: SemanticMeasure> fmt::Debug for CachedMeasure<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachedMeasure")
            .field("inner", &self.inner)
            .field("entries", &self.len())
            .finish()
    }
}

impl<M: SemanticMeasure> SemanticMeasure for CachedMeasure<M> {
    fn relatedness(&self, term_s: &str, theme_s: &Theme, term_e: &str, theme_e: &Theme) -> f64 {
        let key = canonical_key(
            intern_term(term_s),
            intern_theme(theme_s),
            intern_term(term_e),
            intern_theme(theme_e),
        );
        // The inner call keeps the caller's argument order: the measure is
        // symmetric by contract, and not reordering keeps the float path
        // bit-identical to the uncached measure.
        self.cache.get_or_insert_with(&key, || {
            self.inner.relatedness(term_s, theme_s, term_e, theme_e)
        })
    }

    fn relatedness_ids(
        &self,
        term_s: TermId,
        theme_s: ThemeId,
        term_e: TermId,
        theme_e: ThemeId,
    ) -> f64 {
        // The id-keyed fast path: an L1-warm probe is one direct-mapped
        // array compare on this thread — no locks, no shared counters.
        // The canonical key orders by id, exactly as the string path does
        // after interning, so both paths share entries and stay
        // bit-identical; the L1 only ever holds scores the sharded cache
        // produced, so it cannot change a result either.
        let key = canonical_key(term_s, theme_s, term_e, theme_e);
        let generation = self.generation.load(Ordering::Relaxed);
        let index = l1_index(key);
        let l1_score = MEASURE_L1.with(|l1| {
            let l1 = l1.borrow();
            let slot = l1.get(index)?;
            (slot.generation == generation && slot.key == key).then_some(slot.score)
        });
        if let Some(score) = l1_score {
            self.l1_hits.fetch_add(1, Ordering::Relaxed);
            return score;
        }
        let score = self.cache.get_or_insert_with(&key, || {
            self.inner.relatedness_ids(term_s, theme_s, term_e, theme_e)
        });
        MEASURE_L1.with(|l1| {
            let mut l1 = l1.borrow_mut();
            if l1.is_empty() {
                l1.resize(L1_SLOTS, EMPTY_L1_SLOT);
            }
            l1[index] = L1Slot {
                generation,
                key,
                score,
            };
        });
        score
    }

    fn explain(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> RelatednessDetail {
        // Bypass the score memo: explanations need the geometry, which
        // the memo doesn't keep. The inner measure is deterministic, so
        // the score still matches what the memoized path returned.
        self.inner.explain(term_s, theme_s, term_e, theme_e)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn prepare_term(&self, term: &str, theme: &Theme) {
        self.inner.prepare_term(term, theme);
    }

    fn release_term(&self, term: &str, theme: &Theme) {
        self.inner.release_term(term, theme);
    }

    fn cache_stats(&self) -> CacheStats {
        self.memo_stats().merge(self.inner.cache_stats())
    }

    fn cache_miss_count(&self) -> u64 {
        self.cache.miss_count() + self.inner.cache_miss_count()
    }

    fn relatedness_warm(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> Option<f64> {
        let key = canonical_key(
            intern_term(term_s),
            intern_theme(theme_s),
            intern_term(term_e),
            intern_theme(theme_e),
        );
        // Memoized score first (counter-free peek), then whatever warm
        // state the inner measure holds (e.g. pinned projections).
        self.cache.peek(&key).or_else(|| {
            self.inner
                .relatedness_warm(term_s, theme_s, term_e, theme_e)
        })
    }
}

/// A fully precomputed, theme-insensitive score table.
///
/// Models the paper's "approximate model based on precomputed esa scores"
/// configuration (§5.1), which reached ~91,000 events/sec: at matching
/// time a lookup replaces all vector arithmetic. Unknown pairs fall back
/// to `default_score`.
#[derive(Debug, Clone, Default)]
pub struct PrecomputedMeasure {
    /// Two-level map (`a → b → score`, stored in both directions) so the
    /// hot lookup path needs no key allocation.
    table: HashMap<String, HashMap<String, f64>>,
    default_score: f64,
}

impl PrecomputedMeasure {
    /// Creates an empty table with a fallback score for unknown pairs.
    pub fn new(default_score: f64) -> PrecomputedMeasure {
        PrecomputedMeasure {
            table: HashMap::new(),
            default_score,
        }
    }

    /// Inserts a score for an unordered term pair.
    pub fn insert(&mut self, a: &str, b: &str, score: f64) {
        let score = score.clamp(0.0, 1.0);
        self.table
            .entry(a.to_string())
            .or_default()
            .insert(b.to_string(), score);
        self.table
            .entry(b.to_string())
            .or_default()
            .insert(a.to_string(), score);
    }

    /// Precomputes scores for the cross product of `left × right` terms
    /// using `inner` with fixed themes.
    pub fn precompute<M: SemanticMeasure>(
        inner: &M,
        left: &[String],
        right: &[String],
        theme_s: &Theme,
        theme_e: &Theme,
        default_score: f64,
    ) -> PrecomputedMeasure {
        let mut out = PrecomputedMeasure::new(default_score);
        for a in left {
            for b in right {
                let score = inner.relatedness(a, theme_s, b, theme_e);
                out.insert(a, b, score);
            }
        }
        out
    }

    /// Number of stored unordered pairs.
    pub fn len(&self) -> usize {
        let directed: usize = self.table.values().map(HashMap::len).sum();
        // Each unordered pair is stored in both directions; self-pairs
        // (inserted as a==b) count once.
        let self_pairs = self
            .table
            .iter()
            .filter(|(a, inner)| inner.contains_key(*a))
            .count();
        (directed + self_pairs) / 2
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl SemanticMeasure for PrecomputedMeasure {
    fn relatedness(&self, term_s: &str, _ths: &Theme, term_e: &str, _the: &Theme) -> f64 {
        if term_s == term_e {
            return 1.0;
        }
        self.table
            .get(term_s)
            .and_then(|inner| inner.get(term_e))
            .copied()
            .unwrap_or(self.default_score)
    }

    fn name(&self) -> &'static str {
        "precomputed-esa"
    }

    fn relatedness_warm(
        &self,
        term_s: &str,
        theme_s: &Theme,
        term_e: &str,
        theme_e: &Theme,
    ) -> Option<f64> {
        // The whole table is precomputed — every lookup is "warm".
        Some(self.relatedness(term_s, theme_s, term_e, theme_e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_corpus::{Corpus, CorpusConfig};
    use tep_index::InvertedIndex;

    fn space() -> Arc<DistributionalSpace> {
        let corpus = Corpus::generate(&CorpusConfig::small());
        Arc::new(DistributionalSpace::new(InvertedIndex::build(&corpus)))
    }

    #[test]
    fn esa_measure_ignores_themes() {
        let m = EsaMeasure::new(space());
        let a = Theme::new(["energy policy"]);
        let b = Theme::new(["land transport"]);
        let with = m.relatedness("parking", &a, "garage", &b);
        let without = m.relatedness("parking", &Theme::empty(), "garage", &Theme::empty());
        assert_eq!(with, without);
        assert_eq!(m.name(), "esa");
    }

    #[test]
    fn equal_terms_score_one() {
        let m = EsaMeasure::new(space());
        assert_eq!(
            m.relatedness("x y z", &Theme::empty(), "x y z", &Theme::empty()),
            1.0
        );
    }

    #[test]
    fn cached_measure_memoizes_symmetrically() {
        let m = CachedMeasure::new(EsaMeasure::new(space()));
        let e = Theme::empty();
        let ab = m.relatedness("parking", &e, "garage", &e);
        assert_eq!(m.len(), 1);
        let ba = m.relatedness("garage", &e, "parking", &e);
        assert_eq!(m.len(), 1, "symmetric pair must hit the same entry");
        assert_eq!(ab, ba);
        let stats = m.memo_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn cached_measure_canonicalizes_equal_terms_across_themes() {
        // Regression: the old key ordered by *term only*, so the symmetric
        // pair sm(t, A, t, B) / sm(t, B, t, A) occupied two entries.
        let m = CachedMeasure::new(EsaMeasure::new(space()));
        let a = Theme::new(["energy policy"]);
        let b = Theme::new(["land transport"]);
        let ab = m.relatedness("parking", &a, "parking", &b);
        assert_eq!(m.len(), 1);
        let ba = m.relatedness("parking", &b, "parking", &a);
        assert_eq!(m.len(), 1, "equal terms across themes must share one entry");
        assert_eq!(ab, ba);
        assert_eq!(m.memo_stats().hits, 1);
    }

    #[test]
    fn prepare_and_release_pin_through_the_stack() {
        let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
            InvertedIndex::build(&Corpus::generate(&CorpusConfig::small())),
        )));
        let m = CachedMeasure::new(ThematicEsaMeasure::new(Arc::clone(&pvsm)));
        let th = Theme::new(["energy policy"]);
        m.prepare_term("energy consumption", &th);
        assert_eq!(pvsm.cache_stats().normalized.pinned, 1);
        m.release_term("energy consumption", &th);
        assert_eq!(pvsm.cache_stats().normalized.pinned, 0);
        assert!(m.cache_stats().misses > 0, "pin warm-up registers traffic");
    }

    #[test]
    fn thematic_measure_uses_projection() {
        let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
            InvertedIndex::build(&Corpus::generate(&CorpusConfig::small())),
        )));
        let m = ThematicEsaMeasure::new(pvsm);
        let th = Theme::new(["energy policy", "energy metering"]);
        let syn = m.relatedness("energy consumption", &th, "electricity usage", &th);
        let far = m.relatedness("energy consumption", &th, "zebra crossing", &th);
        assert!(syn > far);
        assert_eq!(m.name(), "thematic-esa");
    }

    #[test]
    fn precomputed_lookup_and_fallback() {
        let mut m = PrecomputedMeasure::new(0.1);
        m.insert("laptop", "computer", 0.9);
        let e = Theme::empty();
        assert_eq!(m.relatedness("computer", &e, "laptop", &e), 0.9);
        assert_eq!(m.relatedness("laptop", &e, "laptop", &e), 1.0);
        assert_eq!(m.relatedness("laptop", &e, "banana", &e), 0.1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn precompute_from_inner_measure() {
        let inner = EsaMeasure::new(space());
        let left = vec!["parking".to_string()];
        let right = vec!["garage".to_string(), "ozone".to_string()];
        let e = Theme::empty();
        let pre = PrecomputedMeasure::precompute(&inner, &left, &right, &e, &e, 0.0);
        assert_eq!(pre.len(), 2);
        let from_table = pre.relatedness("parking", &e, "garage", &e);
        let direct = inner.relatedness("parking", &e, "garage", &e);
        assert!((from_table - direct).abs() < 1e-12);
    }

    #[test]
    fn explain_score_is_bit_identical_to_relatedness() {
        let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
            InvertedIndex::build(&Corpus::generate(&CorpusConfig::small())),
        )));
        let thematic = ThematicEsaMeasure::new(Arc::clone(&pvsm));
        let esa = EsaMeasure::new(Arc::new(DistributionalSpace::new(InvertedIndex::build(
            &Corpus::generate(&CorpusConfig::small()),
        ))));
        let th = Theme::new(["energy policy"]);
        let e = Theme::empty();
        let pairs = [
            ("energy consumption", "electricity usage"),
            ("parking", "garage"),
            ("energy consumption", "energy consumption"),
            ("no such term at all", "garage"),
        ];
        for (a, b) in pairs {
            for (ths, the) in [(&th, &th), (&e, &th), (&e, &e)] {
                let d = thematic.explain(a, ths, b, the);
                assert_eq!(
                    d.score.to_bits(),
                    thematic.relatedness(a, ths, b, the).to_bits(),
                    "thematic explain({a:?}, {b:?}) must reproduce the score"
                );
            }
            let d = esa.explain(a, &e, b, &e);
            assert_eq!(d.score.to_bits(), esa.relatedness(a, &e, b, &e).to_bits());
        }
    }

    #[test]
    fn explain_reports_distance_and_projection_dims() {
        let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
            InvertedIndex::build(&Corpus::generate(&CorpusConfig::small())),
        )));
        let m = ThematicEsaMeasure::new(pvsm);
        let th = Theme::new(["energy policy"]);
        let d = m.explain("energy consumption", &th, "electricity usage", &th);
        let dist = d.distance.expect("distinct known terms take a distance");
        assert!((d.score - 1.0 / (dist + 1.0)).abs() < 1e-12, "Eq. 6 holds");
        assert!(d.dims_full_s > 0 && d.dims_full_e > 0);
        assert!(
            d.dims_projected_s <= d.dims_full_s,
            "projection can only drop dimensions"
        );
        assert!(d.dims_projected_e <= d.dims_full_e);

        // Equal terms short-circuit: score 1.0, no distance taken.
        let eq = m.explain("energy consumption", &th, "energy consumption", &th);
        assert_eq!(eq.score, 1.0);
        assert_eq!(eq.distance, None);

        // Unknown terms project to zero: score 0.0, no distance taken.
        let unk = m.explain("zzz qqq xxx", &th, "electricity usage", &th);
        assert_eq!(unk.score, 0.0);
        assert_eq!(unk.distance, None);
        assert_eq!(unk.dims_projected_s, 0);
    }

    #[test]
    fn cached_and_precomputed_explain_fall_back_sensibly() {
        let cached = CachedMeasure::new(EsaMeasure::new(space()));
        let e = Theme::empty();
        // Warm the memo, then explain: scores agree through the cache.
        let hot = cached.relatedness("parking", &e, "garage", &e);
        let d = cached.explain("parking", &e, "garage", &e);
        assert_eq!(d.score.to_bits(), hot.to_bits());
        assert!(d.distance.is_some());

        // Precomputed has no geometry: default explain, score only.
        let mut pre = PrecomputedMeasure::new(0.1);
        pre.insert("laptop", "computer", 0.9);
        let d = pre.explain("laptop", &e, "computer", &e);
        assert_eq!(d.score, 0.9);
        assert_eq!(d.distance, None);
        assert_eq!((d.dims_full_s, d.dims_projected_s), (0, 0));
    }

    #[test]
    fn cached_measure_warm_path_uses_memo_then_inner() {
        let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
            InvertedIndex::build(&Corpus::generate(&CorpusConfig::small())),
        )));
        let m = CachedMeasure::new(ThematicEsaMeasure::new(Arc::clone(&pvsm)));
        let th = Theme::new(["energy policy"]);
        let (a, b) = ("energy consumption", "electricity usage");
        // Cold: neither the memo nor the projections know the pair.
        assert_eq!(m.relatedness_warm(a, &th, b, &th), None);
        // Full computation memoizes; the warm path then answers exactly.
        let full = m.relatedness(a, &th, b, &th);
        assert_eq!(m.relatedness_warm(a, &th, b, &th), Some(full));
        // Clearing the memo falls through to the inner measure's pinned /
        // resident projections, which the full call also warmed.
        m.clear();
        let via_inner = m
            .relatedness_warm(a, &th, b, &th)
            .expect("projections warm");
        assert_eq!(via_inner.to_bits(), full.to_bits());
    }

    #[test]
    fn relatedness_ids_is_bit_identical_and_shares_memo_entries() {
        let pvsm = Arc::new(ParametricVectorSpace::new(DistributionalSpace::new(
            InvertedIndex::build(&Corpus::generate(&CorpusConfig::small())),
        )));
        let m = CachedMeasure::new(ThematicEsaMeasure::new(pvsm));
        let th = Theme::new(["energy policy"]);
        let e = Theme::empty();
        let pairs = [
            ("energy consumption", "electricity usage"),
            ("parking", "garage"),
            ("parking", "parking"),
            ("no such term at all", "garage"),
        ];
        for (a, b) in pairs {
            for (ths, the) in [(&th, &th), (&e, &th), (&th, &e)] {
                let (ta, tb) = (intern_term(a), intern_term(b));
                let (ia, ib) = (intern_theme(ths), intern_theme(the));
                // Cold id path, then the string path must *hit* the same
                // memo entry and agree bitwise.
                let before = m.memo_stats().misses;
                let via_ids = m.relatedness_ids(ta, ia, tb, ib);
                let via_strings = m.relatedness(a, ths, b, the);
                assert_eq!(via_ids.to_bits(), via_strings.to_bits(), "{a:?} ~ {b:?}");
                let after = m.memo_stats();
                assert!(
                    after.misses <= before + 1,
                    "string path must share the id path's entry: {after:?}"
                );
            }
        }
    }

    #[test]
    fn default_relatedness_ids_resolves_and_delegates() {
        let m = EsaMeasure::new(space());
        let e = Theme::empty();
        let (a, b) = ("parking", "garage");
        let via_strings = m.relatedness(a, &e, b, &e);
        let via_ids = m.relatedness_ids(
            intern_term(a),
            intern_theme(&e),
            intern_term(b),
            intern_theme(&e),
        );
        assert_eq!(via_ids.to_bits(), via_strings.to_bits());
    }

    #[test]
    fn precomputed_measure_is_always_warm() {
        let mut m = PrecomputedMeasure::new(0.1);
        m.insert("laptop", "computer", 0.9);
        let e = Theme::empty();
        assert_eq!(m.relatedness_warm("laptop", &e, "computer", &e), Some(0.9));
        assert_eq!(m.relatedness_warm("laptop", &e, "banana", &e), Some(0.1));
    }

    #[test]
    fn warm_default_is_none() {
        let m = EsaMeasure::new(space());
        let e = Theme::empty();
        let _ = m.relatedness("parking", &e, "garage", &e);
        assert_eq!(m.relatedness_warm("parking", &e, "garage", &e), None);
    }

    #[test]
    fn scores_clamped_to_unit_interval() {
        let mut m = PrecomputedMeasure::new(0.0);
        m.insert("a", "b", 1.5);
        let e = Theme::empty();
        assert_eq!(m.relatedness("a", &e, "b", &e), 1.0);
    }
}
