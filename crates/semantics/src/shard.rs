//! N-way sharded, bounded memo caches with coarse LRU eviction.
//!
//! The PR-1 hot path funneled every broker worker through three global
//! `RwLock<HashMap>` tables — a single writer stalled every reader, and the
//! tables grew without bound. [`ShardedCache`] fixes both:
//!
//! * **Sharding**: keys are distributed over `N` (power-of-two) shards by
//!   key hash; each shard has its own lock, so concurrent lookups of
//!   different keys proceed in parallel and writer stalls are localized.
//! * **Bounding**: each shard keeps two *generations* (`hot` and
//!   `previous`). Inserts go to `hot`; when `hot` reaches the per-shard
//!   budget, it is rotated into `previous` and the old `previous` is
//!   dropped — a coarse LRU: anything untouched for a full generation is
//!   evicted, anything re-read is promoted back into `hot` first.
//! * **Pinning**: entries that must survive eviction (a subscription's
//!   precomputed projections, pinned for its lifetime) are refcounted in a
//!   separate per-shard map that rotation never touches.
//!
//! Hit / miss / eviction counters are relaxed atomics, cheap enough to
//! leave on permanently and surfaced through `BrokerStats`.

use crate::fxhash::{fx_hash64, FxBuildHasher};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

type FxMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Counter snapshot for one cache (or a sum over several — see
/// [`CacheStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Entries dropped by generation rotation.
    pub evictions: u64,
    /// Resident entries (hot + previous + pinned) at snapshot time.
    pub entries: u64,
    /// Pinned entries at snapshot time.
    pub pinned: u64,
}

impl CacheStats {
    /// Component-wise sum, for aggregating several caches into one report.
    pub fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            entries: self.entries + other.entries,
            pinned: self.pinned + other.pinned,
        }
    }

    /// Hits over total lookups; `0.0` before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct ShardInner<K, V> {
    hot: FxMap<K, V>,
    previous: FxMap<K, V>,
    /// key → (value, pin refcount); exempt from rotation.
    pinned: FxMap<K, (V, u32)>,
}

impl<K, V> Default for ShardInner<K, V> {
    fn default() -> ShardInner<K, V> {
        ShardInner {
            hot: FxMap::default(),
            previous: FxMap::default(),
            pinned: FxMap::default(),
        }
    }
}

/// A bounded concurrent memo cache; see the module docs for the design.
///
/// `V` is expected to be cheap to clone (`Arc<…>`, `f64`, small Copy
/// types) — every hit clones the value out so no lock is held by callers.
pub struct ShardedCache<K, V> {
    shards: Box<[RwLock<ShardInner<K, V>>]>,
    mask: u64,
    per_shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("per_shard_budget", &self.per_shard_budget)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// Creates a cache with `shards` shards (rounded up to a power of two)
    /// holding roughly `capacity` unpinned entries in total.
    pub fn new(shards: usize, capacity: usize) -> ShardedCache<K, V> {
        let shards = shards.max(1).next_power_of_two();
        // Two generations per shard share the budget, so a full cache holds
        // between capacity/2 and capacity unpinned entries.
        let per_shard_budget = (capacity / (2 * shards)).max(4);
        ShardedCache {
            shards: (0..shards)
                .map(|_| RwLock::new(ShardInner::default()))
                .collect(),
            mask: (shards - 1) as u64,
            per_shard_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<ShardInner<K, V>> {
        // Select the shard from the *high* word: the shard's inner maps use
        // the same hash function and index buckets by the low bits, so
        // using the low bits here too would leave every map in shard `s`
        // holding only keys whose low bits equal `s` — clustering its
        // buckets 2^shards-fold.
        &self.shards[((fx_hash64(key) >> 32) & self.mask) as usize]
    }

    /// Looks up `key`, promoting previous-generation hits back into `hot`.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key);
        {
            let inner = shard.read();
            if let Some((v, _)) = inner.pinned.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(v.clone());
            }
            if let Some(v) = inner.hot.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(v.clone());
            }
            if !inner.previous.contains_key(key) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        // Previous-generation hit: promote under the write lock.
        let mut inner = shard.write();
        if let Some(v) = inner.previous.remove(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.insert_hot(&mut inner, key.clone(), v.clone());
            return Some(v);
        }
        // Rotated away (or promoted by a racing reader) between the locks.
        drop(inner);
        match self.get_fast(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Read-only probe: returns the cached value if resident (pinned, hot,
    /// or previous generation) without promotion and **without touching the
    /// hit/miss counters** — a peek is not a demand signal. This is the
    /// primitive behind cache-warm-only lookups (a degraded broker asks
    /// "what do you already know?" and must not pollute the counters or
    /// the LRU ordering while doing so).
    pub fn peek(&self, key: &K) -> Option<V> {
        self.get_fast(key)
    }

    /// Read-only probe without promotion or counter updates.
    fn get_fast(&self, key: &K) -> Option<V> {
        let inner = self.shard(key).read();
        if let Some((v, _)) = inner.pinned.get(key) {
            return Some(v.clone());
        }
        inner
            .hot
            .get(key)
            .or_else(|| inner.previous.get(key))
            .cloned()
    }

    /// Returns the cached value for `key`, computing it with `compute` on a
    /// miss. `compute` runs without any shard lock held, so it may be
    /// expensive (and may itself use *other* caches); concurrent misses on
    /// the same key may compute twice, but only one value is retained.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let value = compute();
        let mut inner = self.shard(key).write();
        if let Some((v, _)) = inner.pinned.get(key) {
            return v.clone();
        }
        if let Some(v) = inner.hot.get(key) {
            return v.clone();
        }
        if let Some(v) = inner.previous.remove(key) {
            self.insert_hot(&mut inner, key.clone(), v.clone());
            return v;
        }
        self.insert_hot(&mut inner, key.clone(), value.clone());
        value
    }

    /// Inserts into `hot`, rotating generations when the budget is hit.
    fn insert_hot(&self, inner: &mut ShardInner<K, V>, key: K, value: V) {
        if inner.hot.len() >= self.per_shard_budget {
            let dropped = std::mem::replace(&mut inner.previous, std::mem::take(&mut inner.hot));
            self.evictions
                .fetch_add(dropped.len() as u64, Ordering::Relaxed);
        }
        inner.hot.insert(key, value);
    }

    /// Pins `key` (computing it with `compute` if absent) so rotation never
    /// evicts it; pins are refcounted, so nested `pin` / [`Self::unpin`]
    /// pairs compose.
    pub fn pin_with(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        // Compute (or fetch) outside the write lock.
        let value = match self.get(key) {
            Some(v) => v,
            None => compute(),
        };
        let mut inner = self.shard(key).write();
        if let Some((v, refs)) = inner.pinned.get_mut(key) {
            *refs += 1;
            return v.clone();
        }
        // Migrate out of the generational maps so the entry lives once.
        inner.hot.remove(key);
        inner.previous.remove(key);
        inner.pinned.insert(key.clone(), (value.clone(), 1));
        value
    }

    /// Releases one pin on `key`; when the last pin drops, the value moves
    /// back into the `hot` generation (still cached, again evictable).
    /// Unpinning an unknown key is a no-op (the cache may have been cleared
    /// while pins were outstanding).
    pub fn unpin(&self, key: &K) {
        let mut inner = self.shard(key).write();
        let Some((_, refs)) = inner.pinned.get_mut(key) else {
            return;
        };
        *refs -= 1;
        if *refs == 0 {
            let (value, _) = inner.pinned.remove(key).expect("entry checked above");
            self.insert_hot(&mut inner, key.clone(), value);
        }
    }

    /// Resident entries across all shards (hot + previous + pinned).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let inner = s.read();
                inner.hot.len() + inner.previous.len() + inner.pinned.len()
            })
            .sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pinned entries across all shards.
    pub fn pinned_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().pinned.len()).sum()
    }

    /// Drops every entry, including pinned ones (outstanding pins become
    /// no-ops on [`Self::unpin`]). Counters are preserved.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut inner = shard.write();
            inner.hot.clear();
            inner.previous.clear();
            inner.pinned.clear();
        }
    }

    /// The miss counter alone — a single relaxed atomic load, no shard
    /// locks. Cheap enough to sample around an individual match test,
    /// which is how the broker attributes match latency to cache-warm
    /// vs. cache-cold paths ([`Self::stats`] walks every shard to count
    /// entries and is far too heavy for that).
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            pinned: self.pinned_len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(4, 64);
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_insert_with(&7, || {
                calls.fetch_add(1, Ordering::SeqCst);
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn rotation_bounds_occupancy_and_counts_evictions() {
        // 1 shard, capacity 16 → per-shard budget 8 per generation.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(1, 16);
        for k in 0..100 {
            cache.get_or_insert_with(&k, || k);
        }
        assert!(cache.len() <= 16, "occupancy {} exceeds bound", cache.len());
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        assert_eq!(stats.misses, 100);
    }

    #[test]
    fn recently_read_entries_survive_rotation() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(1, 16);
        cache.get_or_insert_with(&0, || 0);
        for k in 1..1000 {
            cache.get_or_insert_with(&k, || k);
            // Touch key 0 every insert: promotion must keep it resident.
            assert_eq!(cache.get(&0), Some(0), "hot key evicted at k={k}");
        }
    }

    #[test]
    fn pinned_entries_survive_rotation_and_unpin_releases() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(1, 8);
        assert_eq!(cache.pin_with(&99, || 1), 1);
        assert_eq!(cache.pin_with(&99, || 2), 1, "second pin sees first value");
        for k in 0..100 {
            cache.get_or_insert_with(&k, || k);
        }
        assert_eq!(cache.get(&99), Some(1), "pinned entry must survive");
        assert_eq!(cache.pinned_len(), 1);
        cache.unpin(&99);
        assert_eq!(cache.pinned_len(), 1, "refcounted: one pin remains");
        cache.unpin(&99);
        assert_eq!(cache.pinned_len(), 0);
        // Still cached (demoted to hot), and further unpins are no-ops.
        assert_eq!(cache.get(&99), Some(1));
        cache.unpin(&99);
    }

    #[test]
    fn clear_drops_everything_including_pins() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 32);
        cache.pin_with(&1, || 10);
        cache.get_or_insert_with(&2, || 20);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        cache.unpin(&1); // must not panic after clear
        assert_eq!(cache.get(&1), None);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<ShardedCache<u32, u32>> = Arc::new(ShardedCache::new(8, 256));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    for round in 0..200u32 {
                        let k = round % 50;
                        let v = cache.get_or_insert_with(&k, || k * 3);
                        assert_eq!(v, k * 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
    }

    #[test]
    fn concurrent_counters_reconcile_under_eviction_pressure() {
        // Disjoint per-thread key ranges: no two threads ever race on the
        // same key, so every miss inserts exactly one new resident entry
        // and entries leave residency only through rotation. At
        // quiescence the counters must reconcile exactly:
        //
        //   hits + misses == lookups
        //   misses        == resident entries + evictions
        //
        // The tiny capacity keeps every shard rotating while 8 threads
        // hammer it, so the equalities are checked *under* eviction
        // pressure, not on an idle cache.
        const THREADS: u32 = 8;
        const KEYS_PER_THREAD: u32 = 300;
        const PASSES: u32 = 3;
        let cache: Arc<ShardedCache<u32, u32>> = Arc::new(ShardedCache::new(4, 128));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let base = t * KEYS_PER_THREAD;
                    for _ in 0..PASSES {
                        for k in base..base + KEYS_PER_THREAD {
                            assert_eq!(cache.get_or_insert_with(&k, || k * 3), k * 3);
                            // Re-touch the thread's base key every
                            // iteration: promotion keeps it resident, so
                            // the hit counter moves under rotation too.
                            assert_eq!(cache.get_or_insert_with(&base, || base * 3), base * 3);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        let lookups = (THREADS * KEYS_PER_THREAD * PASSES * 2) as u64;
        assert_eq!(stats.hits + stats.misses, lookups);
        assert_eq!(stats.misses, stats.entries + stats.evictions);
        assert!(stats.evictions > 0, "capacity 128 must rotate: {stats:?}");
        assert!(stats.hits > 0, "promoted entries must re-hit: {stats:?}");
    }

    #[test]
    fn hit_rate_and_merge() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 2,
            entries: 4,
            pinned: 1,
        };
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let b = a.merge(a);
        assert_eq!(b.hits, 6);
        assert_eq!(b.entries, 8);
    }
}
