//! Sorted sparse vectors over the document basis.

use serde::{Deserialize, Serialize};
use tep_corpus::DocId;

/// A sparse vector in the document space: `(DocId, weight)` pairs sorted by
/// ascending document id, zero weights omitted.
///
/// All arithmetic is merge-based over the sorted entry lists, so costs are
/// `O(nnz)` — the property that makes thematic projection *faster* than
/// full-space matching (paper §5.3.2: "the more filtering ... the less time
/// is required").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(DocId, f32)>,
}

impl SparseVector {
    /// The zero vector.
    pub fn zero() -> SparseVector {
        SparseVector::default()
    }

    /// Builds a vector from entries that are already sorted by document id
    /// with no duplicates; zero weights are dropped.
    ///
    /// # Panics
    ///
    /// Debug-panics if entries are unsorted or contain duplicate ids.
    pub fn from_sorted(entries: Vec<(DocId, f32)>) -> SparseVector {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly sorted by doc id"
        );
        SparseVector {
            entries: entries.into_iter().filter(|(_, w)| *w != 0.0).collect(),
        }
    }

    /// Builds a vector from unsorted entries, summing duplicate ids.
    pub fn from_unsorted(mut entries: Vec<(DocId, f32)>) -> SparseVector {
        entries.sort_by_key(|(d, _)| *d);
        let mut out: Vec<(DocId, f32)> = Vec::with_capacity(entries.len());
        for (d, w) in entries {
            match out.last_mut() {
                Some((last, acc)) if *last == d => *acc += w,
                _ => out.push((d, w)),
            }
        }
        out.retain(|(_, w)| *w != 0.0);
        SparseVector { entries: out }
    }

    /// The non-zero entries, sorted by document id.
    pub fn entries(&self) -> &[(DocId, f32)] {
        &self.entries
    }

    /// Number of non-zero components.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is zero.
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight at `doc` (0 if absent).
    pub fn get(&self, doc: DocId) -> f32 {
        self.entries
            .binary_search_by_key(&doc, |(d, _)| *d)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Component-wise sum.
    pub fn add(&self, other: &SparseVector) -> SparseVector {
        let mut out = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (da, wa) = self.entries[i];
            let (db, wb) = other.entries[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => {
                    out.push((da, wa));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((db, wb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let w = wa + wb;
                    if w != 0.0 {
                        out.push((da, w));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend_from_slice(&other.entries[j..]);
        SparseVector { entries: out }
    }

    /// Scales every component by `factor`.
    pub fn scale(&self, factor: f32) -> SparseVector {
        if factor == 0.0 {
            return SparseVector::zero();
        }
        SparseVector {
            entries: self.entries.iter().map(|(d, w)| (*d, w * factor)).collect(),
        }
    }

    /// Dot product.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let mut acc = 0.0f64;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (da, wa) = self.entries[i];
            let (db, wb) = other.entries[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa as f64 * wb as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Squared L2 norm.
    pub fn norm_squared(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, w)| (*w as f64) * (*w as f64))
            .sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Euclidean distance (Eq. 5), computed with a single sorted merge.
    pub fn euclidean_distance(&self, other: &SparseVector) -> f64 {
        let mut acc = 0.0f64;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (da, wa) = self.entries[i];
            let (db, wb) = other.entries[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => {
                    acc += (wa as f64).powi(2);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc += (wb as f64).powi(2);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let d = wa as f64 - wb as f64;
                    acc += d * d;
                    i += 1;
                    j += 1;
                }
            }
        }
        for (_, w) in &self.entries[i..] {
            acc += (*w as f64).powi(2);
        }
        for (_, w) in &other.entries[j..] {
            acc += (*w as f64).powi(2);
        }
        acc.sqrt()
    }

    /// Cosine similarity; 0 when either vector is zero.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Returns a unit-norm copy (zero stays zero).
    pub fn normalized(&self) -> SparseVector {
        let n = self.norm();
        if n == 0.0 {
            SparseVector::zero()
        } else {
            self.scale((1.0 / n) as f32)
        }
    }

    /// Keeps only the components whose document id appears in `docs`
    /// (sorted slice) — the support-filtering half of thematic projection.
    pub fn restrict_to(&self, docs: &[DocId]) -> SparseVector {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < docs.len() {
            let (d, w) = self.entries[i];
            match d.cmp(&docs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push((d, w));
                    i += 1;
                    j += 1;
                }
            }
        }
        SparseVector { entries: out }
    }

    /// The documents of the vector's support, in ascending order.
    pub fn support(&self) -> impl Iterator<Item = DocId> + '_ {
        self.entries.iter().map(|(d, _)| *d)
    }
}

impl FromIterator<(DocId, f32)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (DocId, f32)>>(iter: T) -> SparseVector {
        SparseVector::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(entries: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_unsorted(entries.iter().map(|(d, w)| (DocId(*d), *w)).collect())
    }

    #[test]
    fn from_unsorted_sorts_and_merges() {
        let x = v(&[(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(x.entries(), &[(DocId(1), 2.0), (DocId(3), 1.5)]);
    }

    #[test]
    fn zero_weights_dropped() {
        let x = v(&[(1, 0.0), (2, 1.0)]);
        assert_eq!(x.nnz(), 1);
        assert!(!x.is_zero());
        assert!(v(&[]).is_zero());
    }

    #[test]
    fn get_returns_weight_or_zero() {
        let x = v(&[(1, 2.0), (5, 3.0)]);
        assert_eq!(x.get(DocId(5)), 3.0);
        assert_eq!(x.get(DocId(2)), 0.0);
    }

    #[test]
    fn add_merges_supports() {
        let x = v(&[(1, 1.0), (3, 2.0)]);
        let y = v(&[(2, 5.0), (3, -2.0)]);
        let s = x.add(&y);
        assert_eq!(s.entries(), &[(DocId(1), 1.0), (DocId(2), 5.0)]);
    }

    #[test]
    fn dot_and_norm() {
        let x = v(&[(1, 3.0), (2, 4.0)]);
        assert_eq!(x.norm(), 5.0);
        let y = v(&[(2, 2.0), (7, 10.0)]);
        assert_eq!(x.dot(&y), 8.0);
    }

    #[test]
    fn euclidean_distance_matches_dense_computation() {
        let x = v(&[(1, 1.0), (2, 2.0)]);
        let y = v(&[(2, 4.0), (3, 2.0)]);
        // dense: (1-0)^2 + (2-4)^2 + (0-2)^2 = 1 + 4 + 4 = 9
        assert!((x.euclidean_distance(&y) - 3.0).abs() < 1e-9);
        assert_eq!(x.euclidean_distance(&x), 0.0);
    }

    #[test]
    fn distance_to_zero_is_norm() {
        let x = v(&[(1, 3.0), (2, 4.0)]);
        assert!((x.euclidean_distance(&SparseVector::zero()) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_bounds_and_zero_behaviour() {
        let x = v(&[(1, 1.0)]);
        let y = v(&[(2, 1.0)]);
        assert_eq!(x.cosine(&y), 0.0);
        assert!((x.cosine(&x) - 1.0).abs() < 1e-9);
        assert_eq!(SparseVector::zero().cosine(&x), 0.0);
    }

    #[test]
    fn restrict_to_intersects_support() {
        let x = v(&[(1, 1.0), (3, 2.0), (5, 3.0)]);
        let r = x.restrict_to(&[DocId(3), DocId(4), DocId(5)]);
        assert_eq!(r.entries(), &[(DocId(3), 2.0), (DocId(5), 3.0)]);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let x = v(&[(1, 3.0), (2, 4.0)]);
        assert!((x.normalized().norm() - 1.0).abs() < 1e-6);
        assert!(SparseVector::zero().normalized().is_zero());
    }

    #[test]
    fn scale_by_zero_is_zero() {
        let x = v(&[(1, 3.0)]);
        assert!(x.scale(0.0).is_zero());
        assert_eq!(x.scale(2.0).get(DocId(1)), 6.0);
    }

    #[test]
    fn collect_from_iterator() {
        let x: SparseVector = vec![(DocId(2), 1.0), (DocId(1), 1.0)].into_iter().collect();
        assert_eq!(x.support().collect::<Vec<_>>(), vec![DocId(1), DocId(2)]);
    }
}
