//! Sorted sparse vectors over the document basis.

use serde::{Deserialize, Serialize};
use tep_corpus::DocId;

/// A sparse vector in the document space, stored **structure-of-arrays**:
/// a sorted `dims` array of document ids and a parallel `vals` array of
/// weights, zero weights omitted.
///
/// All arithmetic is merge-based over the sorted dimension lists, so costs
/// are `O(nnz)` — the property that makes thematic projection *faster* than
/// full-space matching (paper §5.3.2: "the more filtering ... the less time
/// is required"). The split layout keeps the merge loops reading two
/// contiguous `u32` streams and two contiguous `f32` streams — half the
/// bytes per compared dimension of the old `Vec<(DocId, f32)>` pairs, and a
/// shape `portable_simd` chunk kernels can consume directly. Every kernel
/// preserves the exact accumulation order of the pair-based implementation,
/// so scores are bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    dims: Vec<DocId>,
    vals: Vec<f32>,
}

impl SparseVector {
    /// The zero vector.
    pub fn zero() -> SparseVector {
        SparseVector::default()
    }

    /// Builds a vector from entries that are already sorted by document id
    /// with no duplicates; zero weights are dropped.
    ///
    /// # Panics
    ///
    /// Debug-panics if entries are unsorted or contain duplicate ids.
    pub fn from_sorted(entries: Vec<(DocId, f32)>) -> SparseVector {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly sorted by doc id"
        );
        let mut out = SparseVector::with_capacity(entries.len());
        for (d, w) in entries {
            if w != 0.0 {
                out.dims.push(d);
                out.vals.push(w);
            }
        }
        out
    }

    /// Builds a vector from unsorted entries, summing duplicate ids.
    pub fn from_unsorted(mut entries: Vec<(DocId, f32)>) -> SparseVector {
        entries.sort_by_key(|(d, _)| *d);
        let mut out = SparseVector::with_capacity(entries.len());
        for (d, w) in entries {
            match (out.dims.last(), out.vals.last_mut()) {
                (Some(last), Some(acc)) if *last == d => *acc += w,
                _ => {
                    out.dims.push(d);
                    out.vals.push(w);
                }
            }
        }
        // Drop components that cancelled to zero (mirrors the pair-based
        // `retain`).
        let mut keep = 0;
        for i in 0..out.vals.len() {
            if out.vals[i] != 0.0 {
                out.dims[keep] = out.dims[i];
                out.vals[keep] = out.vals[i];
                keep += 1;
            }
        }
        out.dims.truncate(keep);
        out.vals.truncate(keep);
        out
    }

    fn with_capacity(capacity: usize) -> SparseVector {
        SparseVector {
            dims: Vec::with_capacity(capacity),
            vals: Vec::with_capacity(capacity),
        }
    }

    /// The sorted document ids of the non-zero components.
    pub fn dims(&self) -> &[DocId] {
        &self.dims
    }

    /// The weights parallel to [`Self::dims`].
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// The non-zero `(doc, weight)` components, ascending by document id.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, f32)> + '_ {
        self.dims.iter().copied().zip(self.vals.iter().copied())
    }

    /// Number of non-zero components.
    pub fn nnz(&self) -> usize {
        self.dims.len()
    }

    /// Whether the vector is zero.
    pub fn is_zero(&self) -> bool {
        self.dims.is_empty()
    }

    /// The weight at `doc` (0 if absent).
    pub fn get(&self, doc: DocId) -> f32 {
        self.dims
            .binary_search(&doc)
            .map(|i| self.vals[i])
            .unwrap_or(0.0)
    }

    /// Component-wise sum.
    pub fn add(&self, other: &SparseVector) -> SparseVector {
        let mut out = SparseVector::with_capacity(self.nnz() + other.nnz());
        let (mut i, mut j) = (0, 0);
        while i < self.dims.len() && j < other.dims.len() {
            let (da, wa) = (self.dims[i], self.vals[i]);
            let (db, wb) = (other.dims[j], other.vals[j]);
            match da.cmp(&db) {
                std::cmp::Ordering::Less => {
                    out.dims.push(da);
                    out.vals.push(wa);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.dims.push(db);
                    out.vals.push(wb);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let w = wa + wb;
                    if w != 0.0 {
                        out.dims.push(da);
                        out.vals.push(w);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.dims.extend_from_slice(&self.dims[i..]);
        out.vals.extend_from_slice(&self.vals[i..]);
        out.dims.extend_from_slice(&other.dims[j..]);
        out.vals.extend_from_slice(&other.vals[j..]);
        out
    }

    /// Scales every component by `factor`.
    pub fn scale(&self, factor: f32) -> SparseVector {
        if factor == 0.0 {
            return SparseVector::zero();
        }
        SparseVector {
            dims: self.dims.clone(),
            vals: self.vals.iter().map(|w| w * factor).collect(),
        }
    }

    /// Dot product.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let mut acc = 0.0f64;
        let (mut i, mut j) = (0, 0);
        while i < self.dims.len() && j < other.dims.len() {
            let da = self.dims[i];
            let db = other.dims[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.vals[i] as f64 * other.vals[j] as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Squared L2 norm.
    pub fn norm_squared(&self) -> f64 {
        self.vals.iter().map(|w| (*w as f64) * (*w as f64)).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Euclidean distance (Eq. 5), computed with a single sorted merge
    /// over the two dimension arrays; the disjoint tails reduce to tight
    /// sum-of-squares loops over the value arrays alone.
    pub fn euclidean_distance(&self, other: &SparseVector) -> f64 {
        let mut acc = 0.0f64;
        let (mut i, mut j) = (0, 0);
        while i < self.dims.len() && j < other.dims.len() {
            let da = self.dims[i];
            let db = other.dims[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => {
                    acc += (self.vals[i] as f64).powi(2);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc += (other.vals[j] as f64).powi(2);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let d = self.vals[i] as f64 - other.vals[j] as f64;
                    acc += d * d;
                    i += 1;
                    j += 1;
                }
            }
        }
        for w in &self.vals[i..] {
            acc += (*w as f64).powi(2);
        }
        for w in &other.vals[j..] {
            acc += (*w as f64).powi(2);
        }
        acc.sqrt()
    }

    /// Cosine similarity; 0 when either vector is zero.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Returns a unit-norm copy (zero stays zero).
    pub fn normalized(&self) -> SparseVector {
        let n = self.norm();
        if n == 0.0 {
            SparseVector::zero()
        } else {
            self.scale((1.0 / n) as f32)
        }
    }

    /// Keeps only the components whose document id appears in `docs`
    /// (sorted slice) — the support-filtering half of thematic projection.
    pub fn restrict_to(&self, docs: &[DocId]) -> SparseVector {
        let mut out = SparseVector::default();
        let (mut i, mut j) = (0, 0);
        while i < self.dims.len() && j < docs.len() {
            match self.dims[i].cmp(&docs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.dims.push(self.dims[i]);
                    out.vals.push(self.vals[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// The documents of the vector's support, in ascending order.
    pub fn support(&self) -> impl Iterator<Item = DocId> + '_ {
        self.dims.iter().copied()
    }
}

impl FromIterator<(DocId, f32)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (DocId, f32)>>(iter: T) -> SparseVector {
        SparseVector::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(entries: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_unsorted(entries.iter().map(|(d, w)| (DocId(*d), *w)).collect())
    }

    fn pairs(x: &SparseVector) -> Vec<(DocId, f32)> {
        x.iter().collect()
    }

    #[test]
    fn from_unsorted_sorts_and_merges() {
        let x = v(&[(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(pairs(&x), vec![(DocId(1), 2.0), (DocId(3), 1.5)]);
    }

    #[test]
    fn zero_weights_dropped() {
        let x = v(&[(1, 0.0), (2, 1.0)]);
        assert_eq!(x.nnz(), 1);
        assert!(!x.is_zero());
        assert!(v(&[]).is_zero());
    }

    #[test]
    fn dims_and_vals_stay_parallel() {
        let x = v(&[(5, 2.0), (1, 1.0), (9, 3.0)]);
        assert_eq!(x.dims(), &[DocId(1), DocId(5), DocId(9)]);
        assert_eq!(x.vals(), &[1.0, 2.0, 3.0]);
        assert_eq!(x.dims().len(), x.vals().len());
    }

    #[test]
    fn get_returns_weight_or_zero() {
        let x = v(&[(1, 2.0), (5, 3.0)]);
        assert_eq!(x.get(DocId(5)), 3.0);
        assert_eq!(x.get(DocId(2)), 0.0);
    }

    #[test]
    fn add_merges_supports() {
        let x = v(&[(1, 1.0), (3, 2.0)]);
        let y = v(&[(2, 5.0), (3, -2.0)]);
        let s = x.add(&y);
        assert_eq!(pairs(&s), vec![(DocId(1), 1.0), (DocId(2), 5.0)]);
    }

    #[test]
    fn dot_and_norm() {
        let x = v(&[(1, 3.0), (2, 4.0)]);
        assert_eq!(x.norm(), 5.0);
        let y = v(&[(2, 2.0), (7, 10.0)]);
        assert_eq!(x.dot(&y), 8.0);
    }

    #[test]
    fn euclidean_distance_matches_dense_computation() {
        let x = v(&[(1, 1.0), (2, 2.0)]);
        let y = v(&[(2, 4.0), (3, 2.0)]);
        // dense: (1-0)^2 + (2-4)^2 + (0-2)^2 = 1 + 4 + 4 = 9
        assert!((x.euclidean_distance(&y) - 3.0).abs() < 1e-9);
        assert_eq!(x.euclidean_distance(&x), 0.0);
    }

    #[test]
    fn distance_to_zero_is_norm() {
        let x = v(&[(1, 3.0), (2, 4.0)]);
        assert!((x.euclidean_distance(&SparseVector::zero()) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_bounds_and_zero_behaviour() {
        let x = v(&[(1, 1.0)]);
        let y = v(&[(2, 1.0)]);
        assert_eq!(x.cosine(&y), 0.0);
        assert!((x.cosine(&x) - 1.0).abs() < 1e-9);
        assert_eq!(SparseVector::zero().cosine(&x), 0.0);
    }

    #[test]
    fn restrict_to_intersects_support() {
        let x = v(&[(1, 1.0), (3, 2.0), (5, 3.0)]);
        let r = x.restrict_to(&[DocId(3), DocId(4), DocId(5)]);
        assert_eq!(pairs(&r), vec![(DocId(3), 2.0), (DocId(5), 3.0)]);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let x = v(&[(1, 3.0), (2, 4.0)]);
        assert!((x.normalized().norm() - 1.0).abs() < 1e-6);
        assert!(SparseVector::zero().normalized().is_zero());
    }

    #[test]
    fn scale_by_zero_is_zero() {
        let x = v(&[(1, 3.0)]);
        assert!(x.scale(0.0).is_zero());
        assert_eq!(x.scale(2.0).get(DocId(1)), 6.0);
    }

    #[test]
    fn collect_from_iterator() {
        let x: SparseVector = vec![(DocId(2), 1.0), (DocId(1), 1.0)].into_iter().collect();
        assert_eq!(x.support().collect::<Vec<_>>(), vec![DocId(1), DocId(2)]);
    }

    /// The pair-based (array-of-structs) reference implementation the SoA
    /// kernels replaced, preserved verbatim so the property tests below
    /// can assert **bit-identical** results on arbitrary inputs.
    mod reference {
        use super::DocId;

        pub struct RefVector {
            pub entries: Vec<(DocId, f32)>,
        }

        impl RefVector {
            pub fn from_unsorted(mut entries: Vec<(DocId, f32)>) -> RefVector {
                entries.sort_by_key(|(d, _)| *d);
                let mut out: Vec<(DocId, f32)> = Vec::with_capacity(entries.len());
                for (d, w) in entries {
                    match out.last_mut() {
                        Some((last, acc)) if *last == d => *acc += w,
                        _ => out.push((d, w)),
                    }
                }
                out.retain(|(_, w)| *w != 0.0);
                RefVector { entries: out }
            }

            pub fn add(&self, other: &RefVector) -> RefVector {
                let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
                let (mut i, mut j) = (0, 0);
                while i < self.entries.len() && j < other.entries.len() {
                    let (da, wa) = self.entries[i];
                    let (db, wb) = other.entries[j];
                    match da.cmp(&db) {
                        std::cmp::Ordering::Less => {
                            out.push((da, wa));
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push((db, wb));
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            let w = wa + wb;
                            if w != 0.0 {
                                out.push((da, w));
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&self.entries[i..]);
                out.extend_from_slice(&other.entries[j..]);
                RefVector { entries: out }
            }

            pub fn euclidean_distance(&self, other: &RefVector) -> f64 {
                let mut acc = 0.0f64;
                let (mut i, mut j) = (0, 0);
                while i < self.entries.len() && j < other.entries.len() {
                    let (da, wa) = self.entries[i];
                    let (db, wb) = other.entries[j];
                    match da.cmp(&db) {
                        std::cmp::Ordering::Less => {
                            acc += (wa as f64).powi(2);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            acc += (wb as f64).powi(2);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            let d = wa as f64 - wb as f64;
                            acc += d * d;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                for (_, w) in &self.entries[i..] {
                    acc += (*w as f64).powi(2);
                }
                for (_, w) in &other.entries[j..] {
                    acc += (*w as f64).powi(2);
                }
                acc.sqrt()
            }

            pub fn dot(&self, other: &RefVector) -> f64 {
                let mut acc = 0.0f64;
                let (mut i, mut j) = (0, 0);
                while i < self.entries.len() && j < other.entries.len() {
                    let (da, wa) = self.entries[i];
                    let (db, wb) = other.entries[j];
                    match da.cmp(&db) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            acc += wa as f64 * wb as f64;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                acc
            }

            pub fn norm(&self) -> f64 {
                self.entries
                    .iter()
                    .map(|(_, w)| (*w as f64) * (*w as f64))
                    .sum::<f64>()
                    .sqrt()
            }

            pub fn normalized(&self) -> RefVector {
                let n = self.norm();
                if n == 0.0 {
                    return RefVector {
                        entries: Vec::new(),
                    };
                }
                let f = (1.0 / n) as f32;
                RefVector {
                    entries: self.entries.iter().map(|(d, w)| (*d, w * f)).collect(),
                }
            }

            pub fn restrict_to(&self, docs: &[DocId]) -> RefVector {
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < self.entries.len() && j < docs.len() {
                    let (d, w) = self.entries[i];
                    match d.cmp(&docs[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push((d, w));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                RefVector { entries: out }
            }
        }
    }

    /// Deterministic splitmix64 for the property inputs (the workspace's
    /// vendored rand is available, but a local generator keeps the case
    /// list reproducible from the seed printed on failure).
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        fn vector(&mut self, max_nnz: usize, dim_range: u32) -> Vec<(DocId, f32)> {
            let n = (self.next() as usize) % (max_nnz + 1);
            (0..n)
                .map(|_| {
                    let d = DocId((self.next() as u32) % dim_range);
                    // Mixed-sign, mixed-magnitude weights, occasional zero.
                    let w = match self.next() % 8 {
                        0 => 0.0,
                        k => ((self.next() % 2_000) as f32 - 1_000.0) / (10f32.powi(k as i32 % 4)),
                    };
                    (d, w)
                })
                .collect()
        }
    }

    #[test]
    fn property_soa_kernels_are_bit_identical_to_pair_reference() {
        use reference::RefVector;
        let mut rng = Mix(0x5EED_CAFE);
        for case in 0..500 {
            let ea = rng.vector(48, 64);
            let eb = rng.vector(48, 64);
            let (a, b) = (
                SparseVector::from_unsorted(ea.clone()),
                SparseVector::from_unsorted(eb.clone()),
            );
            let (ra, rb) = (
                RefVector::from_unsorted(ea.clone()),
                RefVector::from_unsorted(eb.clone()),
            );
            // Construction agrees entry-for-entry.
            assert_eq!(pairs(&a), ra.entries, "case {case}: construction");
            // Distance, dot, and norm are bit-identical.
            assert_eq!(
                a.euclidean_distance(&b).to_bits(),
                ra.euclidean_distance(&rb).to_bits(),
                "case {case}: distance"
            );
            assert_eq!(a.dot(&b).to_bits(), ra.dot(&rb).to_bits(), "case {case}");
            assert_eq!(a.norm().to_bits(), ra.norm().to_bits(), "case {case}");
            // Merge-based sum agrees entry-for-entry (bitwise weights).
            let sum = a.add(&b);
            let rsum = ra.add(&rb);
            assert_eq!(sum.nnz(), rsum.entries.len(), "case {case}: add nnz");
            for ((d1, w1), (d2, w2)) in sum.iter().zip(&rsum.entries) {
                assert_eq!(d1, *d2, "case {case}: add dim");
                assert_eq!(w1.to_bits(), w2.to_bits(), "case {case}: add weight");
            }
            // Normalization (the projection cache's post-processing step).
            let na = a.normalized();
            let rna = ra.normalized();
            for ((d1, w1), (d2, w2)) in na.iter().zip(&rna.entries) {
                assert_eq!(d1, *d2);
                assert_eq!(w1.to_bits(), w2.to_bits(), "case {case}: normalize");
            }
            // Support restriction (the filtering half of projection).
            let mut docs: Vec<DocId> = (0..16).map(|_| DocId((rng.next() as u32) % 64)).collect();
            docs.sort();
            docs.dedup();
            let restricted = a.restrict_to(&docs);
            let rrestricted = ra.restrict_to(&docs);
            assert_eq!(pairs(&restricted), rrestricted.entries, "case {case}");
        }
    }
}
