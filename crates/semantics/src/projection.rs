//! Thematic projection — the paper's Algorithm 1.

use crate::space::DistributionalSpace;
use crate::sparse::SparseVector;
use crate::theme::Theme;
use tep_corpus::DocId;
use tep_index::WordId;

/// The sub-basis of the vector space selected by a theme: the documents in
/// which the theme's distributional vector is non-zero (Fig. 5, step 3).
///
/// Projection onto this basis (Algorithm 1) keeps a term vector's
/// components only for basis documents and re-weights them with an idf
/// computed *within* the basis:
///
/// ```text
/// idf' = log( |{d ∈ D : th_d > 0}| / |{d ∈ D : th_d > 0 ∧ t_d > 0}| )
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThemeBasis {
    docs: Vec<DocId>,
}

impl ThemeBasis {
    /// Computes the basis of `theme` in `space`.
    ///
    /// The basis of the *empty* theme is defined as the full document set
    /// (projection onto it is the identity); a non-empty theme whose tags
    /// are all unknown to the corpus yields an **empty** basis, which
    /// filters the space completely — the behaviour behind the throughput
    /// outliers the paper reports in §5.3.2.
    pub fn compute(space: &DistributionalSpace, theme: &Theme) -> ThemeBasis {
        if theme.is_empty() {
            return ThemeBasis {
                docs: (0..space.index().num_docs() as u32).map(DocId).collect(),
            };
        }
        let mut theme_vec = SparseVector::zero();
        for tag in theme.tags() {
            let tv = space.term_vector(tag);
            if !tv.is_zero() {
                theme_vec = theme_vec.add(&tv);
            }
        }
        ThemeBasis {
            docs: theme_vec.support().collect(),
        }
    }

    /// The basis documents, in ascending id order.
    pub fn docs(&self) -> &[DocId] {
        &self.docs
    }

    /// Number of basis documents (`|B|`).
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the basis is empty (theme completely filtered the space).
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Whether `doc` is in the basis.
    pub fn contains(&self, doc: DocId) -> bool {
        self.docs.binary_search(&doc).is_ok()
    }

    /// Projects a term onto this basis (Algorithm 1).
    ///
    /// A multi-word term is projected word-by-word and summed, mirroring
    /// how full-space term vectors are built. Words with no occurrence
    /// inside the basis contribute nothing.
    pub fn project_term(&self, space: &DistributionalSpace, term: &str) -> SparseVector {
        let mut acc = SparseVector::zero();
        for word in space.tokenizer().tokenize(term) {
            if let Some(wid) = space.index().word_id(&word) {
                let wv = self.project_word(space, wid);
                if !wv.is_zero() {
                    acc = acc.add(&wv);
                }
            }
        }
        acc
    }

    /// Projects a single indexed word onto the basis.
    pub fn project_word(&self, space: &DistributionalSpace, word: WordId) -> SparseVector {
        let postings = space.index().postings(word);
        // Single sorted merge: collect (doc, tf) hits inside the basis.
        let mut hits: Vec<(DocId, f32)> = Vec::new();
        let entries = postings.entries();
        let (mut i, mut j) = (0, 0);
        while i < entries.len() && j < self.docs.len() {
            match entries[i].doc.cmp(&self.docs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    hits.push((entries[i].doc, entries[i].tf));
                    i += 1;
                    j += 1;
                }
            }
        }
        let df_b = hits.len();
        if df_b == 0 {
            return SparseVector::zero();
        }
        // Algorithm 1 line 9: recalculate idf over the thematic basis.
        let idf = (self.len() as f64 / df_b as f64).ln() as f32;
        if idf == 0.0 {
            // Word occurs in every basis document: carries no information
            // within the theme.
            return SparseVector::zero();
        }
        SparseVector::from_sorted(hits.into_iter().map(|(d, tf)| (d, tf * idf)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_corpus::{Corpus, CorpusConfig};
    use tep_index::InvertedIndex;

    fn space() -> DistributionalSpace {
        let corpus = Corpus::generate(&CorpusConfig::small());
        DistributionalSpace::new(InvertedIndex::build(&corpus))
    }

    #[test]
    fn empty_theme_basis_is_full_space() {
        let s = space();
        let basis = ThemeBasis::compute(&s, &Theme::empty());
        assert_eq!(basis.len(), s.index().num_docs());
    }

    #[test]
    fn unknown_tags_filter_space_completely() {
        let s = space();
        let basis = ThemeBasis::compute(&s, &Theme::new(["zzzz qqqq"]));
        assert!(basis.is_empty());
        assert!(basis.project_term(&s, "energy").is_zero());
    }

    #[test]
    fn thematic_basis_is_a_proper_subset() {
        let s = space();
        let basis = ThemeBasis::compute(&s, &Theme::new(["energy policy"]));
        assert!(!basis.is_empty());
        assert!(basis.len() < s.index().num_docs());
    }

    #[test]
    fn projection_support_is_within_basis() {
        let s = space();
        let basis = ThemeBasis::compute(&s, &Theme::new(["energy policy", "power generation"]));
        let v = basis.project_term(&s, "energy consumption");
        assert!(!v.is_zero());
        assert!(v.support().all(|d| basis.contains(d)));
    }

    #[test]
    fn projection_shrinks_vectors() {
        let s = space();
        let basis = ThemeBasis::compute(&s, &Theme::new(["energy policy"]));
        let full = s.term_vector("energy consumption");
        let proj = basis.project_term(&s, "energy consumption");
        assert!(proj.nnz() < full.nnz(), "{} !< {}", proj.nnz(), full.nnz());
    }

    #[test]
    fn projection_onto_empty_theme_recovers_full_weights() {
        let s = space();
        let basis = ThemeBasis::compute(&s, &Theme::empty());
        let full = s.term_vector("parking");
        let proj = basis.project_term(&s, "parking");
        // Same support; weights equal because |B| = |D| keeps idf intact.
        assert_eq!(full.nnz(), proj.nnz());
        for ((d1, w1), (d2, w2)) in full.iter().zip(proj.iter()) {
            assert_eq!(d1, d2);
            assert!((w1 - w2).abs() < 1e-5);
        }
    }

    #[test]
    fn in_domain_theme_disambiguates() {
        let s = space();
        // 'current' is ambiguous (electric current / water current). Within
        // an energy theme it should relate more to 'voltage' than to
        // 'river'; the full space is more confused.
        let energy = ThemeBasis::compute(&s, &Theme::new(["energy policy", "electrical industry"]));
        let cur = energy.project_term(&s, "current").normalized();
        let volt = energy.project_term(&s, "voltage").normalized();
        let river = energy.project_term(&s, "river").normalized();
        let d_volt = cur.euclidean_distance(&volt);
        let d_river = cur.euclidean_distance(&river);
        assert!(
            d_volt < d_river,
            "within energy theme, current–voltage ({d_volt}) should be closer than current–river ({d_river})"
        );
    }
}
