//! Parser for the paper's textual event/subscription notation.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! event        := themed | body
//! themed       := '(' theme ',' body ')'
//! theme        := '{' [ tag (',' tag)* ] '}'
//! body         := '{' item (',' item)* '}'
//! event item   := attribute (':' | '=') value
//! subscription := like event, but items may carry '~' after the
//!                 attribute and/or after the value, and may use the
//!                 relational operators '!=', '>', '>=', '<', '<='
//!                 (exact numeric constraints; '~' composes only with
//!                 equality)
//! ```
//!
//! Examples from the paper (§3.3–3.4):
//!
//! ```text
//! ({energy, appliances, building},
//!  {type: increased energy consumption event, device: computer})
//!
//! ({power, computers},
//!  {type= increased energy usage event~, device~= laptop~, office= room 112})
//! ```

use crate::error::ParseError;
use crate::event::Event;
use crate::operator::ComparisonOp;
use crate::predicate::Predicate;
use crate::subscription::Subscription;

/// Parses an [`Event`] from the textual notation. The theme part is
/// optional: `"{a: b}"` parses as a non-thematic event.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input or model violations
/// (duplicate attributes, empty payload).
///
/// ```
/// use tep_events::parse_event;
/// let e = parse_event("({energy}, {type: increased energy consumption event})")?;
/// assert_eq!(e.theme_tags(), ["energy"]);
/// # Ok::<(), tep_events::ParseError>(())
/// ```
pub fn parse_event(input: &str) -> Result<Event, ParseError> {
    let (tags, items) = split_parts(input)?;
    let mut builder = Event::builder().theme_tags(tags);
    for item in items {
        let (attr, op, value) = split_item(&item)?;
        if op != ComparisonOp::Eq {
            return Err(ParseError::Malformed(format!(
                "events carry values, not constraints: `{item}`"
            )));
        }
        let (attr, a_tilde) = strip_tilde(attr.trim());
        let (value, v_tilde) = strip_tilde(value.trim());
        if a_tilde || v_tilde {
            return Err(ParseError::Malformed(format!(
                "`~` is not allowed in events: `{item}`"
            )));
        }
        builder = builder.tuple(attr, value);
    }
    Ok(builder.build()?)
}

/// Parses a [`Subscription`] from the textual notation with the `~`
/// operator.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input or model violations.
///
/// ```
/// use tep_events::parse_subscription;
/// let s = parse_subscription("{type= increased energy usage event~, device~= laptop~}")?;
/// assert!(s.predicates()[0].is_value_approx());
/// assert!(s.predicates()[1].is_attribute_approx());
/// # Ok::<(), tep_events::ParseError>(())
/// ```
pub fn parse_subscription(input: &str) -> Result<Subscription, ParseError> {
    let (tags, items) = split_parts(input)?;
    let mut builder = Subscription::builder().theme_tags(tags);
    for item in items {
        let (attr, op, value) = split_item(&item)?;
        let (attr, a_tilde) = strip_tilde(attr.trim());
        let (value, v_tilde) = strip_tilde(value.trim());
        if v_tilde && !op.supports_approximation() {
            return Err(ParseError::Malformed(format!(
                "`~` only composes with equality: `{item}`"
            )));
        }
        let mut p = Predicate::with_op(attr, op, value);
        if a_tilde {
            p = p.approx_attribute();
        }
        if v_tilde {
            p = p.approx_value();
        }
        builder = builder.predicate(p);
    }
    Ok(builder.build()?)
}

/// Splits the optional theme block and the body into raw strings.
fn split_parts(input: &str) -> Result<(Vec<String>, Vec<String>), ParseError> {
    let s = input.trim();
    if let Some(inner) = s.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        // themed form: '{tags}' ',' '{items}'
        let inner = inner.trim();
        let theme_end = matching_brace(inner)?;
        let theme_block = &inner[..=theme_end];
        let rest = inner[theme_end + 1..].trim_start();
        let rest = rest
            .strip_prefix(',')
            .ok_or_else(|| ParseError::Malformed(truncate(rest)))?;
        let tags = split_brace_list(theme_block)?;
        let items = split_brace_list(rest.trim())?;
        Ok((tags, items))
    } else {
        Ok((Vec::new(), split_brace_list(s)?))
    }
}

/// Returns the index of the `}` matching the leading `{`.
fn matching_brace(s: &str) -> Result<usize, ParseError> {
    if !s.starts_with('{') {
        return Err(ParseError::Malformed(truncate(s)));
    }
    let mut depth = 0usize;
    for (i, ch) in s.char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i);
                }
            }
            _ => {}
        }
    }
    Err(ParseError::Malformed(truncate(s)))
}

/// Parses `'{' item (',' item)* '}'` into trimmed item strings; an empty
/// brace pair yields no items.
fn split_brace_list(s: &str) -> Result<Vec<String>, ParseError> {
    let inner = s
        .trim()
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| ParseError::Malformed(truncate(s)))?;
    Ok(inner
        .split(',')
        .map(str::trim)
        .filter(|i| !i.is_empty())
        .map(str::to_string)
        .collect())
}

/// Splits one item on its comparison operator (two-character operators
/// take precedence at the same position).
fn split_item(item: &str) -> Result<(&str, ComparisonOp, &str), ParseError> {
    const TWO: [(&str, ComparisonOp); 3] = [
        ("!=", ComparisonOp::Neq),
        (">=", ComparisonOp::Ge),
        ("<=", ComparisonOp::Le),
    ];
    const ONE: [(char, ComparisonOp); 4] = [
        ('=', ComparisonOp::Eq),
        (':', ComparisonOp::Eq),
        ('>', ComparisonOp::Gt),
        ('<', ComparisonOp::Lt),
    ];
    let bytes = item.as_bytes();
    for i in 0..bytes.len() {
        for (sym, op) in TWO {
            if item[i..].starts_with(sym) {
                return Ok((&item[..i], op, &item[i + sym.len()..]));
            }
        }
        for (sym, op) in ONE {
            if bytes[i] == sym as u8 {
                return Ok((&item[..i], op, &item[i + 1..]));
            }
        }
    }
    Err(ParseError::MissingSeparator(item.to_string()))
}

fn strip_tilde(s: &str) -> (&str, bool) {
    match s.strip_suffix('~') {
        Some(rest) => (rest.trim_end(), true),
        None => (s, false),
    }
}

fn truncate(s: &str) -> String {
    s.chars().take(40).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_event_example() {
        let e = parse_event(
            "({energy, appliances, building}, \
             {type: increased energy consumption event, \
              measurement unit: kilowatt hour, device: computer, office: room 112})",
        )
        .unwrap();
        assert_eq!(e.theme_tags(), ["energy", "appliances", "building"]);
        assert_eq!(e.tuples().len(), 4);
        assert_eq!(e.value_of("device"), Some("computer"));
    }

    #[test]
    fn parses_paper_subscription_example() {
        let s = parse_subscription(
            "({power, computers}, \
             {type= increased energy usage event~, device~= laptop~, office= room 112})",
        )
        .unwrap();
        assert_eq!(s.theme_tags(), ["power", "computers"]);
        let p = &s.predicates()[0];
        assert!(!p.is_attribute_approx() && p.is_value_approx());
        let p = &s.predicates()[1];
        assert!(p.is_attribute_approx() && p.is_value_approx());
        let p = &s.predicates()[2];
        assert!(p.is_exact());
    }

    #[test]
    fn unthemed_forms() {
        let e = parse_event("{a: 1, b: 2}").unwrap();
        assert!(e.is_non_thematic());
        let s = parse_subscription("{a~= 1~}").unwrap();
        assert!(s.theme_tags().is_empty());
        assert!(s.is_fully_approximate());
    }

    #[test]
    fn equals_and_colon_are_interchangeable() {
        let a = parse_event("{device: laptop}").unwrap();
        let b = parse_event("{device= laptop}").unwrap();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn tilde_in_event_is_rejected() {
        let err = parse_event("{device~: laptop}").unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_)));
    }

    #[test]
    fn missing_separator_is_reported() {
        let err = parse_subscription("{device laptop}").unwrap_err();
        assert_eq!(err, ParseError::MissingSeparator("device laptop".into()));
    }

    #[test]
    fn malformed_braces() {
        assert!(parse_event("device: laptop").is_err());
        assert!(parse_event("({a}, device: x)").is_err());
        assert!(parse_event("({a} {b: c})").is_err());
    }

    #[test]
    fn duplicate_attribute_surfaces_model_error() {
        let err = parse_event("{a: 1, a: 2}").unwrap_err();
        assert!(matches!(err, ParseError::Model(_)));
    }

    #[test]
    fn empty_theme_block() {
        let e = parse_event("({}, {a: 1})").unwrap();
        assert!(e.is_non_thematic());
    }

    #[test]
    fn relational_operators_parse() {
        let s =
            parse_subscription("{temperature~ > 30, noise <= 85, room != room 112, speed >= 50}")
                .unwrap();
        let p = &s.predicates()[0];
        assert_eq!(p.op(), crate::ComparisonOp::Gt);
        assert!(p.is_attribute_approx());
        assert_eq!(s.predicates()[1].op(), crate::ComparisonOp::Le);
        assert_eq!(s.predicates()[2].op(), crate::ComparisonOp::Neq);
        assert_eq!(s.predicates()[3].op(), crate::ComparisonOp::Ge);
        // Round-trips through Display.
        let reparsed = parse_subscription(&s.to_string()).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn tilde_on_relational_value_is_rejected() {
        let err = parse_subscription("{temperature > 30~}").unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_)));
    }

    #[test]
    fn relational_operator_in_event_is_rejected() {
        let err = parse_event("{temperature > 30}").unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_)));
    }

    #[test]
    fn round_trip_display_parse() {
        let s = parse_subscription("({power}, {type= x~, device~= laptop~, office= room 112})")
            .unwrap();
        let reparsed = parse_subscription(&s.to_string()).unwrap();
        assert_eq!(s, reparsed);
    }
}
