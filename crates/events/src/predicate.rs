//! Subscription predicates with the `~` approximation operator.

use crate::operator::ComparisonOp;
use crate::tuple::normalize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One conjunctive predicate of a subscription (paper §3.4): a quadruple
/// `(a, v, app_a, app_v)` where the boolean flags record whether the
/// attribute and the value may be **semantically approximated** (the `~`
/// operator).
///
/// ```
/// use tep_events::Predicate;
///
/// // device~ = laptop~  — both sides approximable
/// let p = Predicate::new("device", "laptop").approx_attribute().approx_value();
/// assert!(p.is_attribute_approx() && p.is_value_approx());
/// assert_eq!(p.to_string(), "device~= laptop~");
///
/// // office = room 112  — exact on both sides
/// let q = Predicate::new("office", "room 112");
/// assert!(!q.is_attribute_approx() && !q.is_value_approx());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    attribute: String,
    value: String,
    #[serde(default)]
    op: ComparisonOp,
    approx_attribute: bool,
    approx_value: bool,
}

impl Predicate {
    /// Creates an exact equality predicate (`a = v`).
    pub fn new(attribute: &str, value: &str) -> Predicate {
        Predicate::with_op(attribute, ComparisonOp::Eq, value)
    }

    /// Creates a predicate with an explicit comparison operator
    /// (`a > v`, `a != v`, …). Relational operators do not compose with
    /// `~` ([`ComparisonOp::supports_approximation`]); calling
    /// [`Predicate::approx_value`] on such a predicate is a no-op.
    pub fn with_op(attribute: &str, op: ComparisonOp, value: &str) -> Predicate {
        Predicate {
            attribute: normalize(attribute),
            value: normalize(value),
            op,
            approx_attribute: false,
            approx_value: false,
        }
    }

    /// Creates a fully approximate predicate (`a~ = v~`), the §5.2.3
    /// 100%-approximation form.
    pub fn approximate(attribute: &str, value: &str) -> Predicate {
        Predicate::new(attribute, value)
            .approx_attribute()
            .approx_value()
    }

    /// Marks the attribute as approximable (`a~`).
    pub fn approx_attribute(mut self) -> Predicate {
        self.approx_attribute = true;
        self
    }

    /// Marks the value as approximable (`v~`). No-op for relational
    /// operators, which compare numerically and cannot be approximated.
    pub fn approx_value(mut self) -> Predicate {
        if self.op.supports_approximation() {
            self.approx_value = true;
        }
        self
    }

    /// The comparison operator.
    pub fn op(&self) -> ComparisonOp {
        self.op
    }

    /// The attribute term.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The value term.
    pub fn value(&self) -> &str {
        &self.value
    }

    /// Whether the attribute side carries `~`.
    pub fn is_attribute_approx(&self) -> bool {
        self.approx_attribute
    }

    /// Whether the value side carries `~`.
    pub fn is_value_approx(&self) -> bool {
        self.approx_value
    }

    /// Whether the predicate is exact on both sides.
    pub fn is_exact(&self) -> bool {
        !self.approx_attribute && !self.approx_value
    }

    /// Number of approximated sides (0, 1 or 2) — the numerator
    /// contribution to the subscription's degree of approximation.
    pub fn approx_count(&self) -> usize {
        usize::from(self.approx_attribute) + usize::from(self.approx_value)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{} {}{}",
            self.attribute,
            if self.approx_attribute { "~" } else { "" },
            self.op.symbol(),
            self.value,
            if self.approx_value { "~" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_by_default() {
        let p = Predicate::new("office", "room 112");
        assert!(p.is_exact());
        assert_eq!(p.approx_count(), 0);
    }

    #[test]
    fn approximate_constructor_sets_both() {
        let p = Predicate::approximate("device", "laptop");
        assert_eq!(p.approx_count(), 2);
        assert!(!p.is_exact());
    }

    #[test]
    fn normalization_applies() {
        let p = Predicate::new("  Device ", "LapTop");
        assert_eq!(p.attribute(), "device");
        assert_eq!(p.value(), "laptop");
    }

    #[test]
    fn display_shows_tildes() {
        let p = Predicate::new("type", "increased energy usage event").approx_value();
        assert_eq!(p.to_string(), "type= increased energy usage event~");
    }

    #[test]
    fn relational_predicates_reject_value_tilde() {
        let p = Predicate::with_op("temperature", ComparisonOp::Gt, "30").approx_value();
        assert!(!p.is_value_approx());
        assert_eq!(p.op(), ComparisonOp::Gt);
        assert_eq!(p.to_string(), "temperature> 30");
        let q = Predicate::with_op("temperature", ComparisonOp::Gt, "30").approx_attribute();
        assert!(q.is_attribute_approx());
    }

    #[test]
    fn serde_round_trip() {
        let p = Predicate::approximate("device", "laptop");
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(p, serde_json::from_str::<Predicate>(&json).unwrap());
    }
}
