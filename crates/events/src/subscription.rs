//! Subscriptions: themes + conjunctive approximate predicates.

use crate::error::ModelError;
use crate::predicate::Predicate;
use crate::tuple::normalize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A subscription `s = (th, pr)` (paper §3.4): a set of theme tags and a
/// conjunction of predicates over attributes and values, each side
/// optionally approximable via the `~` operator.
///
/// ```
/// use tep_events::Subscription;
///
/// let s = Subscription::builder()
///     .theme_tags(["power", "computers"])
///     .predicate_approx_value("type", "increased energy usage event")
///     .predicate_full_approx("device", "laptop")
///     .predicate_exact("office", "room 112")
///     .build()?;
/// assert_eq!(s.predicates().len(), 3);
/// # Ok::<(), tep_events::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subscription {
    theme_tags: Vec<String>,
    predicates: Vec<Predicate>,
}

impl Subscription {
    /// Starts building a subscription.
    pub fn builder() -> SubscriptionBuilder {
        SubscriptionBuilder::default()
    }

    /// The theme tags (possibly empty).
    pub fn theme_tags(&self) -> &[String] {
        &self.theme_tags
    }

    /// The conjunctive predicates, in declaration order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The degree of approximation: the proportion of relaxed attributes
    /// and values over all attribute/value slots (paper §3.4; "an exact
    /// subscription has 0% degree of approximation").
    pub fn degree_of_approximation(&self) -> DegreeOfApproximation {
        let relaxed = self.predicates.iter().map(Predicate::approx_count).sum();
        DegreeOfApproximation::new(relaxed, self.predicates.len() * 2)
    }

    /// Whether every attribute and value is approximable (the §5.2.3
    /// worst-case workload).
    pub fn is_fully_approximate(&self) -> bool {
        self.predicates
            .iter()
            .all(|p| p.is_attribute_approx() && p.is_value_approx())
    }

    /// Returns a copy with every predicate side marked approximable —
    /// the transformation the evaluation applies to exact subscriptions
    /// (§5.2.3).
    pub fn fully_approximated(&self) -> Subscription {
        Subscription {
            theme_tags: self.theme_tags.clone(),
            predicates: self
                .predicates
                .iter()
                .map(|p| {
                    if p.op().supports_approximation() {
                        Predicate::approximate(p.attribute(), p.value())
                    } else {
                        // Relational predicates cannot be approximated;
                        // relax their attribute side only.
                        p.clone().approx_attribute()
                    }
                })
                .collect(),
        }
    }

    /// Whether this subscription shares at least one theme tag with
    /// `event`. Both sides' tags are normalized at construction, so the
    /// comparison is exact; a theme-less side (no tags) never overlaps.
    ///
    /// This is the broker's theme-routing gate: under
    /// `RoutingPolicy::ThemeOverlap`, a themed subscription only sees the
    /// events it shares a tag with.
    pub fn shares_theme_with(&self, event: &crate::Event) -> bool {
        // Tag lists are tiny (a handful of tags); a nested scan beats any
        // set machinery and allocates nothing.
        self.theme_tags
            .iter()
            .any(|t| event.theme_tags().contains(t))
    }

    /// Returns a copy with the given theme tags instead of the current
    /// ones (the evaluation associates one theme combination at a time,
    /// Fig. 6).
    pub fn with_theme_tags<I, S>(&self, tags: I) -> Subscription
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = self.clone();
        out.theme_tags = dedup_tags(tags);
        out
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({{{}}}, {{", self.theme_tags.join(", "))?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}})")
    }
}

/// A subscription's degree of approximation as an exact ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeOfApproximation {
    relaxed: usize,
    total: usize,
}

impl DegreeOfApproximation {
    /// Creates a degree from relaxed/total slot counts.
    pub fn new(relaxed: usize, total: usize) -> DegreeOfApproximation {
        DegreeOfApproximation { relaxed, total }
    }

    /// Number of relaxed (tilde-marked) slots.
    pub fn relaxed(self) -> usize {
        self.relaxed
    }

    /// Total attribute+value slots.
    pub fn total(self) -> usize {
        self.total
    }

    /// The ratio in `[0, 1]` (0 for an empty subscription).
    pub fn as_fraction(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.relaxed as f64 / self.total as f64
        }
    }
}

impl fmt::Display for DegreeOfApproximation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.as_fraction() * 100.0)
    }
}

/// Incremental [`Subscription`] construction.
#[derive(Debug, Default, Clone)]
pub struct SubscriptionBuilder {
    theme_tags: Vec<String>,
    predicates: Vec<Predicate>,
}

impl SubscriptionBuilder {
    /// Adds theme tags (normalized, deduplicated).
    pub fn theme_tags<I, S>(mut self, tags: I) -> SubscriptionBuilder
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for t in dedup_tags(tags) {
            if !self.theme_tags.contains(&t) {
                self.theme_tags.push(t);
            }
        }
        self
    }

    /// Adds one theme tag.
    pub fn theme_tag(self, tag: &str) -> SubscriptionBuilder {
        self.theme_tags([tag])
    }

    /// Adds an arbitrary predicate.
    pub fn predicate(mut self, predicate: Predicate) -> SubscriptionBuilder {
        self.predicates.push(predicate);
        self
    }

    /// Adds `attribute = value` (exact on both sides).
    pub fn predicate_exact(self, attribute: &str, value: &str) -> SubscriptionBuilder {
        self.predicate(Predicate::new(attribute, value))
    }

    /// Adds `attribute = value~`.
    pub fn predicate_approx_value(self, attribute: &str, value: &str) -> SubscriptionBuilder {
        self.predicate(Predicate::new(attribute, value).approx_value())
    }

    /// Adds `attribute~ = value`.
    pub fn predicate_approx_attribute(self, attribute: &str, value: &str) -> SubscriptionBuilder {
        self.predicate(Predicate::new(attribute, value).approx_attribute())
    }

    /// Adds `attribute~ = value~`.
    pub fn predicate_full_approx(self, attribute: &str, value: &str) -> SubscriptionBuilder {
        self.predicate(Predicate::approximate(attribute, value))
    }

    /// Adds a relational predicate (`attribute op value`), e.g.
    /// `temperature > 30`.
    pub fn predicate_cmp(
        self,
        attribute: &str,
        op: crate::ComparisonOp,
        value: &str,
    ) -> SubscriptionBuilder {
        self.predicate(Predicate::with_op(attribute, op, value))
    }

    /// Finalizes the subscription.
    ///
    /// # Errors
    ///
    /// Same invariants as events: at least one predicate, non-empty and
    /// pairwise-distinct attributes.
    pub fn build(self) -> Result<Subscription, ModelError> {
        if self.predicates.is_empty() {
            return Err(ModelError::Empty);
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if p.attribute().is_empty() {
                return Err(ModelError::EmptyAttribute);
            }
            if self.predicates[..i]
                .iter()
                .any(|q| q.attribute() == p.attribute())
            {
                return Err(ModelError::DuplicateAttribute(p.attribute().to_string()));
            }
        }
        Ok(Subscription {
            theme_tags: self.theme_tags,
            predicates: self.predicates,
        })
    }
}

fn dedup_tags<I, S>(tags: I) -> Vec<String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = Vec::new();
    for tag in tags {
        let t = normalize(tag.as_ref());
        if !t.is_empty() && !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Subscription {
        Subscription::builder()
            .theme_tags(["power", "computers"])
            .predicate_approx_value("type", "increased energy usage event")
            .predicate_full_approx("device", "laptop")
            .predicate_exact("office", "room 112")
            .build()
            .unwrap()
    }

    #[test]
    fn degree_of_approximation_counts_slots() {
        let s = example();
        // type: value only (1) + device: both (2) + office: none (0) = 3/6.
        let d = s.degree_of_approximation();
        assert_eq!(d.relaxed(), 3);
        assert_eq!(d.total(), 6);
        assert!((d.as_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(d.to_string(), "50%");
    }

    #[test]
    fn fully_approximated_transform() {
        let s = example();
        assert!(!s.is_fully_approximate());
        let full = s.fully_approximated();
        assert!(full.is_fully_approximate());
        assert_eq!(full.degree_of_approximation().as_fraction(), 1.0);
        assert_eq!(full.theme_tags(), s.theme_tags());
    }

    #[test]
    fn with_theme_tags_replaces() {
        let s = example().with_theme_tags(["Land Transport"]);
        assert_eq!(s.theme_tags(), ["land transport"]);
    }

    #[test]
    fn theme_overlap_with_events() {
        let event = crate::Event::builder()
            .theme_tags(["Computers", "networking"])
            .tuple("type", "x")
            .build()
            .unwrap();
        assert!(example().shares_theme_with(&event), "shared tag: computers");
        let disjoint = example().with_theme_tags(["energy"]);
        assert!(!disjoint.shares_theme_with(&event));
        // Theme-less sides never overlap.
        let themeless = example().with_theme_tags(Vec::<String>::new());
        assert!(!themeless.shares_theme_with(&event));
        let bare_event = crate::Event::builder().tuple("type", "x").build().unwrap();
        assert!(!example().shares_theme_with(&bare_event));
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let err = Subscription::builder()
            .predicate_exact("a", "1")
            .predicate_exact("a", "2")
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn empty_subscription_rejected() {
        assert_eq!(
            Subscription::builder().build().unwrap_err(),
            ModelError::Empty
        );
    }

    #[test]
    fn display_round_trips_notation() {
        let s = example();
        let text = s.to_string();
        assert!(text.starts_with("({power, computers}, {"));
        assert!(text.contains("device~= laptop~"));
        assert!(text.contains("office= room 112"));
    }

    #[test]
    fn degree_edge_cases() {
        assert_eq!(DegreeOfApproximation::new(0, 0).as_fraction(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = example();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(s, serde_json::from_str::<Subscription>(&json).unwrap());
    }
}
