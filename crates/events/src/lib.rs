//! # tep-events
//!
//! The data model of thematic event processing (paper §3.3–3.4):
//!
//! * [`Event`] — a pair of a **theme-tag set** and a set of
//!   **attribute–value tuples** (no two tuples share an attribute);
//! * [`Subscription`] — a pair of a theme-tag set and a conjunction of
//!   [`Predicate`]s, where the **`~` (tilde) operator** marks an attribute
//!   and/or value as *semantically approximable*;
//! * [`parse_event`] / [`parse_subscription`] — a parser for the paper's
//!   textual notation:
//!
//! ```text
//! ({power, computers},
//!  {type= increased energy usage event~, device~= laptop~, office= room 112})
//! ```
//!
//! The model is deliberately independent of the semantics layer: events
//! are pure data and serialize with serde (the broker's wire format).
//!
//! ```
//! use tep_events::{parse_subscription, DegreeOfApproximation};
//!
//! let s = parse_subscription(
//!     "({power, computers}, {type= increased energy usage event~, device~= laptop~})",
//! )?;
//! assert_eq!(s.theme_tags().len(), 2);
//! assert_eq!(s.predicates().len(), 2);
//! assert_eq!(s.degree_of_approximation(), DegreeOfApproximation::new(3, 4));
//! # Ok::<(), tep_events::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod event;
mod operator;
mod parser;
mod predicate;
mod subscription;
mod tuple;

pub use error::{ModelError, ParseError};
pub use event::{Event, EventBuilder};
pub use operator::ComparisonOp;
pub use parser::{parse_event, parse_subscription};
pub use predicate::Predicate;
pub use subscription::{DegreeOfApproximation, Subscription, SubscriptionBuilder};
pub use tuple::Tuple;
