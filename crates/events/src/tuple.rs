//! Attribute–value tuples.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One attribute–value pair of an event's payload (paper §3.3: an event's
/// tuple set `av ⊆ AV`).
///
/// Attribute and value are free-text terms, normalized to lowercase,
/// single-space-separated words — the same normalization the vocabulary
/// layers use, so matcher lookups are exact on normalized text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    attribute: String,
    value: String,
}

impl Tuple {
    /// Creates a tuple, normalizing both sides.
    pub fn new(attribute: &str, value: &str) -> Tuple {
        Tuple {
            attribute: normalize(attribute),
            value: normalize(value),
        }
    }

    /// The attribute term.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The value term.
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.attribute, self.value)
    }
}

/// Lowercases and collapses whitespace.
pub(crate) fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for word in raw.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        for ch in word.chars() {
            out.extend(ch.to_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_both_sides() {
        let t = Tuple::new(" Measurement  Unit ", "Kilowatt HOUR");
        assert_eq!(t.attribute(), "measurement unit");
        assert_eq!(t.value(), "kilowatt hour");
    }

    #[test]
    fn display_uses_colon_notation() {
        let t = Tuple::new("device", "laptop");
        assert_eq!(t.to_string(), "device: laptop");
    }

    #[test]
    fn serde_round_trip() {
        let t = Tuple::new("office", "room 112");
        let json = serde_json::to_string(&t).unwrap();
        let back: Tuple = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
