//! Comparison operators for predicates.
//!
//! The paper's language model keeps `!=`, `>` and `<` "out of the
//! language for the sake of discourse simplicity" (§3.4); this module
//! adds them back as the natural extension. Only the equality operator
//! composes with the `~` approximation — relational operators compare
//! numerically and are exact by definition.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The comparison operator of a predicate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComparisonOp {
    /// `=` (or `:`): equality; the only operator that supports `~`.
    #[default]
    Eq,
    /// `!=`: inequality (numeric when both sides parse as numbers,
    /// string inequality otherwise).
    Neq,
    /// `>`: numeric greater-than.
    Gt,
    /// `>=`: numeric greater-or-equal.
    Ge,
    /// `<`: numeric less-than.
    Lt,
    /// `<=`: numeric less-or-equal.
    Le,
}

impl ComparisonOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            ComparisonOp::Eq => "=",
            ComparisonOp::Neq => "!=",
            ComparisonOp::Gt => ">",
            ComparisonOp::Ge => ">=",
            ComparisonOp::Lt => "<",
            ComparisonOp::Le => "<=",
        }
    }

    /// Whether the `~` approximation may decorate a predicate using this
    /// operator.
    pub fn supports_approximation(self) -> bool {
        self == ComparisonOp::Eq
    }

    /// Evaluates the operator over an event value (left) and the
    /// subscription's reference value (right).
    ///
    /// Relational operators require both sides to parse as numbers
    /// (leading numeric token, so `30 degrees` parses as `30`); a
    /// non-numeric side makes them `false`. `Neq` falls back to string
    /// inequality when either side is non-numeric.
    pub fn evaluate(self, event_value: &str, wanted: &str) -> bool {
        match self {
            ComparisonOp::Eq => event_value == wanted,
            ComparisonOp::Neq => match (leading_number(event_value), leading_number(wanted)) {
                (Some(a), Some(b)) => a != b,
                _ => event_value != wanted,
            },
            op => {
                let (Some(a), Some(b)) = (leading_number(event_value), leading_number(wanted))
                else {
                    return false;
                };
                match op {
                    ComparisonOp::Gt => a > b,
                    ComparisonOp::Ge => a >= b,
                    ComparisonOp::Lt => a < b,
                    ComparisonOp::Le => a <= b,
                    _ => unreachable!("Eq/Neq handled above"),
                }
            }
        }
    }
}

impl fmt::Display for ComparisonOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Parses the leading numeric token of a value (`"30"`, `"30.5 degrees"`,
/// `"-4"`); `None` if the first token is not a number.
pub fn leading_number(value: &str) -> Option<f64> {
    value.split_whitespace().next()?.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip_display() {
        for op in [
            ComparisonOp::Eq,
            ComparisonOp::Neq,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
            ComparisonOp::Lt,
            ComparisonOp::Le,
        ] {
            assert_eq!(op.to_string(), op.symbol());
        }
    }

    #[test]
    fn only_equality_supports_tilde() {
        assert!(ComparisonOp::Eq.supports_approximation());
        for op in [
            ComparisonOp::Neq,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
            ComparisonOp::Lt,
            ComparisonOp::Le,
        ] {
            assert!(!op.supports_approximation());
        }
    }

    #[test]
    fn numeric_comparisons() {
        assert!(ComparisonOp::Gt.evaluate("31", "30"));
        assert!(!ComparisonOp::Gt.evaluate("30", "30"));
        assert!(ComparisonOp::Ge.evaluate("30", "30"));
        assert!(ComparisonOp::Lt.evaluate("-5", "0"));
        assert!(ComparisonOp::Le.evaluate("0.5", "0.5"));
    }

    #[test]
    fn leading_numeric_token_is_used() {
        assert!(ComparisonOp::Gt.evaluate("31.5 degrees celsius", "30"));
        assert_eq!(leading_number("room 112"), None);
        assert_eq!(leading_number("112 room"), Some(112.0));
    }

    #[test]
    fn non_numeric_relational_is_false() {
        assert!(!ComparisonOp::Gt.evaluate("hot", "30"));
        assert!(!ComparisonOp::Lt.evaluate("30", "cold"));
    }

    #[test]
    fn neq_numeric_and_string_fallback() {
        assert!(ComparisonOp::Neq.evaluate("31", "30"));
        assert!(!ComparisonOp::Neq.evaluate("30.0", "30"));
        assert!(ComparisonOp::Neq.evaluate("galway", "dublin"));
        assert!(!ComparisonOp::Neq.evaluate("galway", "galway"));
    }
}
