//! Error types of the event model and parser.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing events or subscriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// Two tuples/predicates were declared with the same attribute.
    DuplicateAttribute(String),
    /// A tuple or predicate had an empty attribute.
    EmptyAttribute,
    /// An event or subscription was declared with no tuples/predicates.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateAttribute(a) => {
                write!(f, "attribute `{a}` declared more than once")
            }
            ModelError::EmptyAttribute => write!(f, "attribute must not be empty"),
            ModelError::Empty => write!(f, "at least one attribute-value pair is required"),
        }
    }
}

impl Error for ModelError {}

/// Errors raised while parsing the textual notation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The input did not have the expected `{...}` / `({...}, {...})`
    /// shape.
    Malformed(String),
    /// A predicate/tuple was missing its `=`/`:` separator.
    MissingSeparator(String),
    /// The parsed structure violated a model invariant.
    Model(ModelError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed(ctx) => write!(f, "malformed input near `{ctx}`"),
            ParseError::MissingSeparator(item) => {
                write!(f, "missing `=` or `:` separator in `{item}`")
            }
            ParseError::Model(e) => write!(f, "invalid model: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> ParseError {
        ParseError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ModelError::DuplicateAttribute("type".into())
            .to_string()
            .contains("type"));
        assert!(ParseError::MissingSeparator("abc".into())
            .to_string()
            .contains("abc"));
        let wrapped: ParseError = ModelError::Empty.into();
        assert!(wrapped.to_string().contains("at least one"));
    }

    #[test]
    fn source_chains() {
        let wrapped: ParseError = ModelError::Empty.into();
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(std::error::Error::source(&ParseError::Malformed("x".into())).is_none());
    }
}
