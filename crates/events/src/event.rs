//! The thematic event: theme tags + attribute–value payload.

use crate::error::ModelError;
use crate::tuple::{normalize, Tuple};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A thematic event `e = (th, av)` (paper §3.3): a set of theme tags and a
/// set of attribute–value tuples with pairwise-distinct attributes.
///
/// ```
/// use tep_events::Event;
///
/// let e = Event::builder()
///     .theme_tags(["energy", "appliances", "building"])
///     .tuple("type", "increased energy consumption event")
///     .tuple("measurement unit", "kilowatt hour")
///     .tuple("device", "computer")
///     .tuple("office", "room 112")
///     .build()?;
/// assert_eq!(e.tuples().len(), 4);
/// assert_eq!(e.value_of("device"), Some("computer"));
/// # Ok::<(), tep_events::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    theme_tags: Vec<String>,
    tuples: Vec<Tuple>,
}

impl Event {
    /// Starts building an event.
    pub fn builder() -> EventBuilder {
        EventBuilder::default()
    }

    /// The theme tags (possibly empty: a non-thematic event).
    pub fn theme_tags(&self) -> &[String] {
        &self.theme_tags
    }

    /// The payload tuples, in declaration order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The value of `attribute` (normalized lookup), if present.
    pub fn value_of(&self, attribute: &str) -> Option<&str> {
        let key = normalize(attribute);
        self.tuples
            .iter()
            .find(|t| t.attribute() == key)
            .map(Tuple::value)
    }

    /// Whether the event carries no theme tags.
    pub fn is_non_thematic(&self) -> bool {
        self.theme_tags.is_empty()
    }

    /// Returns a copy with the given theme tags instead of the current
    /// ones — the evaluation associates one theme combination at a time
    /// (paper Fig. 6).
    pub fn with_theme_tags<I, S>(&self, tags: I) -> Event
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = self.clone();
        out.theme_tags.clear();
        for tag in tags {
            let t = normalize(tag.as_ref());
            if !t.is_empty() && !out.theme_tags.contains(&t) {
                out.theme_tags.push(t);
            }
        }
        out
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({{{}}}, {{", self.theme_tags.join(", "))?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}})")
    }
}

/// Incremental [`Event`] construction; validates attribute uniqueness at
/// [`EventBuilder::build`].
#[derive(Debug, Default, Clone)]
pub struct EventBuilder {
    theme_tags: Vec<String>,
    tuples: Vec<Tuple>,
}

impl EventBuilder {
    /// Adds theme tags (normalized, deduplicated, order preserved).
    pub fn theme_tags<I, S>(mut self, tags: I) -> EventBuilder
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for tag in tags {
            let t = normalize(tag.as_ref());
            if !t.is_empty() && !self.theme_tags.contains(&t) {
                self.theme_tags.push(t);
            }
        }
        self
    }

    /// Adds one theme tag.
    pub fn theme_tag(self, tag: &str) -> EventBuilder {
        self.theme_tags([tag])
    }

    /// Adds an attribute–value tuple.
    pub fn tuple(mut self, attribute: &str, value: &str) -> EventBuilder {
        self.tuples.push(Tuple::new(attribute, value));
        self
    }

    /// Finalizes the event.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] if no tuple was added,
    /// [`ModelError::EmptyAttribute`] for an empty attribute and
    /// [`ModelError::DuplicateAttribute`] if two tuples share an attribute
    /// (paper §3.3: "no two distinct tuples can have the same attribute").
    pub fn build(self) -> Result<Event, ModelError> {
        if self.tuples.is_empty() {
            return Err(ModelError::Empty);
        }
        for (i, t) in self.tuples.iter().enumerate() {
            if t.attribute().is_empty() {
                return Err(ModelError::EmptyAttribute);
            }
            if self.tuples[..i]
                .iter()
                .any(|p| p.attribute() == t.attribute())
            {
                return Err(ModelError::DuplicateAttribute(t.attribute().to_string()));
            }
        }
        Ok(Event {
            theme_tags: self.theme_tags,
            tuples: self.tuples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_duplicates() {
        let err = Event::builder()
            .tuple("type", "a")
            .tuple("Type", "b")
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateAttribute("type".into()));
    }

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(Event::builder().build().unwrap_err(), ModelError::Empty);
        let err = Event::builder().tuple("  ", "x").build().unwrap_err();
        assert_eq!(err, ModelError::EmptyAttribute);
    }

    #[test]
    fn theme_tags_deduplicate() {
        let e = Event::builder()
            .theme_tags(["Energy", "energy", "building"])
            .tuple("a", "b")
            .build()
            .unwrap();
        assert_eq!(e.theme_tags(), ["energy", "building"]);
        assert!(!e.is_non_thematic());
    }

    #[test]
    fn value_lookup_is_normalized() {
        let e = Event::builder()
            .tuple("Measurement Unit", "kWh")
            .build()
            .unwrap();
        assert_eq!(e.value_of("measurement  unit"), Some("kwh"));
        assert_eq!(e.value_of("missing"), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        let e = Event::builder()
            .theme_tags(["energy"])
            .tuple("device", "computer")
            .build()
            .unwrap();
        assert_eq!(e.to_string(), "({energy}, {device: computer})");
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::builder()
            .theme_tags(["energy", "building"])
            .tuple("type", "increased energy consumption event")
            .build()
            .unwrap();
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
