//! # tep-cep
//!
//! Complex event processing over **uncertain** single-event matches — the
//! downstream stage the paper points to in §3.5 ("the top-k mode ... to be
//! used later for complex event processing") and §6.2 (complex event
//! processing over uncertain events, Wasserkrug et al.).
//!
//! The paper's §2.1 motivating pattern
//!
//! ```text
//! pattern [ every a=StreetLightsEvents(a.type='energy consumption event'
//!                                      and a.area.consumptionPeak='true') ]
//! ```
//!
//! becomes, in this model, a [`Pattern`] over *approximate thematic
//! subscriptions*: each leaf is a [`tep_events::Subscription`] matched by
//! any [`tep_matcher::Matcher`], and every leaf match carries the matcher's
//! score. Composite detections combine leaf scores multiplicatively (the
//! independence assumption of probabilistic CEP), so downstream consumers
//! receive a confidence for every complex detection.
//!
//! Supported operators:
//!
//! * [`Pattern::single`] — one event matching a subscription;
//! * [`Pattern::sequence`] — leaves in timestamp order within a window;
//! * [`Pattern::all`] — every leaf observed (any order) within a window;
//! * [`Pattern::any`] — the first leaf to fire.
//!
//! ```
//! use tep_cep::{CepEngine, Pattern, Timestamped};
//! use tep_events::{parse_event, parse_subscription};
//! use tep_matcher::ExactMatcher;
//!
//! let increase = parse_subscription("{kind= increase}")?;
//! let overload = parse_subscription("{kind= overload}")?;
//! let mut engine = CepEngine::new(ExactMatcher::new(), 0.5);
//! engine.register(Pattern::sequence([Pattern::single(increase), Pattern::single(overload)], 10));
//!
//! engine.feed(&Timestamped::new(parse_event("{kind: increase}")?, 1));
//! let detections = engine.feed(&Timestamped::new(parse_event("{kind: overload}")?, 5));
//! assert_eq!(detections.len(), 1);
//! assert_eq!(detections[0].events.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod engine;
mod pattern;
#[cfg(test)]
mod proptests;

pub use engine::{CepEngine, Detection, PatternId, Timestamped};
pub use pattern::Pattern;
