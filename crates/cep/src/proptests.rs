//! Property-based tests of the engine invariants over random streams.

use crate::{CepEngine, Pattern, Timestamped};
use proptest::prelude::*;
use tep_events::{Event, Subscription};
use tep_matcher::ExactMatcher;

fn sub(kind: &str) -> Subscription {
    Subscription::builder()
        .predicate_exact("kind", kind)
        .build()
        .expect("static subscription")
}

fn ev(kind: &str) -> Event {
    Event::builder()
        .tuple("kind", kind)
        .build()
        .expect("static event")
}

/// A random stream of kinds 'a'..'d' with strictly increasing timestamps.
fn stream() -> impl Strategy<Value = Vec<Timestamped>> {
    proptest::collection::vec((0usize..4, 1u64..5), 0..40).prop_map(|steps| {
        let kinds = ["a", "b", "c", "d"];
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(k, dt)| {
                ts += dt;
                Timestamped::new(ev(kinds[k]), ts)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn sequence_detections_are_ordered_and_windowed(events in stream(), within in 1u64..30) {
        let mut engine = CepEngine::new(ExactMatcher::new(), 0.5);
        engine.register(Pattern::sequence(
            [Pattern::single(sub("a")), Pattern::single(sub("b"))],
            within,
        ));
        for input in &events {
            for d in engine.feed(input) {
                prop_assert_eq!(d.events.len(), 2);
                let (t0, t1) = (d.events[0].0, d.events[1].0);
                prop_assert!(t0 <= t1, "sequence out of order: {t0} > {t1}");
                prop_assert!(t1 - t0 <= within, "window violated: {} > {within}", t1 - t0);
                prop_assert_eq!(d.events[0].1.value_of("kind"), Some("a"));
                prop_assert_eq!(d.events[1].1.value_of("kind"), Some("b"));
                prop_assert!((d.probability - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_detections_respect_window(events in stream(), within in 1u64..30) {
        let mut engine = CepEngine::new(ExactMatcher::new(), 0.5);
        engine.register(Pattern::all(
            [Pattern::single(sub("a")), Pattern::single(sub("c"))],
            within,
        ));
        for input in &events {
            for d in engine.feed(input) {
                prop_assert_eq!(d.events.len(), 2);
                let min = d.events.iter().map(|(t, _)| *t).min().unwrap();
                let max = d.events.iter().map(|(t, _)| *t).max().unwrap();
                prop_assert!(max - min <= within);
            }
        }
    }

    #[test]
    fn single_pattern_fires_exactly_per_match(events in stream()) {
        let mut engine = CepEngine::new(ExactMatcher::new(), 0.5);
        engine.register(Pattern::single(sub("d")));
        let mut fired = 0usize;
        for input in &events {
            fired += engine.feed(input).len();
        }
        let expected = events
            .iter()
            .filter(|t| t.event.value_of("kind") == Some("d"))
            .count();
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn engine_is_deterministic(events in stream()) {
        let run = || {
            let mut engine = CepEngine::new(ExactMatcher::new(), 0.5);
            engine.register(Pattern::sequence(
                [Pattern::single(sub("a")), Pattern::single(sub("b"))],
                12,
            ));
            events.iter().flat_map(|i| engine.feed(i)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
