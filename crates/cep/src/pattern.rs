//! The pattern algebra.

use serde::{Deserialize, Serialize};
use std::fmt;
use tep_events::Subscription;

/// A complex-event pattern over approximate subscriptions.
///
/// Windows are expressed in the caller's logical time units (the engine
/// never consults a wall clock, so replayed histories and tests are
/// deterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// One event matching the subscription.
    Single(Subscription),
    /// Every branch matched, in timestamp order, with the whole span
    /// inside the window.
    Sequence {
        /// The ordered branches.
        branches: Vec<Pattern>,
        /// Maximum allowed `last.timestamp - first.timestamp`.
        within: u64,
    },
    /// Every branch matched in any order inside the window.
    All {
        /// The unordered branches.
        branches: Vec<Pattern>,
        /// Maximum allowed `last.timestamp - first.timestamp`.
        within: u64,
    },
    /// The first branch to complete fires the pattern.
    Any {
        /// The competing branches.
        branches: Vec<Pattern>,
    },
}

impl Pattern {
    /// A single-subscription pattern.
    pub fn single(subscription: Subscription) -> Pattern {
        Pattern::Single(subscription)
    }

    /// An ordered sequence within a logical-time window.
    pub fn sequence<I: IntoIterator<Item = Pattern>>(branches: I, within: u64) -> Pattern {
        Pattern::Sequence {
            branches: branches.into_iter().collect(),
            within,
        }
    }

    /// A conjunction (any order) within a logical-time window.
    pub fn all<I: IntoIterator<Item = Pattern>>(branches: I, within: u64) -> Pattern {
        Pattern::All {
            branches: branches.into_iter().collect(),
            within,
        }
    }

    /// A disjunction: first branch to complete wins.
    pub fn any<I: IntoIterator<Item = Pattern>>(branches: I) -> Pattern {
        Pattern::Any {
            branches: branches.into_iter().collect(),
        }
    }

    /// The number of leaf subscriptions in the pattern.
    pub fn leaf_count(&self) -> usize {
        match self {
            Pattern::Single(_) => 1,
            Pattern::Sequence { branches, .. } | Pattern::All { branches, .. } => {
                branches.iter().map(Pattern::leaf_count).sum()
            }
            Pattern::Any { branches } => branches.iter().map(Pattern::leaf_count).sum(),
        }
    }

    /// Iterates over every leaf subscription.
    pub fn leaves(&self) -> Vec<&Subscription> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'p>(&'p self, out: &mut Vec<&'p Subscription>) {
        match self {
            Pattern::Single(s) => out.push(s),
            Pattern::Sequence { branches, .. }
            | Pattern::All { branches, .. }
            | Pattern::Any { branches } => {
                for b in branches {
                    b.collect_leaves(out);
                }
            }
        }
    }

    /// Whether the pattern has at least one leaf (an empty composite can
    /// never fire).
    pub fn is_satisfiable(&self) -> bool {
        self.leaf_count() > 0
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Single(s) => write!(f, "single{s}"),
            Pattern::Sequence { branches, within } => {
                write!(f, "seq[within {within}](")?;
                join(f, branches)?;
                write!(f, ")")
            }
            Pattern::All { branches, within } => {
                write!(f, "all[within {within}](")?;
                join(f, branches)?;
                write!(f, ")")
            }
            Pattern::Any { branches } => {
                write!(f, "any(")?;
                join(f, branches)?;
                write!(f, ")")
            }
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, branches: &[Pattern]) -> fmt::Result {
    for (i, b) in branches.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{b}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_events::Subscription;

    fn sub(kind: &str) -> Subscription {
        Subscription::builder()
            .predicate_exact("kind", kind)
            .build()
            .unwrap()
    }

    #[test]
    fn leaf_count_recurses() {
        let p = Pattern::sequence(
            [
                Pattern::single(sub("a")),
                Pattern::all([Pattern::single(sub("b")), Pattern::single(sub("c"))], 5),
            ],
            10,
        );
        assert_eq!(p.leaf_count(), 3);
        assert_eq!(p.leaves().len(), 3);
        assert!(p.is_satisfiable());
    }

    #[test]
    fn empty_composite_is_unsatisfiable() {
        let p = Pattern::any([]);
        assert!(!p.is_satisfiable());
    }

    #[test]
    fn display_shows_structure() {
        let p = Pattern::sequence([Pattern::single(sub("a"))], 7);
        let text = p.to_string();
        assert!(text.starts_with("seq[within 7]("));
        assert!(text.contains("kind= a"));
    }

    #[test]
    fn serde_round_trip() {
        let p = Pattern::all([Pattern::single(sub("x")), Pattern::single(sub("y"))], 3);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(p, serde_json::from_str::<Pattern>(&json).unwrap());
    }
}
