//! The pattern-evaluation engine.

use crate::pattern::Pattern;
use std::fmt;
use tep_events::Event;
use tep_matcher::Matcher;

/// An event with a logical timestamp (the engine never reads a wall
/// clock, so histories replay deterministically).
#[derive(Debug, Clone, PartialEq)]
pub struct Timestamped {
    /// The event payload.
    pub event: Event,
    /// Logical time in caller-chosen units.
    pub timestamp: u64,
}

impl Timestamped {
    /// Pairs an event with its logical timestamp.
    pub fn new(event: Event, timestamp: u64) -> Timestamped {
        Timestamped { event, timestamp }
    }
}

/// Identifier of a registered pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(pub u64);

impl fmt::Display for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A completed complex detection.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The pattern that fired.
    pub pattern: PatternId,
    /// The constituent `(timestamp, event)` pairs, in match order.
    pub events: Vec<(u64, Event)>,
    /// Product of the constituent leaf scores — the detection's
    /// confidence under the probabilistic-CEP independence assumption.
    pub probability: f64,
}

/// A completed sub-match inside the instance tree.
#[derive(Debug, Clone)]
struct Completion {
    score: f64,
    events: Vec<(u64, Event)>,
    first_ts: u64,
    last_ts: u64,
}

/// Mutable evaluation state mirroring the pattern tree.
#[derive(Debug)]
enum NodeState {
    Single,
    Sequence {
        states: Vec<NodeState>,
        progress: usize,
        acc_events: Vec<(u64, Event)>,
        acc_score: f64,
        start_ts: u64,
    },
    All {
        states: Vec<NodeState>,
        done: Vec<Option<Completion>>,
    },
    Any {
        states: Vec<NodeState>,
    },
}

impl NodeState {
    fn for_pattern(pattern: &Pattern) -> NodeState {
        match pattern {
            Pattern::Single(_) => NodeState::Single,
            Pattern::Sequence { branches, .. } => NodeState::Sequence {
                states: branches.iter().map(NodeState::for_pattern).collect(),
                progress: 0,
                acc_events: Vec::new(),
                acc_score: 1.0,
                start_ts: 0,
            },
            Pattern::All { branches, .. } => NodeState::All {
                states: branches.iter().map(NodeState::for_pattern).collect(),
                done: branches.iter().map(|_| None).collect(),
            },
            Pattern::Any { branches } => NodeState::Any {
                states: branches.iter().map(NodeState::for_pattern).collect(),
            },
        }
    }

    fn reset(&mut self, pattern: &Pattern) {
        *self = NodeState::for_pattern(pattern);
    }
}

/// Evaluates registered [`Pattern`]s against a timestamped event stream,
/// using any [`Matcher`] for the leaves.
///
/// Semantics (documented simplifications of full CEP engines):
///
/// * each composite keeps **one active partial instantiation**
///   (latest-match-wins), resetting after every firing;
/// * one input event may satisfy several branches of an `all`/`any`
///   composite simultaneously;
/// * a leaf matches when the matcher's best-mapping score reaches the
///   engine's `leaf_threshold`.
pub struct CepEngine<M> {
    matcher: M,
    leaf_threshold: f64,
    patterns: Vec<(PatternId, Pattern, NodeState)>,
    next_id: u64,
}

impl<M: Matcher> CepEngine<M> {
    /// Creates an engine over `matcher`; leaves fire at scores ≥
    /// `leaf_threshold`.
    pub fn new(matcher: M, leaf_threshold: f64) -> CepEngine<M> {
        CepEngine {
            matcher,
            leaf_threshold,
            patterns: Vec::new(),
            next_id: 0,
        }
    }

    /// Registers a pattern; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the pattern has no leaves (it could never fire).
    pub fn register(&mut self, pattern: Pattern) -> PatternId {
        assert!(
            pattern.is_satisfiable(),
            "pattern has no leaf subscriptions"
        );
        let id = PatternId(self.next_id);
        self.next_id += 1;
        let state = NodeState::for_pattern(&pattern);
        self.patterns.push((id, pattern, state));
        id
    }

    /// Removes a pattern; returns whether it existed.
    pub fn unregister(&mut self, id: PatternId) -> bool {
        let before = self.patterns.len();
        self.patterns.retain(|(pid, _, _)| *pid != id);
        self.patterns.len() != before
    }

    /// Number of registered patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Feeds one timestamped event; returns every detection it completed.
    pub fn feed(&mut self, input: &Timestamped) -> Vec<Detection> {
        let mut detections = Vec::new();
        for (id, pattern, state) in &mut self.patterns {
            if let Some(c) = offer(pattern, state, &self.matcher, self.leaf_threshold, input) {
                detections.push(Detection {
                    pattern: *id,
                    events: c.events,
                    probability: c.score,
                });
            }
        }
        detections
    }
}

impl<M: Matcher> fmt::Debug for CepEngine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CepEngine")
            .field("patterns", &self.patterns.len())
            .field("leaf_threshold", &self.leaf_threshold)
            .finish()
    }
}

/// Offers `input` to the node; returns a completion if the node fired.
fn offer<M: Matcher>(
    pattern: &Pattern,
    state: &mut NodeState,
    matcher: &M,
    threshold: f64,
    input: &Timestamped,
) -> Option<Completion> {
    match (pattern, state) {
        (Pattern::Single(sub), NodeState::Single) => {
            let result = matcher.match_event(sub, &input.event);
            let score = result.score();
            if !result.is_empty() && score >= threshold {
                Some(Completion {
                    score,
                    events: vec![(input.timestamp, input.event.clone())],
                    first_ts: input.timestamp,
                    last_ts: input.timestamp,
                })
            } else {
                None
            }
        }
        (
            Pattern::Sequence { branches, within },
            NodeState::Sequence {
                states,
                progress,
                acc_events,
                acc_score,
                start_ts,
            },
        ) => {
            // Expire a stale partial instantiation before offering.
            if *progress > 0 && input.timestamp.saturating_sub(*start_ts) > *within {
                *progress = 0;
                acc_events.clear();
                *acc_score = 1.0;
                for (b, s) in branches.iter().zip(states.iter_mut()) {
                    s.reset(b);
                }
            }
            let idx = *progress;
            let completion = offer(&branches[idx], &mut states[idx], matcher, threshold, input)?;
            if idx == 0 {
                *start_ts = completion.first_ts;
            } else if completion.last_ts.saturating_sub(*start_ts) > *within {
                // Completed, but outside the window: restart from scratch.
                *progress = 0;
                acc_events.clear();
                *acc_score = 1.0;
                for (b, s) in branches.iter().zip(states.iter_mut()) {
                    s.reset(b);
                }
                return None;
            }
            acc_events.extend(completion.events);
            *acc_score *= completion.score;
            *progress += 1;
            if *progress == branches.len() {
                let fired = Completion {
                    score: *acc_score,
                    events: std::mem::take(acc_events),
                    first_ts: *start_ts,
                    last_ts: completion.last_ts,
                };
                *progress = 0;
                *acc_score = 1.0;
                for (b, s) in branches.iter().zip(states.iter_mut()) {
                    s.reset(b);
                }
                Some(fired)
            } else {
                None
            }
        }
        (Pattern::All { branches, within }, NodeState::All { states, done }) => {
            for (i, branch) in branches.iter().enumerate() {
                if let Some(c) = offer(branch, &mut states[i], matcher, threshold, input) {
                    // Latest completion wins.
                    done[i] = Some(c);
                }
            }
            // Expire completions that can no longer co-occur with the
            // current time inside the window.
            for slot in done.iter_mut() {
                if let Some(c) = slot {
                    if input.timestamp.saturating_sub(c.last_ts) > *within {
                        *slot = None;
                    }
                }
            }
            if done.iter().all(Option::is_some) {
                let mut events = Vec::new();
                let mut score = 1.0;
                let mut first_ts = u64::MAX;
                let mut last_ts = 0u64;
                for c in done.iter().flatten() {
                    first_ts = first_ts.min(c.first_ts);
                    last_ts = last_ts.max(c.last_ts);
                    score *= c.score;
                }
                if last_ts.saturating_sub(first_ts) > *within {
                    return None;
                }
                for c in done.iter_mut().map(Option::take) {
                    let c = c.expect("checked all done");
                    events.extend(c.events);
                }
                for (b, s) in branches.iter().zip(states.iter_mut()) {
                    s.reset(b);
                }
                Some(Completion {
                    score,
                    events,
                    first_ts,
                    last_ts,
                })
            } else {
                None
            }
        }
        (Pattern::Any { branches }, NodeState::Any { states }) => {
            let mut winner = None;
            for (i, branch) in branches.iter().enumerate() {
                if winner.is_none() {
                    winner = offer(branch, &mut states[i], matcher, threshold, input);
                }
            }
            if winner.is_some() {
                for (b, s) in branches.iter().zip(states.iter_mut()) {
                    s.reset(b);
                }
            }
            winner
        }
        _ => unreachable!("state tree always mirrors the pattern tree"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_events::{parse_event, parse_subscription, Subscription};
    use tep_matcher::ExactMatcher;

    fn sub(kind: &str) -> Subscription {
        parse_subscription(&format!("{{kind= {kind}}}")).unwrap()
    }

    fn ev(kind: &str) -> Event {
        parse_event(&format!("{{kind: {kind}}}")).unwrap()
    }

    fn engine() -> CepEngine<ExactMatcher> {
        CepEngine::new(ExactMatcher::new(), 0.5)
    }

    #[test]
    fn single_pattern_fires_per_match() {
        let mut e = engine();
        let id = e.register(Pattern::single(sub("a")));
        assert_eq!(e.feed(&Timestamped::new(ev("a"), 1)).len(), 1);
        assert!(e.feed(&Timestamped::new(ev("b"), 2)).is_empty());
        let d = e.feed(&Timestamped::new(ev("a"), 3));
        assert_eq!(d[0].pattern, id);
        assert_eq!(d[0].probability, 1.0);
        assert_eq!(d[0].events[0].0, 3);
    }

    #[test]
    fn sequence_requires_order_and_window() {
        let mut e = engine();
        e.register(Pattern::sequence(
            [Pattern::single(sub("a")), Pattern::single(sub("b"))],
            10,
        ));
        // Wrong order first: 'b' alone does not advance.
        assert!(e.feed(&Timestamped::new(ev("b"), 1)).is_empty());
        assert!(e.feed(&Timestamped::new(ev("a"), 2)).is_empty());
        let d = e.feed(&Timestamped::new(ev("b"), 8));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].events.len(), 2);
        assert_eq!(d[0].events[0].0, 2);
        assert_eq!(d[0].events[1].0, 8);
    }

    #[test]
    fn sequence_window_expiry_resets() {
        let mut e = engine();
        e.register(Pattern::sequence(
            [Pattern::single(sub("a")), Pattern::single(sub("b"))],
            5,
        ));
        assert!(e.feed(&Timestamped::new(ev("a"), 1)).is_empty());
        // Too late: partial instantiation expired; 'b' does not fire …
        assert!(e.feed(&Timestamped::new(ev("b"), 20)).is_empty());
        // … and the sequence restarted cleanly.
        assert!(e.feed(&Timestamped::new(ev("a"), 21)).is_empty());
        assert_eq!(e.feed(&Timestamped::new(ev("b"), 23)).len(), 1);
    }

    #[test]
    fn all_matches_in_any_order() {
        let mut e = engine();
        e.register(Pattern::all(
            [Pattern::single(sub("x")), Pattern::single(sub("y"))],
            10,
        ));
        assert!(e.feed(&Timestamped::new(ev("y"), 1)).is_empty());
        let d = e.feed(&Timestamped::new(ev("x"), 4));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].events.len(), 2);
    }

    #[test]
    fn all_expires_stale_halves() {
        let mut e = engine();
        e.register(Pattern::all(
            [Pattern::single(sub("x")), Pattern::single(sub("y"))],
            5,
        ));
        assert!(e.feed(&Timestamped::new(ev("y"), 1)).is_empty());
        // y expired by the time x arrives.
        assert!(e.feed(&Timestamped::new(ev("x"), 20)).is_empty());
        // A fresh y inside the window completes with the stored x.
        assert_eq!(e.feed(&Timestamped::new(ev("y"), 22)).len(), 1);
    }

    #[test]
    fn any_fires_on_first_branch() {
        let mut e = engine();
        e.register(Pattern::any([
            Pattern::single(sub("p")),
            Pattern::single(sub("q")),
        ]));
        assert_eq!(e.feed(&Timestamped::new(ev("q"), 1)).len(), 1);
        assert_eq!(e.feed(&Timestamped::new(ev("p"), 2)).len(), 1);
        assert!(e.feed(&Timestamped::new(ev("z"), 3)).is_empty());
    }

    #[test]
    fn nested_patterns_compose() {
        // seq( a, all(b, c) ) within 100.
        let mut e = engine();
        e.register(Pattern::sequence(
            [
                Pattern::single(sub("a")),
                Pattern::all([Pattern::single(sub("b")), Pattern::single(sub("c"))], 50),
            ],
            100,
        ));
        assert!(e.feed(&Timestamped::new(ev("a"), 1)).is_empty());
        assert!(e.feed(&Timestamped::new(ev("c"), 5)).is_empty());
        let d = e.feed(&Timestamped::new(ev("b"), 9));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].events.len(), 3);
    }

    #[test]
    fn unregister_stops_evaluation() {
        let mut e = engine();
        let id = e.register(Pattern::single(sub("a")));
        assert!(e.unregister(id));
        assert!(!e.unregister(id));
        assert!(e.feed(&Timestamped::new(ev("a"), 1)).is_empty());
        assert_eq!(e.pattern_count(), 0);
    }

    #[test]
    #[should_panic(expected = "no leaf")]
    fn registering_unsatisfiable_pattern_panics() {
        engine().register(Pattern::any([]));
    }

    #[test]
    fn probability_multiplies_leaf_scores() {
        // A stub matcher with fractional scores.
        use tep_matcher::{MatcherConfig, ProbabilisticMatcher};
        use tep_semantics::{SemanticMeasure, Theme};

        #[derive(Debug)]
        struct Half;
        impl SemanticMeasure for Half {
            fn relatedness(&self, a: &str, _: &Theme, b: &str, _: &Theme) -> f64 {
                if a == b {
                    1.0
                } else {
                    0.5
                }
            }
        }
        let approx = |kind: &str| {
            Subscription::builder()
                .predicate_full_approx("kind", kind)
                .build()
                .unwrap()
        };
        let mut e = CepEngine::new(ProbabilisticMatcher::new(Half, MatcherConfig::top1()), 0.1);
        e.register(Pattern::sequence(
            [Pattern::single(approx("a")), Pattern::single(approx("b"))],
            10,
        ));
        // Each leaf matches any `kind` event at 0.5 (attr exact ×
        // value 0.5), so a completed sequence carries 0.5 · 0.5.
        assert!(e.feed(&Timestamped::new(ev("q"), 1)).is_empty());
        let d = e.feed(&Timestamped::new(ev("r"), 2));
        assert_eq!(d.len(), 1);
        assert!((d[0].probability - 0.25).abs() < 1e-12);
    }
}
