//! A concurrent space-saving sketch for top-k heavy hitters.
//!
//! Tracks the approximately-hottest string keys (themes, terms) in a
//! fixed slot table — memory is bounded by construction, never by the
//! key universe. The algorithm is the classic *space-saving* scheme
//! (Metwally et al.) adapted to concurrent relaxed atomics:
//!
//! * a slot is `(key hash, count)`, both `AtomicU64`;
//! * recording an already-tracked key is one relaxed `fetch_add` —
//!   wait-free, no locks, the steady-state hot path;
//! * an untracked key claims an empty slot with one CAS, or — when its
//!   bounded probe window is full — replaces the window's minimum-count
//!   slot, *inheriting* that count (the space-saving overestimate that
//!   preserves the "no heavy hitter is ever lost" property);
//! * a failed replacement CAS is **not** retried: the record is counted
//!   in [`TopKSketch::dropped`] and the caller moves on, keeping the
//!   operation bounded under contention.
//!
//! Hash→name resolution lives in a `RwLock` map written only on slot
//! claims (rare by design); reads never block writes on the count path.
//! Counts are approximate and may over-report after an eviction — fine
//! for "what is hot right now", which is all a monitoring surface needs.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Slots inspected per key; bounds the work of any single `record`.
const PROBE_WINDOW: usize = 8;

/// FNV-1a, remapping the (vanishing) zero hash to 1 so that 0 can mean
/// "empty slot".
fn key_hash(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h.max(1)
}

struct Slot {
    key: AtomicU64,
    count: AtomicU64,
}

/// The concurrent top-k sketch; see the module docs.
///
/// Shareable by reference across threads; all methods take `&self`.
pub struct TopKSketch {
    slots: Box<[Slot]>,
    names: RwLock<HashMap<u64, String>>,
    dropped: AtomicU64,
}

impl fmt::Debug for TopKSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TopKSketch")
            .field("capacity", &self.slots.len())
            .field("tracked", &self.tracked())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TopKSketch {
    /// A sketch with `capacity` slots (clamped to at least
    /// [`PROBE_WINDOW`]). Size it at 2–4× the `k` you intend to query:
    /// space-saving's count error shrinks with spare slots.
    pub fn new(capacity: usize) -> TopKSketch {
        let capacity = capacity.max(PROBE_WINDOW);
        TopKSketch {
            slots: (0..capacity)
                .map(|_| Slot {
                    key: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })
                .collect(),
            names: RwLock::new(HashMap::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one occurrence of `key`.
    pub fn record(&self, key: &str) {
        self.record_n(key, 1);
    }

    /// Records `n` occurrences of `key`.
    pub fn record_n(&self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        let hash = key_hash(key);
        let len = self.slots.len();
        let start = (hash as usize) % len;
        // Pass 1: already tracked, or an empty slot to claim.
        for i in 0..PROBE_WINDOW.min(len) {
            let slot = &self.slots[(start + i) % len];
            let current = slot.key.load(Ordering::Relaxed);
            if current == hash {
                slot.count.fetch_add(n, Ordering::Relaxed);
                return;
            }
            if current == 0
                && slot
                    .key
                    .compare_exchange(0, hash, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.set_name(hash, key);
                slot.count.fetch_add(n, Ordering::Relaxed);
                return;
            }
            // Someone else won the slot; if it was for our key, join it.
            if slot.key.load(Ordering::Relaxed) == hash {
                slot.count.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
        // Pass 2: window full — space-saving replacement of its minimum.
        let mut min: Option<(usize, u64, u64)> = None;
        for i in 0..PROBE_WINDOW.min(len) {
            let idx = (start + i) % len;
            let k = self.slots[idx].key.load(Ordering::Relaxed);
            let c = self.slots[idx].count.load(Ordering::Relaxed);
            if min.as_ref().is_none_or(|(_, _, mc)| c < *mc) {
                min = Some((idx, k, c));
            }
        }
        let Some((idx, old_key, _)) = min else { return };
        let slot = &self.slots[idx];
        if slot
            .key
            .compare_exchange(old_key, hash, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            // The new key inherits the evicted count (the documented
            // space-saving overestimate) plus its own increment.
            slot.count.fetch_add(n, Ordering::Relaxed);
            let mut names = self.names.write().unwrap_or_else(|e| e.into_inner());
            names.remove(&old_key);
            names.insert(hash, key.to_string());
        } else {
            // Contended replacement: drop rather than loop.
            self.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn set_name(&self, hash: u64, key: &str) {
        self.names
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(hash, key.to_string());
    }

    /// The `k` hottest keys as `(name, approximate count)`, hottest
    /// first. Ties break toward earlier slots; keys whose name was
    /// evicted mid-read are skipped.
    pub fn top(&self, k: usize) -> Vec<(String, u64)> {
        let names = self.names.read().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<(String, u64)> = self
            .slots
            .iter()
            .filter_map(|slot| {
                let key = slot.key.load(Ordering::Relaxed);
                if key == 0 {
                    return None;
                }
                let count = slot.count.load(Ordering::Relaxed);
                names.get(&key).map(|name| (name.clone(), count))
            })
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Visits the `k` hottest keys (hottest first, `k` capped at 16)
    /// without allocating: the selection runs over a fixed stack array
    /// and names are borrowed from the resolution map. Ties break by
    /// slot order rather than by name — use [`TopKSketch::top`] when a
    /// deterministic tie order matters more than staying off the heap
    /// (the flight recorder's frame tick is the opposite trade).
    pub fn for_each_top(&self, k: usize, mut emit: impl FnMut(&str, u64)) {
        const MAX: usize = 16;
        let k = k.min(MAX);
        if k == 0 {
            return;
        }
        let mut best = [(0u64, 0u64); MAX]; // (key hash, count), descending
        let mut len = 0usize;
        for slot in self.slots.iter() {
            let key = slot.key.load(Ordering::Relaxed);
            if key == 0 {
                continue;
            }
            let count = slot.count.load(Ordering::Relaxed);
            let mut insert_at = len;
            while insert_at > 0 && best[insert_at - 1].1 < count {
                insert_at -= 1;
            }
            if insert_at >= k {
                continue;
            }
            if len < k {
                len += 1;
            }
            for j in (insert_at + 1..len).rev() {
                best[j] = best[j - 1];
            }
            best[insert_at] = (key, count);
        }
        let names = self.names.read().unwrap_or_else(|e| e.into_inner());
        for &(key, count) in &best[..len] {
            if let Some(name) = names.get(&key) {
                emit(name, count);
            }
        }
    }

    /// Occupied slots (distinct keys currently tracked).
    pub fn tracked(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.key.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// Records abandoned because a replacement CAS lost its race.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn heavy_hitters_surface_in_order() {
        let sketch = TopKSketch::new(64);
        for (key, n) in [("alpha", 50u64), ("beta", 30), ("gamma", 10), ("delta", 3)] {
            for _ in 0..n {
                sketch.record(key);
            }
        }
        let top = sketch.top(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], ("alpha".to_string(), 50));
        assert_eq!(top[1], ("beta".to_string(), 30));
        assert_eq!(top[2], ("gamma".to_string(), 10));
        assert_eq!(sketch.tracked(), 4);
        assert_eq!(sketch.dropped(), 0);
    }

    #[test]
    fn record_n_and_zero_are_handled() {
        let sketch = TopKSketch::new(16);
        sketch.record_n("bulk", 1_000);
        sketch.record_n("bulk", 0);
        assert_eq!(sketch.top(1), vec![("bulk".to_string(), 1_000)]);
    }

    #[test]
    fn eviction_keeps_true_heavy_hitters() {
        // Tiny sketch, many distinct cold keys, one hot key: the hot key
        // must survive the churn (space-saving's core guarantee) and its
        // count may only over-report, never under-report.
        let sketch = TopKSketch::new(PROBE_WINDOW);
        for round in 0..200 {
            sketch.record("hot");
            sketch.record(&format!("cold-{round}"));
        }
        let top = sketch.top(1);
        assert_eq!(top[0].0, "hot", "top slots: {:?}", sketch.top(8));
        assert!(
            top[0].1 >= 200,
            "space-saving counts over-report, never under: {}",
            top[0].1
        );
    }

    #[test]
    fn for_each_top_agrees_with_top() {
        let sketch = TopKSketch::new(64);
        for (key, n) in [
            ("alpha", 50u64),
            ("beta", 30),
            ("gamma", 10),
            ("delta", 3),
            ("epsilon", 1),
        ] {
            sketch.record_n(key, n);
        }
        let mut visited: Vec<(String, u64)> = Vec::new();
        sketch.for_each_top(3, |name, count| visited.push((name.to_string(), count)));
        assert_eq!(visited, sketch.top(3));
        // k = 0 visits nothing; k past the tracked set visits everything.
        sketch.for_each_top(0, |_, _| panic!("k = 0 must not emit"));
        let mut all = 0usize;
        sketch.for_each_top(16, |_, _| all += 1);
        assert_eq!(all, 5);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let sketch = Arc::new(TopKSketch::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let sketch = Arc::clone(&sketch);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        sketch.record("shared");
                        sketch.record(&format!("t{t}-{}", i % 20));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let top = sketch.top(1);
        assert_eq!(top[0].0, "shared");
        // 20k records of "shared"; eviction inheritance can only add.
        assert!(top[0].1 >= 20_000, "count {}", top[0].1);
    }
}
