//! Sharded exact cost-attribution table for sampled dispatch charging.
//!
//! The broker's cost-attribution subsystem charges a deterministic
//! 1-in-k sample of dispatches to the entities that caused the work:
//! subscription-index entries, themes, and subscribers. Heavy hitters
//! go through [`crate::topk::TopKSketch`]; this module supplies the
//! complement — **exact** per-entity nanosecond totals in a sharded,
//! slot-indexed table that the hot path can charge without allocating.
//!
//! Layout: entities are keyed by a dense `u64` index (the subscription
//! index's entry slot, or a subscriber id). The index picks a shard
//! (`index % SHARDS`) and a row within it (`index / SHARDS`); each
//! shard is a `RwLock<Vec<CostCell>>` whose cells hold relaxed atomics
//! plus a label preformatted at registration time. The charge path
//! takes the shard **read** lock and does three `fetch_add`s — writers
//! (registration, growth) are rare and confined to subscribe time, so
//! readers essentially never block and never allocate.
//!
//! Slots can be recycled (the subscription index free-lists entry
//! slots on unsubscribe), so every cell is stamped with the owning
//! entity's unique id (`uid`). A charge whose uid does not match the
//! cell's stamp is a charge against a departed entity racing a reuse;
//! it is dropped rather than misattributed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Shard count; a power of two so `index % SHARDS` is a mask.
const SHARDS: usize = 8;

/// One entity's cost cell. `stamp` is the owner's uid plus one, so
/// zero means "vacant" without reserving a uid value.
#[derive(Debug)]
struct CostCell {
    stamp: AtomicU64,
    match_ns: AtomicU64,
    deliver_ns: AtomicU64,
    samples: AtomicU64,
    label: String,
}

impl CostCell {
    fn vacant() -> CostCell {
        CostCell {
            stamp: AtomicU64::new(0),
            match_ns: AtomicU64::new(0),
            deliver_ns: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            label: String::new(),
        }
    }
}

/// One entity's accumulated cost, as read by [`CostTable::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostEntry {
    /// The label registered for the entity (e.g. `entry-3`, `sub-7`).
    pub label: String,
    /// Sampled match nanoseconds charged to the entity.
    pub match_ns: u64,
    /// Sampled deliver nanoseconds charged to the entity.
    pub deliver_ns: u64,
    /// Sampled dispatches charged (one per entry visit, not per ns).
    pub samples: u64,
}

impl CostEntry {
    /// Match plus deliver nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.match_ns + self.deliver_ns
    }
}

/// Whole-table totals (sums over every live cell).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostTotals {
    /// Sampled match nanoseconds across all entities.
    pub match_ns: u64,
    /// Sampled deliver nanoseconds across all entities.
    pub deliver_ns: u64,
    /// Sampled dispatches across all entities.
    pub samples: u64,
}

/// The sharded exact-totals table; see the module docs.
///
/// Shareable by reference across threads; all methods take `&self`.
#[derive(Debug)]
pub struct CostTable {
    shards: [RwLock<Vec<CostCell>>; SHARDS],
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable::new()
    }
}

impl CostTable {
    /// An empty table. Shards grow on demand in [`CostTable::ensure`].
    pub fn new() -> CostTable {
        CostTable {
            shards: std::array::from_fn(|_| RwLock::new(Vec::new())),
        }
    }

    fn locate(index: u64) -> (usize, usize) {
        ((index as usize) % SHARDS, (index / SHARDS as u64) as usize)
    }

    /// Registers (or re-registers) the entity at `index` with unique id
    /// `uid`, labelling its cell with `label()`. Called at subscribe
    /// time — takes the shard write lock, may grow the shard, and
    /// resets the counters when the slot changed owners. Idempotent
    /// for an unchanged owner: counters are preserved.
    pub fn ensure(&self, index: u64, uid: u64, label: impl FnOnce() -> String) {
        let (shard, row) = Self::locate(index);
        let mut cells = self.shards[shard]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if cells.len() <= row {
            cells.resize_with(row + 1, CostCell::vacant);
        }
        let cell = &mut cells[row];
        let stamp = uid.wrapping_add(1).max(1);
        if cell.stamp.load(Ordering::Relaxed) == stamp {
            return;
        }
        cell.stamp.store(stamp, Ordering::Relaxed);
        cell.match_ns.store(0, Ordering::Relaxed);
        cell.deliver_ns.store(0, Ordering::Relaxed);
        cell.samples.store(0, Ordering::Relaxed);
        cell.label = label();
    }

    /// Charges sampled nanoseconds to the entity at `index`, provided
    /// the cell is still stamped with `uid` (a mismatch means the slot
    /// was recycled and the charge is dropped). On success, calls
    /// `with_label` with the registered label borrowed under the shard
    /// read lock — the hook feeds heavy-hitter sketches without the
    /// caller owning or cloning the string. Returns whether the charge
    /// landed. Allocation-free.
    pub fn charge(
        &self,
        index: u64,
        uid: u64,
        match_ns: u64,
        deliver_ns: u64,
        with_label: impl FnOnce(&str),
    ) -> bool {
        let (shard, row) = Self::locate(index);
        let cells = self.shards[shard].read().unwrap_or_else(|e| e.into_inner());
        let Some(cell) = cells.get(row) else {
            return false;
        };
        if cell.stamp.load(Ordering::Relaxed) != uid.wrapping_add(1).max(1) {
            return false;
        }
        cell.match_ns.fetch_add(match_ns, Ordering::Relaxed);
        cell.deliver_ns.fetch_add(deliver_ns, Ordering::Relaxed);
        cell.samples.fetch_add(1, Ordering::Relaxed);
        with_label(&cell.label);
        true
    }

    /// Sums over every live cell.
    pub fn totals(&self) -> CostTotals {
        let mut out = CostTotals::default();
        for shard in &self.shards {
            let cells = shard.read().unwrap_or_else(|e| e.into_inner());
            for cell in cells.iter() {
                if cell.stamp.load(Ordering::Relaxed) == 0 {
                    continue;
                }
                out.match_ns += cell.match_ns.load(Ordering::Relaxed);
                out.deliver_ns += cell.deliver_ns.load(Ordering::Relaxed);
                out.samples += cell.samples.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Live entities currently registered.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let cells = shard.read().unwrap_or_else(|e| e.into_inner());
                cells
                    .iter()
                    .filter(|c| c.stamp.load(Ordering::Relaxed) != 0)
                    .count()
            })
            .sum()
    }

    /// Whether no entity is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live entity's totals, most expensive (match + deliver)
    /// first; ties break by label. A cold-path read for `/costs`, the
    /// partition planner, and tests — it allocates freely.
    pub fn snapshot(&self) -> Vec<CostEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let cells = shard.read().unwrap_or_else(|e| e.into_inner());
            for cell in cells.iter() {
                if cell.stamp.load(Ordering::Relaxed) == 0 {
                    continue;
                }
                out.push(CostEntry {
                    label: cell.label.clone(),
                    match_ns: cell.match_ns.load(Ordering::Relaxed),
                    deliver_ns: cell.deliver_ns.load(Ordering::Relaxed),
                    samples: cell.samples.load(Ordering::Relaxed),
                });
            }
        }
        out.sort_by(|a, b| {
            b.total_ns()
                .cmp(&a.total_ns())
                .then_with(|| a.label.cmp(&b.label))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn charges_accumulate_per_entity() {
        let table = CostTable::new();
        table.ensure(0, 100, || "entry-0".into());
        table.ensure(9, 101, || "entry-9".into());
        assert!(table.charge(0, 100, 10, 20, |_| {}));
        assert!(table.charge(0, 100, 5, 0, |_| {}));
        assert!(table.charge(9, 101, 100, 300, |_| {}));
        let snap = table.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap[0],
            CostEntry {
                label: "entry-9".into(),
                match_ns: 100,
                deliver_ns: 300,
                samples: 1
            }
        );
        assert_eq!(
            snap[1],
            CostEntry {
                label: "entry-0".into(),
                match_ns: 15,
                deliver_ns: 20,
                samples: 2
            }
        );
        let totals = table.totals();
        assert_eq!(totals.match_ns, 115);
        assert_eq!(totals.deliver_ns, 320);
        assert_eq!(totals.samples, 3);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn charge_surfaces_the_registered_label() {
        let table = CostTable::new();
        table.ensure(3, 7, || "entry-3".into());
        let mut seen = String::new();
        table.charge(3, 7, 1, 1, |label| seen.push_str(label));
        assert_eq!(seen, "entry-3");
    }

    #[test]
    fn unknown_or_recycled_slots_drop_the_charge() {
        let table = CostTable::new();
        // Never registered: no charge, no panic.
        assert!(!table.charge(42, 1, 10, 10, |_| panic!("no label")));
        // Registered, then recycled under a new uid: the stale charge
        // is dropped and the counters restart from zero.
        table.ensure(1, 5, || "entry-1".into());
        table.charge(1, 5, 100, 100, |_| {});
        table.ensure(1, 6, || "entry-1b".into());
        assert!(!table.charge(1, 5, 7, 7, |_| panic!("stale uid")));
        assert!(table.charge(1, 6, 3, 4, |_| {}));
        let snap = table.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].label, "entry-1b");
        assert_eq!(snap[0].match_ns, 3);
        assert_eq!(snap[0].deliver_ns, 4);
    }

    #[test]
    fn ensure_is_idempotent_for_the_same_owner() {
        let table = CostTable::new();
        table.ensure(2, 9, || "entry-2".into());
        table.charge(2, 9, 50, 0, |_| {});
        // Re-registering the same (index, uid) must not wipe totals —
        // duplicate-key subscriptions join an existing entry.
        table.ensure(2, 9, || panic!("label must not be rebuilt"));
        assert_eq!(table.snapshot()[0].match_ns, 50);
    }

    #[test]
    fn concurrent_charges_reconcile_exactly() {
        let table = Arc::new(CostTable::new());
        for i in 0..16u64 {
            table.ensure(i, i, || format!("entry-{i}"));
        }
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    for round in 0..1_000u64 {
                        let idx = round % 16;
                        table.charge(idx, idx, 3, 5, |_| {});
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let totals = table.totals();
        assert_eq!(totals.samples, 4_000);
        assert_eq!(totals.match_ns, 12_000);
        assert_eq!(totals.deliver_ns, 20_000);
    }
}
