//! Text-escaping and name-validation helpers shared by the exporters.
//!
//! Prometheus and JSON each have their own quoting rules; keeping the
//! rules here (and nowhere else) means every exporter in the workspace —
//! the metrics registry, the span dump, the explanation dump — corrupts
//! its output in zero ways instead of each inventing its own subset.

/// Escapes a string for embedding inside a JSON string literal (without
/// the surrounding quotes): `\`, `"`, and control characters.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes a Prometheus `# HELP` line: backslashes and line feeds (the
/// exposition format's only two escapes in help text).
pub(crate) fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a Prometheus label value: backslashes, double quotes, and
/// line feeds, per the exposition-format spec.
pub(crate) fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Whether `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == '_' || first == ':') {
        return false;
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`; colons are reserved for metric names).
pub fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == '_') {
        return false;
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape_json(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_json("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn help_escapes_backslash_and_newline_only() {
        assert_eq!(escape_help("a\\b\nc\"d"), "a\\\\b\\nc\"d");
    }

    #[test]
    fn label_value_escapes_the_three_specials() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn metric_name_validation() {
        assert!(is_valid_metric_name("tep_published_total"));
        assert!(is_valid_metric_name("_x"));
        assert!(is_valid_metric_name("ns:metric"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("9lives"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name("dash-ed"));
        assert!(!is_valid_metric_name("new\nline"));
    }

    #[test]
    fn label_name_validation() {
        assert!(is_valid_label_name("reason"));
        assert!(is_valid_label_name("_hidden"));
        assert!(!is_valid_label_name("ns:label"));
        assert!(!is_valid_label_name(""));
        assert!(!is_valid_label_name("1st"));
    }
}
