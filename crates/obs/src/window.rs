//! Sliding-window aggregation over periodic cumulative snapshots.
//!
//! Cumulative counters and histograms hide drift: a regression ten
//! minutes ago is invisible under an hour of healthy traffic. The
//! [`WindowRing`] fixes that without touching the hot path — some
//! periodic task (the broker's supervisor tick) pushes a
//! [`MetricsFrame`] of *cumulative* readings, and [`WindowRing::window`]
//! subtracts the frame nearest the window boundary from the newest one,
//! yielding windowed rates and windowed percentiles (histogram deltas
//! merge exactly because every histogram shares one bucket layout; see
//! [`HistogramSnapshot::delta_since`]).
//!
//! The ring is bounded: pushing beyond capacity drops the oldest frame,
//! so memory is `capacity × frame size` forever. All timing flows
//! through explicit [`Instant`]s (`push_at`), keeping tests
//! deterministic.

use crate::hist::HistogramSnapshot;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One periodic reading: cumulative counter values and cumulative
/// histogram snapshots at a single point in time.
#[derive(Debug, Clone, Default)]
pub struct MetricsFrame {
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsFrame {
    /// An empty frame.
    pub fn new() -> MetricsFrame {
        MetricsFrame::default()
    }

    /// Records one cumulative counter reading.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.counters.push((name.to_string(), value));
        self
    }

    /// Records one cumulative histogram snapshot.
    pub fn histogram(&mut self, name: &str, snap: HistogramSnapshot) -> &mut Self {
        self.histograms.push((name.to_string(), snap));
        self
    }

    fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    fn histogram_value(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }
}

/// The difference between the newest frame and the frame closest to the
/// requested window boundary: what happened *during* the window.
#[derive(Debug, Clone)]
pub struct WindowedDelta {
    span: Duration,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl WindowedDelta {
    /// The actual time covered — at most the requested window, less when
    /// the ring is younger than the window.
    pub fn span(&self) -> Duration {
        self.span
    }

    /// How much `name` grew during the window (`None` if the newest
    /// frame does not carry it).
    pub fn counter_delta(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// `name`'s per-second rate over the window.
    pub fn rate(&self, name: &str) -> Option<f64> {
        let secs = self.span.as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        self.counter_delta(name).map(|d| d as f64 / secs)
    }

    /// The histogram of values recorded during the window — feed to
    /// `p50()`/`p95()`/`p99()` for windowed percentiles.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// All counter deltas, in the newest frame's order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All histogram deltas, in the newest frame's order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> + '_ {
        self.histograms.iter().map(|(n, s)| (n.as_str(), s))
    }
}

/// A bounded ring of timestamped cumulative frames; see the module docs.
///
/// Shareable by reference across threads; pushes and reads take a
/// single short mutex (this is cold-path code — frames arrive a few
/// times per second at most).
#[derive(Debug)]
pub struct WindowRing {
    frames: Mutex<VecDeque<(Instant, MetricsFrame)>>,
    capacity: usize,
}

impl WindowRing {
    /// An empty ring holding at most `capacity` frames (minimum 2 — a
    /// window needs two endpoints).
    pub fn new(capacity: usize) -> WindowRing {
        WindowRing {
            frames: Mutex::new(VecDeque::new()),
            capacity: capacity.max(2),
        }
    }

    /// Pushes a frame stamped now.
    pub fn push(&self, frame: MetricsFrame) {
        self.push_at(Instant::now(), frame);
    }

    /// Pushes a frame with an explicit timestamp (deterministic tests).
    /// Frames older than the current newest are ignored — time moves
    /// one way.
    pub fn push_at(&self, at: Instant, frame: MetricsFrame) {
        let mut frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((newest, _)) = frames.back() {
            if at < *newest {
                return;
            }
        }
        if frames.len() == self.capacity {
            frames.pop_front();
        }
        frames.push_back((at, frame));
    }

    /// Number of frames currently held.
    pub fn len(&self) -> usize {
        self.frames.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no frames have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The delta over (approximately) the last `window` of time: newest
    /// frame minus the youngest frame at least `window` old. When the
    /// ring is younger than `window` the oldest frame is used and
    /// [`WindowedDelta::span`] reports the shorter actual coverage.
    /// `None` until two frames exist or when the span is zero.
    pub fn window(&self, window: Duration) -> Option<WindowedDelta> {
        let frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        if frames.len() < 2 {
            return None;
        }
        let (newest_at, newest) = frames.back().expect("len >= 2");
        // Youngest frame at least `window` older than the newest; the
        // ring is ordered, so scan from the back.
        let (base_at, base) = frames
            .iter()
            .rev()
            .skip(1)
            .find(|(at, _)| newest_at.duration_since(*at) >= window)
            .unwrap_or_else(|| frames.front().expect("len >= 2"));
        let span = newest_at.duration_since(*base_at);
        if span.is_zero() {
            return None;
        }
        let counters = newest
            .counters
            .iter()
            .map(|(name, now)| {
                let then = base.counter_value(name).unwrap_or(0);
                (name.clone(), now.saturating_sub(then))
            })
            .collect();
        let histograms = newest
            .histograms
            .iter()
            .map(|(name, now)| {
                let delta = match base.histogram_value(name) {
                    Some(then) => now.delta_since(then),
                    None => now.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        Some(WindowedDelta {
            span,
            counters,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn frame(published: u64, latencies_us: &[u64]) -> MetricsFrame {
        let h = LatencyHistogram::new();
        for us in latencies_us {
            h.record_nanos(us * 1_000);
        }
        let mut f = MetricsFrame::new();
        f.counter("published", published)
            .histogram("match_seconds", h.snapshot());
        f
    }

    #[test]
    fn windowed_rates_and_percentiles_from_cumulative_frames() {
        let ring = WindowRing::new(16);
        let t0 = Instant::now();
        // Cumulative: 0 events at t0, 100 at +10s, 700 at +20s.
        ring.push_at(t0, frame(0, &[]));
        ring.push_at(t0 + Duration::from_secs(10), frame(100, &[10, 20]));
        ring.push_at(
            t0 + Duration::from_secs(20),
            frame(700, &[10, 20, 5_000, 5_000, 5_000]),
        );
        // Last 10s: 600 events → 60 ev/s; three 5ms latencies recorded.
        let w = ring.window(Duration::from_secs(10)).unwrap();
        assert_eq!(w.span(), Duration::from_secs(10));
        assert_eq!(w.counter_delta("published"), Some(600));
        assert!((w.rate("published").unwrap() - 60.0).abs() < 1e-9);
        let h = w.histogram("match_seconds").unwrap();
        assert_eq!(h.count(), 3);
        assert!(h.p50() >= Duration::from_micros(5_000));
        // Last 60s falls back to the full ring: 700 events over 20s.
        let w = ring.window(Duration::from_secs(60)).unwrap();
        assert_eq!(w.span(), Duration::from_secs(20));
        assert_eq!(w.counter_delta("published"), Some(700));
        assert!((w.rate("published").unwrap() - 35.0).abs() < 1e-9);
        assert_eq!(w.histogram("match_seconds").unwrap().count(), 5);
    }

    #[test]
    fn needs_two_frames() {
        let ring = WindowRing::new(8);
        assert!(ring.window(Duration::from_secs(10)).is_none());
        ring.push_at(Instant::now(), frame(5, &[]));
        assert!(ring.window(Duration::from_secs(10)).is_none());
        assert_eq!(ring.len(), 1);
        assert!(!ring.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_and_time_only_moves_forward() {
        let ring = WindowRing::new(2);
        let t0 = Instant::now();
        ring.push_at(t0, frame(1, &[]));
        ring.push_at(t0 + Duration::from_secs(1), frame(2, &[]));
        ring.push_at(t0 + Duration::from_secs(2), frame(3, &[]));
        assert_eq!(ring.len(), 2, "capacity 2 keeps only the newest two");
        // Backwards timestamps are dropped.
        ring.push_at(t0, frame(99, &[]));
        assert_eq!(ring.len(), 2);
        let w = ring.window(Duration::from_secs(60)).unwrap();
        assert_eq!(w.counter_delta("published"), Some(1), "3 - 2");
    }

    #[test]
    fn counters_missing_from_the_base_frame_count_from_zero() {
        let ring = WindowRing::new(4);
        let t0 = Instant::now();
        ring.push_at(t0, MetricsFrame::new());
        ring.push_at(t0 + Duration::from_secs(5), frame(40, &[7]));
        let w = ring.window(Duration::from_secs(5)).unwrap();
        assert_eq!(w.counter_delta("published"), Some(40));
        assert_eq!(w.histogram("match_seconds").unwrap().count(), 1);
        assert_eq!(w.counters().count(), 1);
        assert_eq!(w.histograms().count(), 1);
        assert!(w.counter_delta("absent").is_none());
        assert!(w.rate("absent").is_none());
    }
}
