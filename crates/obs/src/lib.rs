//! # tep-obs
//!
//! Dependency-free observability primitives for the thematic event
//! processing pipeline (hand-rolled in the spirit of the `vendor/`
//! stand-ins — crates.io is not reachable from the build environment, so
//! no `hdrhistogram`/`prometheus` dependency is possible):
//!
//! * [`LatencyHistogram`] — a lock-free, log-linear-bucketed latency
//!   histogram: recording is a handful of relaxed atomic adds, snapshots
//!   are consistent-enough counter reads, and snapshots merge, so
//!   per-stage and per-shard histograms can be aggregated after the fact;
//! * [`HistogramSnapshot`] — the frozen counts with quantile
//!   (p50/p90/p95/p99/max) and mean estimation;
//! * [`MetricsRegistry`] — a flat registry of counters, gauges, and
//!   histogram snapshots rendering both the Prometheus text exposition
//!   format and a JSON document;
//! * [`TraceRing`] — a bounded MPMC ring buffer keeping the last N
//!   per-event traces for debugging routing decisions;
//! * [`SpanCollector`] / [`SpanRecord`] / [`span_tree`] — causal
//!   parent/child spans with deterministic 1-in-k sampling, so one
//!   event's publish → route → match → deliver journey reconstructs as
//!   a tree;
//! * [`serve`] / [`ScrapeHandlers`] — a single-threaded blocking HTTP
//!   scrape server (std `TcpListener`) exposing `/metrics`, `/healthz`,
//!   `/explain`, and (when installed) `/quality` and `/top`;
//! * [`WindowRing`] / [`MetricsFrame`] — sliding-window aggregation
//!   over periodic cumulative snapshots, turning forever-counters into
//!   windowed rates and windowed percentiles;
//! * [`TopKSketch`] — a concurrent space-saving sketch for the top-k
//!   hottest themes/terms in bounded memory;
//! * [`FlightRecorder`] / [`DiagnosticFrame`] — an always-on bounded
//!   ring of periodic diagnostic frames that freezes into a JSON
//!   diagnostic bundle (with a bounded on-disk spool) when a trigger
//!   fires, so the evidence of an incident survives the incident;
//! * [`CounterFamily`] — labeled counter series under a hard
//!   cardinality cap with an overflow bucket;
//! * [`CostTable`] — a sharded exact cost-attribution table charging
//!   sampled match/deliver nanoseconds to index entries and
//!   subscribers without allocating on the hot path.
//!
//! The crate is intentionally free of tep dependencies so any layer
//! (semantics, matcher, broker, bench) can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cost;
mod dim;
mod escape;
mod hist;
mod recorder;
mod registry;
mod serve;
mod span;
mod topk;
mod trace;
mod window;

pub use cost::{CostEntry, CostTable, CostTotals};
pub use dim::{CounterFamily, OVERFLOW_LABEL};
pub use escape::{escape_json, is_valid_label_name, is_valid_metric_name};
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use recorder::{DiagnosticFrame, FlightRecorder, FrameWriter, RecorderConfig, StageStat};
pub use registry::MetricsRegistry;
pub use serve::{serve, ScrapeHandlers, ScrapeServer};
pub use span::{render_spans_json, span_tree, SpanCollector, SpanNode, SpanRecord};
pub use topk::TopKSketch;
pub use trace::TraceRing;
pub use window::{MetricsFrame, WindowRing, WindowedDelta};
