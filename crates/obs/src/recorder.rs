//! The always-on flight recorder: a bounded ring of periodic
//! [`DiagnosticFrame`]s that freezes into a self-contained JSON
//! **diagnostic bundle** when a trigger fires.
//!
//! The broker's volatile diagnostics (window frames, span rings,
//! explanation rings, load state, breaker summaries) are each overwritten
//! within seconds — precisely the horizon on which an incident is
//! noticed. The recorder closes that gap like an aircraft flight
//! recorder: it continuously captures cheap periodic frames into a
//! preallocated ring, and when something goes wrong (a worker panic, a
//! breaker trip, load-state entry into `Critical`, a quality-drift
//! alert, or a manual `POST /debug/trigger`) it freezes the ring,
//! assembles one JSON bundle carrying the frames *plus* the triggering
//! cause and whatever context the embedder supplies, writes it to a
//! bounded on-disk spool (`tep-diag-<seq>.json`, oldest evicted), and
//! keeps the newest bundle in memory for `GET /debug/bundle`.
//!
//! Steady-state discipline, in the spirit of the broker's hot path:
//!
//! * [`FlightRecorder::tick_due`] is one relaxed atomic load plus an
//!   `Instant` subtraction — cheap enough for the per-event dequeue path;
//! * when a tick is due, one caller claims it with a CAS; the frame is
//!   written into a preallocated ring slot whose buffers are reused
//!   (`Vec::clear` keeps capacity), so after the slots have warmed the
//!   tick path performs **zero allocations**;
//! * a tick that finds the ring locked (a bundle freeze in progress)
//!   skips the frame rather than block a worker;
//! * bundle assembly — the rare path — allocates freely.
//!
//! The crate stays dependency-free: frames carry only names, numbers and
//! reusable strings, and the embedder passes richer context (config
//! fingerprint, span trees, explanations) as a pre-rendered JSON object
//! at trigger time.

use crate::escape::escape_json;
use crate::hist::HistogramSnapshot;
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning for a [`FlightRecorder`]; see the module docs for the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Ring capacity in frames (clamped to at least 2). At the default
    /// 64 frames × 250 ms tick the ring covers the last ~16 s.
    pub frame_capacity: usize,
    /// Minimum spacing between frames (clamped to at least 1 ms so an
    /// enabled recorder can never busy-tick).
    pub tick_interval: Duration,
    /// Directory for the on-disk bundle spool; `None` keeps bundles in
    /// memory only. The directory is created on construction; spool I/O
    /// errors are counted ([`FlightRecorder::spool_errors`]), never
    /// propagated — diagnostics must not take down the broker.
    pub spool_dir: Option<PathBuf>,
    /// Bundle files kept on disk before the oldest is evicted (clamped
    /// to at least 1 when a spool directory is set).
    pub spool_capacity: usize,
    /// Minimum spacing between bundles of the *same* trigger kind, so a
    /// flapping breaker or a panic loop cannot turn the spool into a
    /// bundle storm. Distinct kinds are independent.
    pub trigger_cooldown: Duration,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            frame_capacity: 64,
            tick_interval: Duration::from_millis(250),
            spool_dir: None,
            spool_capacity: 8,
            trigger_cooldown: Duration::from_secs(5),
        }
    }
}

/// Fixed-size summary of one stage histogram inside a frame — the frame
/// stores quantiles rather than bucket tables so a ring of frames stays
/// small and the tick path stays allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Cumulative recorded values at frame time.
    pub count: u64,
    /// Estimated median, nanoseconds.
    pub p50_ns: u64,
    /// Estimated 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Largest recorded value, nanoseconds.
    pub max_ns: u64,
}

/// A reusable hot-theme slot inside a frame; the `String` keeps its
/// capacity across frame resets.
#[derive(Debug, Default)]
struct ThemeSlot {
    name: String,
    count: u64,
}

/// One periodic snapshot in the recorder ring: counters, gauges, static
/// labels, per-stage latency summaries, and the hottest themes, all in
/// reusable storage. Frames are written through a [`FrameWriter`] and
/// read back from a rendered bundle.
#[derive(Debug, Default)]
pub struct DiagnosticFrame {
    seq: u64,
    at_ns: u64,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    labels: Vec<(&'static str, &'static str)>,
    stages: Vec<(&'static str, StageStat)>,
    themes: Vec<ThemeSlot>,
    /// Live prefix of `themes`; slots past it keep their capacity.
    themes_len: usize,
    /// Hottest cost-attribution entries, `(label, sampled ns)`, pooled
    /// like `themes`.
    costs: Vec<ThemeSlot>,
    /// Live prefix of `costs`.
    costs_len: usize,
}

impl DiagnosticFrame {
    /// Frame sequence number (monotonic across the recorder's life).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Nanoseconds since the recorder's epoch when the frame was taken.
    pub fn at_ns(&self) -> u64 {
        self.at_ns
    }

    /// The recorded counters, in write order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// The recorded gauges, in write order.
    pub fn gauges(&self) -> &[(&'static str, f64)] {
        &self.gauges
    }

    /// The recorded static labels, in write order.
    pub fn labels(&self) -> &[(&'static str, &'static str)] {
        &self.labels
    }

    /// The recorded stage summaries, in write order.
    pub fn stages(&self) -> &[(&'static str, StageStat)] {
        &self.stages
    }

    /// Rewinds every section for the next write, keeping all capacity.
    fn reset(&mut self, seq: u64, at_ns: u64) {
        self.seq = seq;
        self.at_ns = at_ns;
        self.counters.clear();
        self.gauges.clear();
        self.labels.clear();
        self.stages.clear();
        self.themes_len = 0;
        self.costs_len = 0;
    }

    fn render_json(&self, out: &mut String) {
        use fmt::Write;
        let _ = write!(
            out,
            "{{\"seq\": {}, \"at_ms\": {:.3}",
            self.seq,
            self.at_ns as f64 / 1e6
        );
        out.push_str(", \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(out, "{sep}\"{}\": {v}", escape_json(name));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(out, "{sep}\"{}\": {v:.3}", escape_json(name));
        }
        out.push_str("}, \"labels\": {");
        for (i, (name, v)) in self.labels.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(
                out,
                "{sep}\"{}\": \"{}\"",
                escape_json(name),
                escape_json(v)
            );
        }
        out.push_str("}, \"stages\": [");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(
                out,
                "{sep}{{\"stage\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                escape_json(name),
                s.count,
                s.p50_ns,
                s.p99_ns,
                s.max_ns
            );
        }
        out.push_str("], \"themes\": [");
        for (i, slot) in self.themes[..self.themes_len].iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(
                out,
                "{sep}{{\"name\": \"{}\", \"count\": {}}}",
                escape_json(&slot.name),
                slot.count
            );
        }
        out.push_str("], \"costs\": [");
        for (i, slot) in self.costs[..self.costs_len].iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(
                out,
                "{sep}{{\"name\": \"{}\", \"ns\": {}}}",
                escape_json(&slot.name),
                slot.count
            );
        }
        out.push_str("]}");
    }
}

/// Write access to the frame being ticked, plus the ring's shared
/// histogram scratch buffer for allocation-free stage summaries.
pub struct FrameWriter<'a> {
    frame: &'a mut DiagnosticFrame,
    scratch: &'a mut HistogramSnapshot,
}

impl fmt::Debug for FrameWriter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameWriter")
            .field("seq", &self.frame.seq)
            .finish_non_exhaustive()
    }
}

impl FrameWriter<'_> {
    /// Records a monotonic counter value.
    pub fn counter(&mut self, name: &'static str, value: u64) {
        self.frame.counters.push((name, value));
    }

    /// Records a gauge value.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.frame.gauges.push((name, value));
    }

    /// Records a static label (e.g. `load_state = "healthy"`); both
    /// sides are `'static` so a label can never allocate.
    pub fn label(&mut self, name: &'static str, value: &'static str) {
        self.frame.labels.push((name, value));
    }

    /// Records one stage summary: `fill` accumulates histogram counts
    /// into the reusable scratch snapshot (cleared beforehand), and the
    /// resulting quantiles are stored as a fixed-size [`StageStat`].
    pub fn stage(&mut self, name: &'static str, fill: impl FnOnce(&mut HistogramSnapshot)) {
        self.scratch.clear();
        fill(self.scratch);
        let stat = StageStat {
            count: self.scratch.count(),
            p50_ns: self.scratch.p50().as_nanos() as u64,
            p99_ns: self.scratch.p99().as_nanos() as u64,
            max_ns: self.scratch.max().as_nanos() as u64,
        };
        self.frame.stages.push((name, stat));
    }

    /// Records one hot-theme entry, reusing a pooled `String` slot.
    /// Allocation-free once the slot pool has seen names at least this
    /// long.
    pub fn theme(&mut self, name: &str, count: u64) {
        if self.frame.themes_len < self.frame.themes.len() {
            let slot = &mut self.frame.themes[self.frame.themes_len];
            slot.name.clear();
            slot.name.push_str(name);
            slot.count = count;
        } else {
            self.frame.themes.push(ThemeSlot {
                name: name.to_string(),
                count,
            });
        }
        self.frame.themes_len += 1;
    }

    /// Records one hot cost-attribution entry (`name`, sampled
    /// nanoseconds), reusing a pooled `String` slot like
    /// [`FrameWriter::theme`].
    pub fn cost(&mut self, name: &str, ns: u64) {
        if self.frame.costs_len < self.frame.costs.len() {
            let slot = &mut self.frame.costs[self.frame.costs_len];
            slot.name.clear();
            slot.name.push_str(name);
            slot.count = ns;
        } else {
            self.frame.costs.push(ThemeSlot {
                name: name.to_string(),
                count: ns,
            });
        }
        self.frame.costs_len += 1;
    }
}

/// The frame ring plus its shared scratch, behind one mutex.
struct FrameRing {
    slots: Vec<DiagnosticFrame>,
    /// Next slot to (over)write.
    head: usize,
    /// Occupied slots (grows to `slots.len()` and stays there).
    len: usize,
    next_seq: u64,
    scratch: HistogramSnapshot,
}

impl FrameRing {
    fn write_frame(&mut self, at_ns: u64, fill: impl FnOnce(&mut FrameWriter<'_>)) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = &mut self.slots[self.head];
        frame.reset(seq, at_ns);
        fill(&mut FrameWriter {
            frame,
            scratch: &mut self.scratch,
        });
        self.head = (self.head + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
    }

    /// Occupied slots, oldest first.
    fn iter_oldest_first(&self) -> impl Iterator<Item = &DiagnosticFrame> {
        let start = (self.head + self.slots.len() - self.len) % self.slots.len();
        (0..self.len).map(move |i| &self.slots[(start + i) % self.slots.len()])
    }
}

/// Per-kind trigger bookkeeping and the on-disk spool state.
struct TriggerState {
    /// `(kind, last fire, ns since epoch)`; trigger kinds are a small
    /// closed set, so a flat vector beats a map.
    last_fire: Vec<(&'static str, u64)>,
    next_bundle_seq: u64,
    spool: VecDeque<PathBuf>,
}

/// The flight recorder; see the module docs. All methods take `&self`
/// and are safe to call from any broker thread.
pub struct FlightRecorder {
    config: RecorderConfig,
    epoch: Instant,
    /// Nanoseconds-since-epoch at which the next tick is due; claimed by
    /// CAS so concurrent dequeue paths record at most one frame per
    /// interval.
    next_due_ns: AtomicU64,
    ring: Mutex<FrameRing>,
    triggers: Mutex<TriggerState>,
    latest: Mutex<Option<Arc<String>>>,
    frames_recorded: AtomicU64,
    bundles_assembled: AtomicU64,
    spool_errors: AtomicU64,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("config", &self.config)
            .field("frames_recorded", &self.frames_recorded())
            .field("bundles_assembled", &self.bundles_assembled())
            .finish_non_exhaustive()
    }
}

/// A poisoned diagnostics mutex only means a panicking thread died while
/// writing plain data into a frame; the data is still the best evidence
/// available, so recover the guard instead of cascading the panic.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl FlightRecorder {
    /// Builds a recorder with preallocated (but cold) frame slots. Slot
    /// buffers grow on their first write; embedders that need the
    /// zero-allocation guarantee from the very first measured event
    /// should warm every slot once via [`FlightRecorder::force_tick`].
    pub fn new(mut config: RecorderConfig) -> FlightRecorder {
        config.frame_capacity = config.frame_capacity.max(2);
        config.tick_interval = config.tick_interval.max(Duration::from_millis(1));
        config.spool_capacity = config.spool_capacity.max(1);
        if let Some(dir) = &config.spool_dir {
            // Best-effort: a failed mkdir surfaces later as spool errors.
            let _ = std::fs::create_dir_all(dir);
        }
        let slots = (0..config.frame_capacity)
            .map(|_| DiagnosticFrame::default())
            .collect();
        FlightRecorder {
            epoch: Instant::now(),
            next_due_ns: AtomicU64::new(0),
            ring: Mutex::new(FrameRing {
                slots,
                head: 0,
                len: 0,
                next_seq: 0,
                scratch: HistogramSnapshot::empty(),
            }),
            triggers: Mutex::new(TriggerState {
                last_fire: Vec::with_capacity(8),
                next_bundle_seq: 0,
                spool: VecDeque::with_capacity(config.spool_capacity),
            }),
            latest: Mutex::new(None),
            frames_recorded: AtomicU64::new(0),
            bundles_assembled: AtomicU64::new(0),
            spool_errors: AtomicU64::new(0),
            config,
        }
    }

    /// The recorder's (clamped) configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    fn now_ns(&self, now: Instant) -> u64 {
        now.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Whether a periodic frame is due — one relaxed load plus an
    /// `Instant` subtraction, cheap enough for the per-event dequeue
    /// path. `now` is the caller's already-taken timestamp, so the check
    /// adds no clock read.
    #[inline]
    pub fn tick_due(&self, now: Instant) -> bool {
        self.now_ns(now) >= self.next_due_ns.load(Ordering::Relaxed)
    }

    /// Claims the due tick (CAS; at most one winner per interval) and
    /// records a frame via `fill`. Returns whether a frame was recorded.
    /// A freeze in progress (ring locked) forfeits the frame instead of
    /// blocking the caller.
    pub fn tick(&self, now: Instant, fill: impl FnOnce(&mut FrameWriter<'_>)) -> bool {
        let now_ns = self.now_ns(now);
        let due = self.next_due_ns.load(Ordering::Relaxed);
        if now_ns < due {
            return false;
        }
        let next = now_ns + self.config.tick_interval.as_nanos() as u64;
        if self
            .next_due_ns
            .compare_exchange(due, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return false; // another thread claimed this interval
        }
        let Ok(mut ring) = self.ring.try_lock() else {
            return false; // bundle freeze in progress; skip, don't block
        };
        ring.write_frame(now_ns, fill);
        self.frames_recorded.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Records a frame unconditionally — no due check, no claim, blocks
    /// on the ring lock. For deterministic tests and for warming every
    /// slot's buffers at start-up so the steady-state tick path never
    /// allocates.
    pub fn force_tick(&self, fill: impl FnOnce(&mut FrameWriter<'_>)) {
        let now_ns = self.now_ns(Instant::now());
        lock_unpoisoned(&self.ring).write_frame(now_ns, fill);
        self.frames_recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Occupied ring slots (saturates at the frame capacity).
    pub fn frames(&self) -> usize {
        lock_unpoisoned(&self.ring).len
    }

    /// Total frames recorded over the recorder's life.
    pub fn frames_recorded(&self) -> u64 {
        self.frames_recorded.load(Ordering::Relaxed)
    }

    /// Total bundles assembled over the recorder's life.
    pub fn bundles_assembled(&self) -> u64 {
        self.bundles_assembled.load(Ordering::Relaxed)
    }

    /// Spool writes or evictions that failed (the bundle itself is still
    /// available via [`FlightRecorder::latest_bundle`]).
    pub fn spool_errors(&self) -> u64 {
        self.spool_errors.load(Ordering::Relaxed)
    }

    /// Whether a `kind` trigger would currently be accepted — a cheap
    /// cooldown peek so hot paths can skip building trigger detail and
    /// context strings while the kind is cooling down.
    pub fn trigger_armed(&self, kind: &'static str) -> bool {
        let now_ns = self.now_ns(Instant::now());
        let triggers = lock_unpoisoned(&self.triggers);
        self.cooled_down(&triggers, kind, now_ns)
    }

    fn cooled_down(&self, triggers: &TriggerState, kind: &str, now_ns: u64) -> bool {
        let cooldown = self.config.trigger_cooldown.as_nanos() as u64;
        triggers
            .last_fire
            .iter()
            .find(|(k, _)| *k == kind)
            .is_none_or(|(_, last)| now_ns.saturating_sub(*last) >= cooldown)
    }

    /// Fires a trigger: freezes the ring, assembles a bundle from the
    /// frames, the cause, and the embedder's pre-rendered `context_json`
    /// object, stores it as the latest bundle, and spools it to disk.
    /// Returns the bundle sequence number, or `None` when the kind is
    /// still cooling down ([`RecorderConfig::trigger_cooldown`]).
    pub fn trigger(&self, kind: &'static str, detail: &str, context_json: &str) -> Option<u64> {
        let now_ns = self.now_ns(Instant::now());
        let mut triggers = lock_unpoisoned(&self.triggers);
        if !self.cooled_down(&triggers, kind, now_ns) {
            return None;
        }
        match triggers.last_fire.iter_mut().find(|(k, _)| *k == kind) {
            Some(entry) => entry.1 = now_ns,
            None => triggers.last_fire.push((kind, now_ns)),
        }
        let seq = triggers.next_bundle_seq;
        triggers.next_bundle_seq += 1;
        let bundle = self.render_bundle(seq, kind, detail, now_ns, context_json);
        self.bundles_assembled.fetch_add(1, Ordering::Relaxed);
        let bundle = Arc::new(bundle);
        *lock_unpoisoned(&self.latest) = Some(Arc::clone(&bundle));
        self.spool(&mut triggers, seq, &bundle);
        Some(seq)
    }

    /// The newest assembled bundle, if any trigger has fired.
    pub fn latest_bundle(&self) -> Option<Arc<String>> {
        lock_unpoisoned(&self.latest).clone()
    }

    /// The bundle files currently on disk, oldest first. Empty without a
    /// spool directory.
    pub fn spool_files(&self) -> Vec<PathBuf> {
        lock_unpoisoned(&self.triggers)
            .spool
            .iter()
            .cloned()
            .collect()
    }

    fn render_bundle(
        &self,
        seq: u64,
        kind: &str,
        detail: &str,
        at_ns: u64,
        context_json: &str,
    ) -> String {
        use fmt::Write;
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\n  \"bundle_seq\": {seq},\n  \"cause\": {{\"kind\": \"{}\", \"detail\": \"{}\", \"at_ms\": {:.3}}},\n  \"frames\": [\n",
            escape_json(kind),
            escape_json(detail),
            at_ns as f64 / 1e6
        );
        {
            let ring = lock_unpoisoned(&self.ring);
            for (i, frame) in ring.iter_oldest_first().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str("    ");
                frame.render_json(&mut out);
            }
        }
        let context = context_json.trim();
        let context = if context.is_empty() { "{}" } else { context };
        let _ = write!(out, "\n  ],\n  \"context\": {context}\n}}\n");
        out
    }

    fn spool(&self, triggers: &mut TriggerState, seq: u64, bundle: &str) {
        let Some(dir) = &self.config.spool_dir else {
            return;
        };
        let path = dir.join(format!("tep-diag-{seq}.json"));
        if std::fs::write(&path, bundle).is_err() {
            self.spool_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        triggers.spool.push_back(path);
        while triggers.spool.len() > self.config.spool_capacity {
            let oldest = triggers.spool.pop_front().expect("len > capacity >= 1");
            if std::fs::remove_file(&oldest).is_err() {
                self.spool_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn fill_basic(w: &mut FrameWriter<'_>) {
        w.counter("processed", 7);
        w.gauge("queue_depth", 3.0);
        w.label("load_state", "healthy");
        let hist = LatencyHistogram::new();
        hist.record_nanos(1_000);
        hist.record_nanos(2_000);
        w.stage("queue_wait", |snap| hist.accumulate_into(snap));
        w.theme("energy policy", 5);
        w.cost("entry-3", 12_500);
    }

    fn unique_spool(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tep-recorder-test-{}-{tag}", std::process::id()))
    }

    #[test]
    fn tick_claims_at_most_one_frame_per_interval() {
        let rec = FlightRecorder::new(RecorderConfig {
            tick_interval: Duration::from_secs(3600),
            ..RecorderConfig::default()
        });
        let now = Instant::now();
        assert!(rec.tick_due(now), "a fresh recorder is immediately due");
        assert!(rec.tick(now, fill_basic));
        assert!(!rec.tick_due(Instant::now()));
        assert!(
            !rec.tick(Instant::now(), fill_basic),
            "the interval was claimed"
        );
        assert_eq!(rec.frames(), 1);
        assert_eq!(rec.frames_recorded(), 1);
    }

    #[test]
    fn concurrent_ticks_record_one_frame() {
        let rec = Arc::new(FlightRecorder::new(RecorderConfig {
            tick_interval: Duration::from_secs(3600),
            ..RecorderConfig::default()
        }));
        let winners: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let rec = Arc::clone(&rec);
                    scope.spawn(move || usize::from(rec.tick(Instant::now(), fill_basic)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(winners, 1, "exactly one thread claims the due tick");
        assert_eq!(rec.frames(), 1);
    }

    #[test]
    fn ring_wraps_keeping_the_newest_frames() {
        let rec = FlightRecorder::new(RecorderConfig {
            frame_capacity: 3,
            ..RecorderConfig::default()
        });
        for i in 0..5u64 {
            rec.force_tick(|w| w.counter("i", i));
        }
        assert_eq!(rec.frames(), 3);
        rec.trigger("manual", "wrap test", "{}").expect("bundle");
        let bundle = rec.latest_bundle().expect("latest");
        // Only the newest three frames (seq 2, 3, 4) survive the wrap.
        assert!(!bundle.contains("\"seq\": 1,"));
        for seq in 2..5 {
            assert!(bundle.contains(&format!("\"seq\": {seq},")), "seq {seq}");
        }
    }

    #[test]
    fn bundle_carries_cause_frames_and_context() {
        let rec = FlightRecorder::new(RecorderConfig::default());
        rec.force_tick(fill_basic);
        rec.force_tick(fill_basic);
        let seq = rec
            .trigger(
                "worker_panic",
                "worker 3 died: \"boom\"",
                "{\"workers\": 2}",
            )
            .expect("first trigger fires");
        assert_eq!(seq, 0);
        let bundle = rec.latest_bundle().expect("latest bundle");
        assert!(bundle.contains("\"bundle_seq\": 0"));
        assert!(bundle.contains("\"kind\": \"worker_panic\""));
        assert!(
            bundle.contains("worker 3 died: \\\"boom\\\""),
            "detail is escaped"
        );
        assert!(bundle.contains("\"context\": {\"workers\": 2}"));
        assert!(bundle.contains("\"processed\": 7"));
        assert!(bundle.contains("\"load_state\": \"healthy\""));
        assert!(bundle.contains("\"stage\": \"queue_wait\""));
        assert!(bundle.contains("\"name\": \"energy policy\""));
        assert!(bundle.contains("\"costs\": [{\"name\": \"entry-3\", \"ns\": 12500}]"));
        assert_eq!(rec.bundles_assembled(), 1);
    }

    #[test]
    fn empty_context_degrades_to_an_empty_object() {
        let rec = FlightRecorder::new(RecorderConfig::default());
        rec.trigger("manual", "", "  \n");
        let bundle = rec.latest_bundle().expect("bundle");
        assert!(bundle.contains("\"context\": {}"));
    }

    #[test]
    fn cooldown_suppresses_same_kind_but_not_other_kinds() {
        let rec = FlightRecorder::new(RecorderConfig {
            trigger_cooldown: Duration::from_secs(3600),
            ..RecorderConfig::default()
        });
        assert!(rec.trigger_armed("breaker_trip"));
        assert_eq!(rec.trigger("breaker_trip", "s1", "{}"), Some(0));
        assert!(!rec.trigger_armed("breaker_trip"));
        assert_eq!(
            rec.trigger("breaker_trip", "s1 again", "{}"),
            None,
            "same kind cools down"
        );
        assert_eq!(
            rec.trigger("load_critical", "independent", "{}"),
            Some(1),
            "distinct kinds are independent"
        );
        // A zero cooldown never suppresses.
        let eager = FlightRecorder::new(RecorderConfig {
            trigger_cooldown: Duration::ZERO,
            ..RecorderConfig::default()
        });
        assert_eq!(eager.trigger("manual", "a", "{}"), Some(0));
        assert_eq!(eager.trigger("manual", "b", "{}"), Some(1));
    }

    #[test]
    fn spool_evicts_oldest_bundles() {
        let dir = unique_spool("evict");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(RecorderConfig {
            spool_dir: Some(dir.clone()),
            spool_capacity: 2,
            trigger_cooldown: Duration::ZERO,
            ..RecorderConfig::default()
        });
        rec.force_tick(fill_basic);
        for i in 0..4 {
            assert_eq!(rec.trigger("manual", &format!("t{i}"), "{}"), Some(i));
        }
        let files = rec.spool_files();
        assert_eq!(
            files,
            vec![dir.join("tep-diag-2.json"), dir.join("tep-diag-3.json")],
            "only the two newest bundles survive"
        );
        assert!(!dir.join("tep-diag-0.json").exists());
        assert!(!dir.join("tep-diag-1.json").exists());
        let newest = std::fs::read_to_string(dir.join("tep-diag-3.json")).unwrap();
        assert!(newest.contains("\"detail\": \"t3\""));
        assert_eq!(rec.spool_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn steady_state_tick_reuses_frame_buffers() {
        // Not an allocator-level assertion (that lives in the bench
        // gate); this checks the mechanism it relies on — capacities
        // survive frame resets, so refills need no growth.
        let rec = FlightRecorder::new(RecorderConfig {
            frame_capacity: 2,
            ..RecorderConfig::default()
        });
        for _ in 0..6 {
            rec.force_tick(fill_basic);
        }
        let ring = lock_unpoisoned(&rec.ring);
        for frame in ring.slots.iter() {
            assert!(frame.counters.capacity() >= 1);
            assert_eq!(frame.themes.len(), 1, "theme slots are pooled, not dropped");
            assert_eq!(frame.costs.len(), 1, "cost slots are pooled, not dropped");
        }
    }
}
