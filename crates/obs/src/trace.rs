//! A bounded ring buffer for per-event traces.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded FIFO keeping the newest `capacity` entries; pushing into a
/// full ring evicts the oldest entry. A capacity of zero disables the
/// ring entirely ([`TraceRing::push`] becomes a no-op), so callers can
/// keep one unconditional code path and let configuration decide whether
/// tracing costs anything.
///
/// The ring is a plain mutexed deque: tracing is a debugging aid, not a
/// hot-path metric, and writers only touch it when tracing is enabled.
#[derive(Debug)]
pub struct TraceRing<T> {
    entries: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T: Clone> TraceRing<T> {
    /// A ring keeping the newest `capacity` entries (0 = disabled).
    pub fn new(capacity: usize) -> TraceRing<T> {
        TraceRing {
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity,
        }
    }

    /// Whether pushes are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends an entry, evicting the oldest when full; no-op when the
    /// ring was created with capacity 0.
    pub fn push(&self, entry: T) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_entries() {
        let ring = TraceRing::new(3);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.snapshot(), vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let ring = TraceRing::new(0);
        assert!(!ring.is_enabled());
        ring.push(1);
        assert!(ring.is_empty());
    }

    #[test]
    fn concurrent_pushes_stay_bounded() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(16));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        ring.push(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.len(), 16);
    }
}
