//! A dependency-free blocking HTTP scrape server.
//!
//! One `std::net::TcpListener` on one thread, serving read-only
//! endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition,
//! * `GET /healthz` — **liveness** JSON (is the process serving at all),
//! * `GET /readyz` — **readiness** JSON (load state, open breakers,
//!   quarantine depth; 503 while the broker should be drained — when
//!   installed via [`ScrapeHandlers::with_readyz`]),
//! * `GET /explain` — JSON array of recent match explanations,
//! * `GET /quality` — live precision/recall/F1 JSON (when the embedder
//!   installs a handler via [`ScrapeHandlers::with_quality`]),
//! * `GET /top` — top-k hottest themes/terms JSON (when installed via
//!   [`ScrapeHandlers::with_top`]),
//! * `GET /costs` — sampled cost-attribution JSON (when installed via
//!   [`ScrapeHandlers::with_costs`]),
//! * `GET /overload` — load-state / shedding / circuit-breaker JSON (when
//!   installed via [`ScrapeHandlers::with_overload`]),
//! * `GET /debug/bundle` — the latest flight-recorder diagnostic bundle
//!   (404 until one exists; installed via [`ScrapeHandlers::with_bundle`]),
//! * `POST /debug/trigger` — fires a manual diagnostic trigger (installed
//!   via [`ScrapeHandlers::with_trigger`]).
//!
//! Endpoints live in one route table, so dispatch, method checking
//! (known path + wrong method → 405), and the 404 help text all derive
//! from the same registrations — the help text can never drift from the
//! installed handlers again.
//!
//! The handlers are plain closures supplied by the embedding process, so
//! this crate stays free of tep dependencies and the broker stays free
//! of networking. Requests are served sequentially — a scrape endpoint
//! is polled by one Prometheus server every few seconds, not by a
//! crowd — which keeps the implementation at one thread, zero
//! dependencies, and no connection bookkeeping. Malformed, oversized, or
//! dropped requests get an error response (or a silently discarded
//! write); none of them can take the serving thread down.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-request read timeout: a scraper that stalls mid-request must not
/// wedge the single serving thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Produces one response: `(status line, body)`. The content type is
/// fixed per route.
type RouteHandler = Box<dyn Fn() -> (&'static str, String) + Send + Sync>;

/// One installed endpoint.
struct Route {
    method: &'static str,
    path: &'static str,
    content_type: &'static str,
    respond: RouteHandler,
}

/// The route table, built by the embedder; see the module docs for the
/// endpoints.
pub struct ScrapeHandlers {
    routes: Vec<Route>,
    refresh: Option<Box<dyn Fn() + Send + Sync>>,
}

/// Wraps an infallible body producer as an always-200 route handler.
fn ok(body: impl Fn() -> String + Send + Sync + 'static) -> RouteHandler {
    Box::new(move || ("200 OK", body()))
}

impl ScrapeHandlers {
    /// Bundles the `/metrics`, `/healthz`, and `/explain` body
    /// producers. Each is called once per matching request, on the
    /// serving thread. The remaining endpoints answer 404 until
    /// installed with their `with_*` builder.
    pub fn new(
        metrics: impl Fn() -> String + Send + Sync + 'static,
        healthz: impl Fn() -> String + Send + Sync + 'static,
        explain: impl Fn() -> String + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        ScrapeHandlers {
            routes: vec![
                Route {
                    method: "GET",
                    path: "/metrics",
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    respond: ok(metrics),
                },
                Route {
                    method: "GET",
                    path: "/healthz",
                    content_type: "application/json",
                    respond: ok(healthz),
                },
                Route {
                    method: "GET",
                    path: "/explain",
                    content_type: "application/json",
                    respond: ok(explain),
                },
            ],
            refresh: None,
        }
    }

    /// Installs a pre-scrape refresh hook, run before each `/metrics`
    /// body is produced. Embedders use this to advance lazily-maintained
    /// state — e.g. pushing a fresh windowed-rate frame — so a scrape
    /// after an idle stretch reports current numbers instead of the last
    /// frame some past activity happened to leave behind.
    pub fn with_refresh(mut self, refresh: impl Fn() + Send + Sync + 'static) -> ScrapeHandlers {
        self.refresh = Some(Box::new(refresh));
        self
    }

    /// Installs the `/quality` body producer (JSON).
    pub fn with_quality(
        mut self,
        quality: impl Fn() -> String + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        self.routes.push(Route {
            method: "GET",
            path: "/quality",
            content_type: "application/json",
            respond: ok(quality),
        });
        self
    }

    /// Installs the `/top` body producer (JSON).
    pub fn with_top(mut self, top: impl Fn() -> String + Send + Sync + 'static) -> ScrapeHandlers {
        self.routes.push(Route {
            method: "GET",
            path: "/top",
            content_type: "application/json",
            respond: ok(top),
        });
        self
    }

    /// Installs the `/costs` body producer (JSON): the broker's
    /// sampled cost-attribution snapshot.
    pub fn with_costs(
        mut self,
        costs: impl Fn() -> String + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        self.routes.push(Route {
            method: "GET",
            path: "/costs",
            content_type: "application/json",
            respond: ok(costs),
        });
        self
    }

    /// Installs the `/overload` body producer (JSON).
    pub fn with_overload(
        mut self,
        overload: impl Fn() -> String + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        self.routes.push(Route {
            method: "GET",
            path: "/overload",
            content_type: "application/json",
            respond: ok(overload),
        });
        self
    }

    /// Installs the `/readyz` readiness producer: `(ready, body)`, served
    /// as 200 when ready and 503 when the broker should be drained.
    /// Distinct from `/healthz` liveness — an overloaded broker is alive
    /// (don't restart it) but not ready (stop routing new load to it).
    pub fn with_readyz(
        mut self,
        readyz: impl Fn() -> (bool, String) + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        self.routes.push(Route {
            method: "GET",
            path: "/readyz",
            content_type: "application/json",
            respond: Box::new(move || {
                let (ready, body) = readyz();
                let status = if ready {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                (status, body)
            }),
        });
        self
    }

    /// Installs the `/debug/bundle` producer: the latest diagnostic
    /// bundle JSON, or `None` (served as 404) while no trigger has fired
    /// yet.
    pub fn with_bundle(
        mut self,
        bundle: impl Fn() -> Option<String> + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        self.routes.push(Route {
            method: "GET",
            path: "/debug/bundle",
            content_type: "application/json",
            respond: Box::new(move || match bundle() {
                Some(body) => ("200 OK", body),
                None => (
                    "404 Not Found",
                    "{\"error\": \"no bundle yet\"}\n".to_string(),
                ),
            }),
        });
        self
    }

    /// Installs the `POST /debug/trigger` handler: fires a manual
    /// diagnostic trigger and returns its JSON acknowledgement.
    pub fn with_trigger(
        mut self,
        trigger: impl Fn() -> String + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        self.routes.push(Route {
            method: "POST",
            path: "/debug/trigger",
            content_type: "application/json",
            respond: ok(trigger),
        });
        self
    }

    /// The 404 body, derived from the installed routes so it can never
    /// drift from what is actually served.
    fn not_found_help(&self) -> String {
        let mut help = String::from("not found; try ");
        for (i, route) in self.routes.iter().enumerate() {
            if i > 0 {
                help.push_str(", ");
            }
            help.push_str(route.path);
        }
        help.push('\n');
        help
    }
}

impl fmt::Debug for ScrapeHandlers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScrapeHandlers")
            .field(
                "routes",
                &self
                    .routes
                    .iter()
                    .map(|r| format!("{} {}", r.method, r.path))
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

/// A running scrape server; dropping (or calling
/// [`ScrapeServer::shutdown`]) stops the serving thread.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// The bound address (useful with port 0, which picks a free port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it with one throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9900"`, port 0 for an ephemeral port)
/// and serves the scrape endpoints on a background thread until the
/// returned [`ScrapeServer`] is shut down or dropped.
pub fn serve(addr: impl ToSocketAddrs, handlers: ScrapeHandlers) -> io::Result<ScrapeServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("tep-scrape".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let _ = handle_connection(&mut stream, &handlers);
            }
        })?;
    Ok(ScrapeServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Reads the request head and writes one response.
fn handle_connection(stream: &mut TcpStream, handlers: &ScrapeHandlers) -> io::Result<()> {
    let (head, complete) = read_request_head(stream)?;
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let raw_path = parts.next().unwrap_or("");
    // Ignore any query string: `/metrics?x=1` still scrapes.
    let path = raw_path.split('?').next().unwrap_or(raw_path);

    let (status, content_type, body) = if !complete {
        (
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            "request head too large\n".to_string(),
        )
    } else if method.is_empty() || !path.starts_with('/') {
        (
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "malformed request line\n".to_string(),
        )
    } else if let Some(route) = handlers
        .routes
        .iter()
        .find(|r| r.path == path && r.method == method)
    {
        if route.path == "/metrics" {
            if let Some(refresh) = &handlers.refresh {
                refresh();
            }
        }
        let (status, body) = (route.respond)();
        (status, route.content_type, body)
    } else if handlers.routes.iter().any(|r| r.path == path) {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            handlers.not_found_help(),
        )
    };

    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads until the end of the request head (`\r\n\r\n`), EOF, or the
/// size cap. The flag reports whether the head terminator was seen
/// before the cap — a `false` with a full buffer means the client sent
/// an oversized head.
fn read_request_head(stream: &mut TcpStream) -> io::Result<(String, bool)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            // A request that stalls past the read timeout is treated as
            // what arrived; the response write to a dead peer just fails.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                0
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            return Ok((String::from_utf8_lossy(&buf).into_owned(), true));
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return Ok((String::from_utf8_lossy(&buf).into_owned(), false));
        }
    }
    // EOF before the terminator: serve what we got (an empty or partial
    // line falls out as 400), never kill the thread.
    Ok((String::from_utf8_lossy(&buf).into_owned(), true))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> ScrapeServer {
        serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(
                || "# TYPE t_total counter\nt_total 1\n".to_string(),
                || "{\"status\":\"ok\"}".to_string(),
                || "[]".to_string(),
            ),
        )
        .expect("bind ephemeral port")
    }

    fn request(addr: SocketAddr, head: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(head.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    #[test]
    fn serves_all_three_endpoints() {
        let server = start();
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(metrics.ends_with("t_total 1\n"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.contains("Content-Type: application/json"));
        assert!(health.ends_with("{\"status\":\"ok\"}"));

        let explain = get(addr, "/explain?limit=5");
        assert!(explain.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(explain.ends_with("[]"), "query string is ignored");

        server.shutdown();
    }

    #[test]
    fn quality_and_top_are_404_until_installed() {
        let server = start();
        let addr = server.local_addr();
        assert!(get(addr, "/quality").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/top").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/costs").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/overload").starts_with("HTTP/1.1 404"));
        server.shutdown();

        let server = serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(String::new, String::new, String::new)
                .with_quality(|| "{\"f1\":0.85}".to_string())
                .with_top(|| "{\"themes\":[]}".to_string())
                .with_costs(|| "{\"entries\":[]}".to_string())
                .with_overload(|| "{\"state\":\"healthy\"}".to_string()),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let quality = get(addr, "/quality");
        assert!(quality.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(quality.contains("Content-Type: application/json"));
        assert!(quality.ends_with("{\"f1\":0.85}"));
        let top = get(addr, "/top");
        assert!(top.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(top.ends_with("{\"themes\":[]}"));
        let costs = get(addr, "/costs");
        assert!(costs.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(costs.contains("Content-Type: application/json"));
        assert!(costs.ends_with("{\"entries\":[]}"));
        let overload = get(addr, "/overload");
        assert!(overload.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(overload.ends_with("{\"state\":\"healthy\"}"));
        // The 404 hint advertises the new endpoints.
        assert!(get(addr, "/nope").contains("/quality, /top, /costs, /overload"));
        server.shutdown();
    }

    #[test]
    fn not_found_help_tracks_installed_routes() {
        let server = start();
        let addr = server.local_addr();
        let base = get(addr, "/nope");
        assert!(base.contains("try /metrics, /healthz, /explain\n"));
        assert!(
            !base.contains("/debug"),
            "uninstalled routes are not advertised"
        );
        server.shutdown();

        let server = serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(String::new, String::new, String::new)
                .with_readyz(|| (true, "{}".to_string()))
                .with_bundle(|| None)
                .with_trigger(|| "{}".to_string()),
        )
        .expect("bind ephemeral port");
        let full = get(server.local_addr(), "/nope");
        assert!(
            full.contains(
                "try /metrics, /healthz, /explain, /readyz, /debug/bundle, /debug/trigger\n"
            ),
            "derived help lists every installed route: {full}"
        );
        server.shutdown();
    }

    #[test]
    fn readyz_reports_200_when_ready_and_503_when_not() {
        use std::sync::atomic::AtomicBool;
        let ready = Arc::new(AtomicBool::new(true));
        let probe = Arc::clone(&ready);
        let server = serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(String::new, String::new, String::new).with_readyz(move || {
                let ok = probe.load(Ordering::SeqCst);
                (ok, format!("{{\"ready\": {ok}}}"))
            }),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let up = get(addr, "/readyz");
        assert!(up.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(up.ends_with("{\"ready\": true}"));
        ready.store(false, Ordering::SeqCst);
        let down = get(addr, "/readyz");
        assert!(down.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(down.ends_with("{\"ready\": false}"));
        server.shutdown();
    }

    #[test]
    fn bundle_is_404_until_available_and_trigger_is_post_only() {
        use std::sync::Mutex;
        let bundle: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let reader = Arc::clone(&bundle);
        let writer = Arc::clone(&bundle);
        let server = serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(String::new, String::new, String::new)
                .with_bundle(move || reader.lock().unwrap().clone())
                .with_trigger(move || {
                    *writer.lock().unwrap() = Some("{\"bundle_seq\": 0}".to_string());
                    "{\"triggered\": true}".to_string()
                }),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let missing = get(addr, "/debug/bundle");
        assert!(missing.starts_with("HTTP/1.1 404"));
        // Not the plain-text route-help 404: a JSON error body with the
        // route's content type, so clients parsing the endpoint always
        // get JSON.
        assert!(missing.contains("Content-Type: application/json"));
        assert!(missing.ends_with("{\"error\": \"no bundle yet\"}\n"));
        // The trigger route only answers POST.
        assert!(get(addr, "/debug/trigger").starts_with("HTTP/1.1 405"));
        let fired = request(addr, "POST /debug/trigger HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(fired.starts_with("HTTP/1.1 200 OK\r\n"), "{fired}");
        assert!(fired.ends_with("{\"triggered\": true}"));
        let found = get(addr, "/debug/bundle");
        assert!(found.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(found.ends_with("{\"bundle_seq\": 0}"));
        server.shutdown();
    }

    #[test]
    fn refresh_hook_runs_before_each_metrics_scrape_only() {
        use std::sync::atomic::AtomicUsize;
        let refreshed = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&refreshed);
        let counter = Arc::clone(&refreshed);
        let server = serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(
                move || format!("refreshes {}\n", observed.load(Ordering::SeqCst)),
                || "{}".to_string(),
                || "[]".to_string(),
            )
            .with_refresh(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        // The hook runs before the body producer, so the first scrape
        // already sees its effect.
        assert!(get(addr, "/metrics").ends_with("refreshes 1\n"));
        assert!(get(addr, "/metrics").ends_with("refreshes 2\n"));
        // Other endpoints never trigger it.
        let _ = get(addr, "/healthz");
        let _ = get(addr, "/explain");
        assert_eq!(refreshed.load(Ordering::SeqCst), 2);
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let server = start();
        let addr = server.local_addr();
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404 Not Found\r\n"));
        let post = request(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        server.shutdown();
    }

    #[test]
    fn content_length_matches_body() {
        let server = start();
        let resp = get(server.local_addr(), "/healthz");
        let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        server.shutdown();
    }

    #[test]
    fn malformed_request_lines_get_400_and_the_thread_survives() {
        let server = start();
        let addr = server.local_addr();
        for junk in [
            "GARBAGE\r\n\r\n",
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
            "\0\0\0\0\r\n\r\n",
        ] {
            let resp = request(addr, junk);
            assert!(
                resp.starts_with("HTTP/1.1 400 Bad Request\r\n"),
                "junk {junk:?} got {resp:?}"
            );
        }
        // The serving thread survived all of it.
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200 OK\r\n"));
        server.shutdown();
    }

    #[test]
    fn oversized_request_head_gets_431_and_the_thread_survives() {
        let server = start();
        let addr = server.local_addr();
        // A header stream that reaches the cap without ever terminating.
        // Sized to exactly the cap so the server drains every byte before
        // responding (a closing socket with unread data would RST the
        // connection and discard the response we want to assert on).
        let prefix = "GET /metrics HTTP/1.1\r\nX-Pad: ";
        let huge = format!("{prefix}{}", "x".repeat(MAX_REQUEST_BYTES - prefix.len()));
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.write_all(huge.as_bytes());
        let mut resp = String::new();
        let _ = s.read_to_string(&mut resp);
        assert!(
            resp.starts_with("HTTP/1.1 431 "),
            "oversized head got {:?}",
            resp.lines().next()
        );
        drop(s);
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200 OK\r\n"));
        server.shutdown();
    }

    #[test]
    fn partial_reads_and_mid_response_drops_do_not_kill_the_thread() {
        let server = start();
        let addr = server.local_addr();
        // Partial request line, then the client vanishes.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /met").unwrap();
        } // dropped before the head terminator
          // Full request, but the client drops before reading the response.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
        } // dropped mid-response
          // An empty connection (no bytes at all).
        {
            let _s = TcpStream::connect(addr).expect("connect");
        }
        // The serving thread is still alive and serving.
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200 OK\r\n"));
        server.shutdown();
    }

    #[test]
    fn drop_stops_the_server() {
        let server = start();
        let addr = server.local_addr();
        drop(server);
        // The port is released: either connects are refused or a fresh
        // bind on the same port succeeds.
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
                || TcpListener::bind(addr).is_ok()
        );
    }
}
