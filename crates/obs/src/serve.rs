//! A dependency-free blocking HTTP scrape server.
//!
//! One `std::net::TcpListener` on one thread, serving read-only
//! endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition,
//! * `GET /healthz` — liveness JSON (supervisor state, quarantine depth),
//! * `GET /explain` — JSON array of recent match explanations,
//! * `GET /quality` — live precision/recall/F1 JSON (when the embedder
//!   installs a handler via [`ScrapeHandlers::with_quality`]),
//! * `GET /top` — top-k hottest themes/terms JSON (when installed via
//!   [`ScrapeHandlers::with_top`]),
//! * `GET /overload` — load-state / shedding / circuit-breaker JSON (when
//!   installed via [`ScrapeHandlers::with_overload`]).
//!
//! The handlers are plain closures supplied by the embedding process, so
//! this crate stays free of tep dependencies and the broker stays free
//! of networking. Requests are served sequentially — a scrape endpoint
//! is polled by one Prometheus server every few seconds, not by a
//! crowd — which keeps the implementation at one thread, zero
//! dependencies, and no connection bookkeeping.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-request read timeout: a scraper that stalls mid-request must not
/// wedge the single serving thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

type Handler = Box<dyn Fn() -> String + Send + Sync>;

/// The endpoint bodies, produced on demand by the embedder.
pub struct ScrapeHandlers {
    metrics: Handler,
    healthz: Handler,
    explain: Handler,
    quality: Option<Handler>,
    top: Option<Handler>,
    overload: Option<Handler>,
    refresh: Option<Box<dyn Fn() + Send + Sync>>,
}

impl ScrapeHandlers {
    /// Bundles the `/metrics`, `/healthz`, and `/explain` body
    /// producers. Each is called once per matching request, on the
    /// serving thread. `/quality` and `/top` answer 404 until installed
    /// with [`ScrapeHandlers::with_quality`] / [`ScrapeHandlers::with_top`].
    pub fn new(
        metrics: impl Fn() -> String + Send + Sync + 'static,
        healthz: impl Fn() -> String + Send + Sync + 'static,
        explain: impl Fn() -> String + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        ScrapeHandlers {
            metrics: Box::new(metrics),
            healthz: Box::new(healthz),
            explain: Box::new(explain),
            quality: None,
            top: None,
            overload: None,
            refresh: None,
        }
    }

    /// Installs a pre-scrape refresh hook, run before each `/metrics`
    /// body is produced. Embedders use this to advance lazily-maintained
    /// state — e.g. pushing a fresh windowed-rate frame — so a scrape
    /// after an idle stretch reports current numbers instead of the last
    /// frame some past activity happened to leave behind.
    pub fn with_refresh(mut self, refresh: impl Fn() + Send + Sync + 'static) -> ScrapeHandlers {
        self.refresh = Some(Box::new(refresh));
        self
    }

    /// Installs the `/quality` body producer (JSON).
    pub fn with_quality(
        mut self,
        quality: impl Fn() -> String + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        self.quality = Some(Box::new(quality));
        self
    }

    /// Installs the `/top` body producer (JSON).
    pub fn with_top(mut self, top: impl Fn() -> String + Send + Sync + 'static) -> ScrapeHandlers {
        self.top = Some(Box::new(top));
        self
    }

    /// Installs the `/overload` body producer (JSON).
    pub fn with_overload(
        mut self,
        overload: impl Fn() -> String + Send + Sync + 'static,
    ) -> ScrapeHandlers {
        self.overload = Some(Box::new(overload));
        self
    }
}

impl fmt::Debug for ScrapeHandlers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScrapeHandlers").finish_non_exhaustive()
    }
}

/// A running scrape server; dropping (or calling
/// [`ScrapeServer::shutdown`]) stops the serving thread.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// The bound address (useful with port 0, which picks a free port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it with one throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9900"`, port 0 for an ephemeral port)
/// and serves the scrape endpoints on a background thread until the
/// returned [`ScrapeServer`] is shut down or dropped.
pub fn serve(addr: impl ToSocketAddrs, handlers: ScrapeHandlers) -> io::Result<ScrapeServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("tep-scrape".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let _ = handle_connection(&mut stream, &handlers);
            }
        })?;
    Ok(ScrapeServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Reads the request head and writes one response.
fn handle_connection(stream: &mut TcpStream, handlers: &ScrapeHandlers) -> io::Result<()> {
    let head = read_request_head(stream)?;
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Ignore any query string: `/metrics?x=1` still scrapes.
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => {
                if let Some(refresh) = &handlers.refresh {
                    refresh();
                }
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    (handlers.metrics)(),
                )
            }
            "/healthz" => ("200 OK", "application/json", (handlers.healthz)()),
            "/explain" => ("200 OK", "application/json", (handlers.explain)()),
            "/quality" if handlers.quality.is_some() => (
                "200 OK",
                "application/json",
                (handlers.quality.as_ref().expect("guarded"))(),
            ),
            "/top" if handlers.top.is_some() => (
                "200 OK",
                "application/json",
                (handlers.top.as_ref().expect("guarded"))(),
            ),
            "/overload" if handlers.overload.is_some() => (
                "200 OK",
                "application/json",
                (handlers.overload.as_ref().expect("guarded"))(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; try /metrics, /healthz, /explain, /quality, /top, /overload\n"
                    .to_string(),
            ),
        }
    };

    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads until the end of the request head (`\r\n\r\n`) or the size cap.
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> ScrapeServer {
        serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(
                || "# TYPE t_total counter\nt_total 1\n".to_string(),
                || "{\"status\":\"ok\"}".to_string(),
                || "[]".to_string(),
            ),
        )
        .expect("bind ephemeral port")
    }

    fn request(addr: SocketAddr, head: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(head.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    #[test]
    fn serves_all_three_endpoints() {
        let server = start();
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(metrics.ends_with("t_total 1\n"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.contains("Content-Type: application/json"));
        assert!(health.ends_with("{\"status\":\"ok\"}"));

        let explain = get(addr, "/explain?limit=5");
        assert!(explain.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(explain.ends_with("[]"), "query string is ignored");

        server.shutdown();
    }

    #[test]
    fn quality_and_top_are_404_until_installed() {
        let server = start();
        let addr = server.local_addr();
        assert!(get(addr, "/quality").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/top").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/overload").starts_with("HTTP/1.1 404"));
        server.shutdown();

        let server = serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(String::new, String::new, String::new)
                .with_quality(|| "{\"f1\":0.85}".to_string())
                .with_top(|| "{\"themes\":[]}".to_string())
                .with_overload(|| "{\"state\":\"healthy\"}".to_string()),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let quality = get(addr, "/quality");
        assert!(quality.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(quality.contains("Content-Type: application/json"));
        assert!(quality.ends_with("{\"f1\":0.85}"));
        let top = get(addr, "/top");
        assert!(top.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(top.ends_with("{\"themes\":[]}"));
        let overload = get(addr, "/overload");
        assert!(overload.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(overload.ends_with("{\"state\":\"healthy\"}"));
        // The 404 hint advertises the new endpoints.
        assert!(get(addr, "/nope").contains("/quality, /top, /overload"));
        server.shutdown();
    }

    #[test]
    fn refresh_hook_runs_before_each_metrics_scrape_only() {
        use std::sync::atomic::AtomicUsize;
        let refreshed = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&refreshed);
        let counter = Arc::clone(&refreshed);
        let server = serve(
            "127.0.0.1:0",
            ScrapeHandlers::new(
                move || format!("refreshes {}\n", observed.load(Ordering::SeqCst)),
                || "{}".to_string(),
                || "[]".to_string(),
            )
            .with_refresh(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        // The hook runs before the body producer, so the first scrape
        // already sees its effect.
        assert!(get(addr, "/metrics").ends_with("refreshes 1\n"));
        assert!(get(addr, "/metrics").ends_with("refreshes 2\n"));
        // Other endpoints never trigger it.
        let _ = get(addr, "/healthz");
        let _ = get(addr, "/explain");
        assert_eq!(refreshed.load(Ordering::SeqCst), 2);
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let server = start();
        let addr = server.local_addr();
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404 Not Found\r\n"));
        let post = request(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        server.shutdown();
    }

    #[test]
    fn content_length_matches_body() {
        let server = start();
        let resp = get(server.local_addr(), "/healthz");
        let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        server.shutdown();
    }

    #[test]
    fn drop_stops_the_server() {
        let server = start();
        let addr = server.local_addr();
        drop(server);
        // The port is released: either connects are refused or a fresh
        // bind on the same port succeeds.
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
                || TcpListener::bind(addr).is_ok()
        );
    }
}
