//! Causal spans: parent/child timing records keyed by event sequence.
//!
//! A [`SpanCollector`] turns the flat trace ring into a causal trace: each
//! recorded [`SpanRecord`] carries its parent's id, so one event's journey
//! (publish → route → N match tests → M deliveries → quarantine)
//! reconstructs as a tree with [`span_tree`]. Sampling is deterministic —
//! 1-in-k by event sequence number — so repeated runs trace the same
//! events and the hot path pays nothing for unsampled traffic beyond one
//! modulo.

use crate::escape::escape_json;
use crate::trace::TraceRing;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One timed operation in an event's causal trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Collector-unique span id.
    pub id: u64,
    /// Id of the enclosing span, `None` for roots (the publish span).
    pub parent: Option<u64>,
    /// Sequence number of the event this span belongs to.
    pub seq: u64,
    /// Operation name (`publish`, `route`, `match`, `deliver`,
    /// `quarantine`).
    pub name: &'static str,
    /// Start offset in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Free-form attributes (subscription id, score, outcome, ...).
    pub attrs: Vec<(String, String)>,
}

/// Collects sampled [`SpanRecord`]s into a bounded ring.
///
/// Thread-safe: ids come from an atomic counter and the ring is the same
/// mutexed deque the event traces use. Disabled collectors (capacity 0
/// or `sample_every` 0) never record and never allocate.
#[derive(Debug)]
pub struct SpanCollector {
    ring: TraceRing<SpanRecord>,
    next_id: AtomicU64,
    epoch: Instant,
    sample_every: u64,
}

impl SpanCollector {
    /// A collector keeping the newest `capacity` spans and sampling one
    /// event in every `sample_every` (both 0 = disabled).
    pub fn new(capacity: usize, sample_every: u64) -> SpanCollector {
        SpanCollector {
            ring: TraceRing::new(capacity),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            sample_every,
        }
    }

    /// A collector that records nothing.
    pub fn disabled() -> SpanCollector {
        SpanCollector::new(0, 0)
    }

    /// Whether any event can be sampled at all.
    pub fn is_enabled(&self) -> bool {
        self.ring.is_enabled() && self.sample_every > 0
    }

    /// The configured 1-in-k sampling divisor (0 = disabled).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Whether the event with sequence number `seq` is traced.
    /// Deterministic: `seq % k == 0`, so re-running a workload samples
    /// the same events.
    pub fn sampled(&self, seq: u64) -> bool {
        self.is_enabled() && seq.is_multiple_of(self.sample_every)
    }

    /// Reserves a span id without recording anything yet; pair with
    /// [`SpanCollector::record`] once the operation's end is known. This
    /// lets a producer hand the id to children (as their parent) before
    /// its own span closes.
    pub fn start_span(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a span under a previously reserved id.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        id: u64,
        parent: Option<u64>,
        seq: u64,
        name: &'static str,
        start: Instant,
        end: Instant,
        attrs: Vec<(String, String)>,
    ) {
        if !self.ring.is_enabled() {
            return;
        }
        let start_ns = start
            .saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let duration_ns = end
            .saturating_duration_since(start)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        self.ring.push(SpanRecord {
            id,
            parent,
            seq,
            name,
            start_ns,
            duration_ns,
            attrs,
        });
    }

    /// Reserves an id and records in one step, returning the id for use
    /// as a parent.
    #[allow(clippy::too_many_arguments)]
    pub fn record_new(
        &self,
        parent: Option<u64>,
        seq: u64,
        name: &'static str,
        start: Instant,
        end: Instant,
        attrs: Vec<(String, String)>,
    ) -> u64 {
        let id = self.start_span();
        self.record(id, parent, seq, name, start, end, attrs);
        id
    }

    /// The retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// A [`SpanRecord`] with its children attached, start-time ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total number of spans in this subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }
}

/// Reconstructs the causal tree(s) for event `seq` from a flat span
/// dump. Spans whose parent was evicted from the ring surface as extra
/// roots rather than vanishing; roots and siblings are ordered by start
/// time.
pub fn span_tree(records: &[SpanRecord], seq: u64) -> Vec<SpanNode> {
    let mut spans: Vec<&SpanRecord> = records.iter().filter(|r| r.seq == seq).collect();
    spans.sort_by_key(|r| (r.start_ns, r.id));
    let present = |id: u64| spans.iter().any(|r| r.id == id);
    fn build(spans: &[&SpanRecord], parent: u64) -> Vec<SpanNode> {
        spans
            .iter()
            .filter(|r| r.parent == Some(parent))
            .map(|r| SpanNode {
                record: (*r).clone(),
                children: build(spans, r.id),
            })
            .collect()
    }
    spans
        .iter()
        .filter(|r| match r.parent {
            None => true,
            Some(p) => !present(p),
        })
        .map(|r| SpanNode {
            record: (*r).clone(),
            children: build(&spans, r.id),
        })
        .collect()
}

/// Renders a flat span dump as a JSON array (one object per span, with
/// `parent: null` for roots and attrs as a string map).
pub fn render_spans_json(records: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"id\": {}, \"parent\": {}, \"seq\": {}, \"name\": \"{}\", \
             \"start_ns\": {}, \"duration_ns\": {}, \"attrs\": {{",
            r.id,
            r.parent
                .map_or_else(|| "null".to_string(), |p| p.to_string()),
            r.seq,
            escape_json(r.name),
            r.start_ns,
            r.duration_ns,
        );
        for (j, (k, v)) in r.attrs.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": \"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn collector() -> SpanCollector {
        SpanCollector::new(64, 2)
    }

    #[test]
    fn sampling_is_deterministic_one_in_k() {
        let c = collector();
        assert!(c.is_enabled());
        assert!(c.sampled(0));
        assert!(!c.sampled(1));
        assert!(c.sampled(2));
        assert!(!c.sampled(3));
        assert!(!SpanCollector::disabled().sampled(0));
        assert!(
            !SpanCollector::new(0, 1).sampled(0),
            "no capacity, no spans"
        );
        assert!(!SpanCollector::new(8, 0).sampled(0), "k=0 disables");
    }

    #[test]
    fn tree_reconstructs_publish_route_match_deliver() {
        let c = collector();
        let t0 = Instant::now();
        let t = |ms: u64| t0 + Duration::from_millis(ms);
        let publish = c.start_span();
        c.record(publish, None, 0, "publish", t(0), t(1), vec![]);
        let route = c.record_new(Some(publish), 0, "route", t(1), t(2), vec![]);
        let m1 = c.record_new(
            Some(route),
            0,
            "match",
            t(2),
            t(4),
            vec![("subscription".into(), "s0".into())],
        );
        let m2 = c.record_new(Some(route), 0, "match", t(4), t(5), vec![]);
        c.record_new(Some(m1), 0, "deliver", t(5), t(6), vec![]);
        // A different event's spans must not leak into seq 0's tree.
        c.record_new(None, 7, "publish", t(0), t(1), vec![]);

        let spans = c.snapshot();
        assert_eq!(spans.len(), 6);
        let tree = span_tree(&spans, 0);
        assert_eq!(tree.len(), 1, "one root: the publish span");
        let root = &tree[0];
        assert_eq!(root.record.name, "publish");
        assert_eq!(root.size(), 5);
        assert_eq!(root.children.len(), 1);
        let route_node = &root.children[0];
        assert_eq!(route_node.record.name, "route");
        assert_eq!(route_node.children.len(), 2, "both match tests");
        assert_eq!(route_node.children[0].record.id, m1);
        assert_eq!(route_node.children[1].record.id, m2);
        assert_eq!(route_node.children[0].children[0].record.name, "deliver");
        assert!(route_node.children[1].children.is_empty());
    }

    #[test]
    fn orphaned_spans_surface_as_roots() {
        let c = collector();
        let t0 = Instant::now();
        // Parent id 999 was never recorded (evicted, say).
        c.record_new(Some(999), 3, "match", t0, t0, vec![]);
        let tree = span_tree(&c.snapshot(), 3);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].record.name, "match");
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = SpanCollector::disabled();
        let t0 = Instant::now();
        c.record_new(None, 0, "publish", t0, t0, vec![]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn json_dump_is_balanced_and_escaped() {
        let c = collector();
        let t0 = Instant::now();
        c.record_new(
            None,
            0,
            "publish",
            t0,
            t0,
            vec![("note".into(), "quo\"te\\".into())],
        );
        c.record_new(Some(1), 0, "route", t0, t0, vec![]);
        let json = render_spans_json(&c.snapshot());
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\": \"publish\""));
        assert!(json.contains("\"parent\": null"));
        assert!(json.contains("\"note\": \"quo\\\"te\\\\\""));
        assert_eq!(
            json.matches(['{', '[']).count(),
            json.matches(['}', ']']).count()
        );
        assert_eq!(render_spans_json(&[]), "[\n]\n");
    }
}
