//! Labeled counter families with a hard cardinality cap.
//!
//! A dimensional metric (per-theme, per-subscriber, per-temperature) is
//! a map from a label value to a counter. Unbounded label values are
//! the classic way to melt a metrics backend, so a [`CounterFamily`]
//! admits at most `cap` distinct series; every increment beyond that
//! lands in a shared **overflow** series (exported under the
//! [`OVERFLOW_LABEL`] value) — total counts stay exact, only the
//! per-value breakdown saturates.
//!
//! The hot path holds an [`Arc<AtomicU64>`] handle resolved once (e.g.
//! at subscribe time) and pays one relaxed `fetch_add` per increment;
//! resolving a new label value takes a short write lock, which is rare
//! by construction (label sets are small and stable).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The label value under which capped-out increments are exported.
pub const OVERFLOW_LABEL: &str = "_overflow";

/// A capped family of labeled counters; see the module docs.
///
/// Shareable by reference across threads; all methods take `&self`.
pub struct CounterFamily {
    series: RwLock<HashMap<String, Arc<AtomicU64>>>,
    cap: usize,
    overflow: Arc<AtomicU64>,
}

impl fmt::Debug for CounterFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CounterFamily")
            .field("cap", &self.cap)
            .field("series", &self.len())
            .field("overflow", &self.overflow.load(Ordering::Relaxed))
            .finish()
    }
}

impl CounterFamily {
    /// An empty family admitting at most `cap` distinct label values
    /// (clamped to at least 1).
    pub fn new(cap: usize) -> CounterFamily {
        CounterFamily {
            series: RwLock::new(HashMap::new()),
            cap: cap.max(1),
            overflow: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The counter handle for `value`, creating it while the family is
    /// under its cap; at the cap, the shared overflow handle. Resolve
    /// once and keep the `Arc` where the call site is hot.
    pub fn handle(&self, value: &str) -> Arc<AtomicU64> {
        if let Some(found) = self
            .series
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(value)
        {
            return Arc::clone(found);
        }
        let mut series = self.series.write().unwrap_or_else(|e| e.into_inner());
        if let Some(found) = series.get(value) {
            return Arc::clone(found);
        }
        if series.len() >= self.cap {
            return Arc::clone(&self.overflow);
        }
        let counter = Arc::new(AtomicU64::new(0));
        series.insert(value.to_string(), Arc::clone(&counter));
        counter
    }

    /// Adds `n` to `value`'s counter (or to overflow past the cap).
    pub fn add(&self, value: &str, n: u64) {
        self.handle(value).fetch_add(n, Ordering::Relaxed);
    }

    /// Distinct label values currently admitted (excludes overflow).
    pub fn len(&self) -> usize {
        self.series.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no label value has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(label value, count)` pairs sorted by label value, with
    /// [`OVERFLOW_LABEL`] appended when any increment overflowed —
    /// ready to feed `counter_with`.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let series = self.series.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, u64)> = series
            .iter()
            .map(|(value, counter)| (value.clone(), counter.load(Ordering::Relaxed)))
            .collect();
        drop(series);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        let overflowed = self.overflow.load(Ordering::Relaxed);
        if overflowed > 0 {
            out.push((OVERFLOW_LABEL.to_string(), overflowed));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_count_independently() {
        let family = CounterFamily::new(8);
        family.add("sports", 3);
        family.add("finance", 1);
        family.add("sports", 2);
        assert_eq!(
            family.snapshot(),
            vec![("finance".to_string(), 1), ("sports".to_string(), 5)]
        );
        assert_eq!(family.len(), 2);
    }

    #[test]
    fn cap_routes_excess_labels_to_overflow() {
        let family = CounterFamily::new(2);
        family.add("a", 1);
        family.add("b", 1);
        family.add("c", 10);
        family.add("d", 5);
        family.add("a", 1); // existing series keep counting
        assert_eq!(family.len(), 2, "cap admits exactly 2 series");
        let snap = family.snapshot();
        assert_eq!(
            snap,
            vec![
                ("a".to_string(), 2),
                ("b".to_string(), 1),
                (OVERFLOW_LABEL.to_string(), 15),
            ]
        );
        // Total counts are preserved exactly.
        assert_eq!(snap.iter().map(|(_, v)| v).sum::<u64>(), 18);
    }

    #[test]
    fn hot_path_handles_are_stable() {
        let family = CounterFamily::new(4);
        let h1 = family.handle("sub-1");
        let h2 = family.handle("sub-1");
        h1.fetch_add(7, Ordering::Relaxed);
        h2.fetch_add(1, Ordering::Relaxed);
        assert_eq!(family.snapshot(), vec![("sub-1".to_string(), 8)]);
        assert!(family.handle("sub-1").load(Ordering::Relaxed) == 8);
    }

    #[test]
    fn concurrent_increments_reconcile() {
        use std::sync::Arc as StdArc;
        let family = StdArc::new(CounterFamily::new(4));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let family = StdArc::clone(&family);
                std::thread::spawn(move || {
                    // Two admitted labels + contention past the cap.
                    for _ in 0..10_000 {
                        family.add(if t % 2 == 0 { "even" } else { "odd" }, 1);
                        family.add(&format!("spill-{t}"), 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: u64 = family.snapshot().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 80_000, "no lost increments: {:?}", family.snapshot());
    }
}
