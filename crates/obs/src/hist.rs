//! Lock-free log-linear latency histograms.
//!
//! Values are nanoseconds bucketed HDR-style: below [`SUB`] each value
//! has its own bucket; above, every power of two is split into [`SUB`]
//! linear sub-buckets, bounding the relative quantile error at
//! `1 / SUB` (~3.1%) while keeping the whole table at [`BUCKET_COUNT`]
//! slots — small enough to snapshot and merge freely. (The original
//! 8-sub-bucket layout quantized millisecond-range queue waits too
//! coarsely for the perf gate to see sub-2x regressions; 32 sub-buckets
//! keep adjacent bucket edges within ~3% of each other.)
//!
//! Recording is wait-free: three relaxed `fetch_add`s and one
//! `fetch_max`, no locks, no allocation. Snapshots read the counters
//! without stopping writers, so a snapshot taken mid-traffic can be off
//! by in-flight increments — fine for monitoring, which only ever looks
//! at settled or statistically large counts.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power of two (32 → ≤3.125% quantile error).
const SUB_BITS: u32 = 5;
/// `2^SUB_BITS`.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` nanosecond range.
pub const BUCKET_COUNT: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + SUB as usize;

/// Index of the bucket holding `v` (nanoseconds).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // floor(log2 v) >= SUB_BITS
        let shift = exp - SUB_BITS;
        (((exp - SUB_BITS + 1) as u64) << SUB_BITS) as usize + ((v >> shift) - SUB) as usize
    }
}

/// Largest value (inclusive, nanoseconds) stored in bucket `index`.
fn bucket_upper(index: usize) -> u64 {
    if index < SUB as usize {
        index as u64
    } else {
        let group = (index >> SUB_BITS) as u32; // >= 1
        let offset = index as u64 & (SUB - 1);
        let upper = ((SUB + offset + 1) as u128) << (group - 1);
        (upper - 1).min(u64::MAX as u128) as u64
    }
}

/// A lock-free latency histogram; see the module docs for the layout.
///
/// Shareable by reference across threads; all methods take `&self`.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("p50", &snap.quantile(0.5))
            .field("max", &snap.max())
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one raw nanosecond value.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Freezes the current counts into a mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Adds the current counts into `out` without allocating — the
    /// merge-in-place counterpart of [`LatencyHistogram::snapshot`] +
    /// [`HistogramSnapshot::merge`], for callers (like the flight
    /// recorder tick) that reuse one snapshot buffer on a path that must
    /// stay allocation-free.
    pub fn accumulate_into(&self, out: &mut HistogramSnapshot) {
        out.reserve_buckets();
        for (slot, bucket) in out.buckets.iter_mut().zip(self.buckets.iter()) {
            *slot += bucket.load(Ordering::Relaxed);
        }
        out.sum += self.sum.load(Ordering::Relaxed);
        out.max = out.max.max(self.max.load(Ordering::Relaxed));
    }
}

/// Frozen histogram counts with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            sum: 0,
            max: 0,
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all recorded values, as a duration.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum)
    }

    /// Largest recorded value (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max)
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> Duration {
        self.sum
            .checked_div(self.count())
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the value of that rank, clamped to the observed
    /// maximum. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(bucket_upper(i).min(self.max));
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Duration {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Resets to empty in place, keeping the bucket table allocation so
    /// a reused snapshot buffer never reallocates.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.sum = 0;
        self.max = 0;
    }

    /// Grows the bucket table to the full layout if this snapshot was
    /// built before any accumulation (idempotent; allocates only once).
    fn reserve_buckets(&mut self) {
        if self.buckets.len() < BUCKET_COUNT {
            self.buckets.resize(BUCKET_COUNT, 0);
        }
    }

    /// Adds `other`'s counts into `self` (histograms over the same fixed
    /// bucket layout always merge exactly).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The merged copy of `self` and `other`.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// The counts recorded since `earlier` was taken from the same
    /// histogram: per-bucket saturating subtraction, the raw material for
    /// windowed rates and windowed percentiles. The delta's `max` is the
    /// upper bound of its highest non-empty bucket (clamped to the
    /// cumulative max) — the true windowed maximum is not recoverable
    /// from bucket counts, but the bound shares the bucketing's ≤3.125%
    /// relative error.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let max = buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map_or(0, |(i, _)| bucket_upper(i).min(self.max));
        HistogramSnapshot {
            buckets,
            sum: self.sum.saturating_sub(earlier.sum),
            max,
        }
    }

    /// Non-empty buckets as `(upper_bound_nanos_inclusive, count)`,
    /// ascending — the raw material for Prometheus `le` buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_sub_and_within_error_above() {
        // Below SUB every value has its own bucket.
        for v in 0..SUB {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_upper(i), v);
        }
        // Above SUB the upper bound is within 1/SUB of the value.
        for v in [8u64, 9, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 2] {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper {upper} must cover {v}");
            // The bucket below must not cover v.
            assert!(bucket_upper(i - 1) < v);
            let rel = (upper - v) as f64 / v as f64;
            assert!(rel <= 1.0 / SUB as f64, "rel error {rel} at {v}");
        }
        // Bucket indices are monotone and contiguous at group edges.
        for v in 1..4096u64 {
            let a = bucket_index(v - 1);
            let b = bucket_index(v);
            assert!(b == a || b == a + 1, "gap between {} and {v}", v - 1);
        }
        // The extremes stay in range.
        assert!(bucket_index(u64::MAX) < BUCKET_COUNT);
        assert_eq!(bucket_upper(bucket_index(u64::MAX)), u64::MAX);
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 100 values: 1..=100 µs.
        for us in 1..=100u64 {
            h.record_nanos(us * 1_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max(), Duration::from_micros(100));
        // Each estimate must be within the bucket's 3.125% relative error
        // of the true quantile.
        for (q, true_us) in [(0.5, 50u64), (0.9, 90), (0.99, 99)] {
            let est = s.quantile(q).as_nanos() as f64;
            let truth = (true_us * 1_000) as f64;
            assert!(
                est >= truth && est <= truth * (1.0 + 1.0 / SUB as f64),
                "q={q}: est {est} vs true {truth}"
            );
        }
        assert_eq!(s.quantile(1.0), Duration::from_micros(100));
        // Mean of 1..=100 µs is 50.5 µs.
        let mean = s.mean().as_nanos();
        assert!((50_000..=51_000).contains(&mean), "mean {mean}");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.99), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merge_is_exact() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let all = LatencyHistogram::new();
        for v in 0..1_000u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record_nanos(v * 17);
            all.record_nanos(v * 17);
        }
        let merged = a.snapshot().merged(&b.snapshot());
        assert_eq!(merged, all.snapshot(), "merge must equal single-stream");
        assert_eq!(merged.count(), 1_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_nanos(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn quantile_rank_edges() {
        let h = LatencyHistogram::new();
        h.record_nanos(5);
        let s = h.snapshot();
        // Every quantile of a single observation is that observation.
        assert_eq!(s.quantile(0.0), Duration::from_nanos(5));
        assert_eq!(s.quantile(0.5), Duration::from_nanos(5));
        assert_eq!(s.quantile(1.0), Duration::from_nanos(5));
    }

    #[test]
    fn accumulate_into_matches_snapshot_merge() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for v in 0..500u64 {
            a.record_nanos(v * 13);
            b.record_nanos(v * 29);
        }
        let mut reused = HistogramSnapshot::empty();
        a.accumulate_into(&mut reused);
        b.accumulate_into(&mut reused);
        assert_eq!(reused, a.snapshot().merged(&b.snapshot()));
        // Clearing keeps the bucket table and resets the counts.
        reused.clear();
        assert!(reused.is_empty());
        assert_eq!(reused.max(), Duration::ZERO);
        a.accumulate_into(&mut reused);
        assert_eq!(reused, a.snapshot());
    }

    #[test]
    fn record_duration_clamps_and_counts() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_secs(2));
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert!(s.max() >= Duration::from_secs(2));
    }
}
