//! A flat metrics registry with Prometheus-text and JSON rendering.

use crate::escape::{
    escape_help, escape_json, escape_label_value, is_valid_label_name, is_valid_metric_name,
};
use crate::hist::HistogramSnapshot;
use std::fmt::Write as _;

/// Label pairs attached to one sample (empty for unlabeled metrics).
type Labels = Vec<(String, String)>;

/// A point-in-time collection of named metrics, built by the component
/// that owns the counters (e.g. the broker) and rendered to either the
/// [Prometheus text exposition format] or a JSON document.
///
/// [Prometheus text exposition format]:
///     https://prometheus.io/docs/instrumenting/exposition_formats/
///
/// Conventions follow Prometheus: counters end in `_total`, histograms
/// are recorded in nanoseconds but exposed in **seconds** with
/// cumulative `le` buckets, plus `_sum` and `_count` series.
///
/// Metric and label names are validated at registration time (invalid
/// names panic — they are programming errors, not data) and label
/// values are escaped on render, so no registered sample can corrupt
/// the scrape text. Several samples may share a metric name as long as
/// their label sets differ; `# HELP`/`# TYPE` headers are emitted once
/// per name. Samples registered more than once under the *same* name
/// and label set (e.g. per-shard or per-worker copies of one logical
/// metric) are coalesced on render — counters sum, gauges keep the last
/// value, histograms merge — so the exposition never repeats a series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, String, Labels, u64)>,
    gauges: Vec<(String, String, Labels, f64)>,
    histograms: Vec<(String, String, Labels, HistogramSnapshot)>,
    summaries: Vec<(String, String, Labels, HistogramSnapshot)>,
}

/// A named quantile accessor on a histogram snapshot.
type Quantile = (&'static str, fn(&HistogramSnapshot) -> std::time::Duration);

/// The quantiles a summary series exposes, matching the percentile
/// gauges the JSON document has always carried.
const SUMMARY_QUANTILES: [Quantile; 4] = [
    ("0.5", HistogramSnapshot::p50),
    ("0.9", HistogramSnapshot::p90),
    ("0.95", HistogramSnapshot::p95),
    ("0.99", HistogramSnapshot::p99),
];

/// Renders a nanosecond value as a Prometheus seconds literal.
fn secs(nanos: u64) -> String {
    format!("{}", nanos as f64 / 1e9)
}

/// Panics unless `name` is a valid Prometheus metric name.
fn check_metric_name(name: &str) {
    assert!(
        is_valid_metric_name(name),
        "invalid Prometheus metric name: {name:?}"
    );
}

/// Validates label names and clones the pairs into owned storage.
fn check_labels(metric: &str, labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| {
            assert!(
                is_valid_label_name(k),
                "invalid Prometheus label name {k:?} on metric {metric:?}"
            );
            (k.to_string(), v.to_string())
        })
        .collect()
}

/// Renders `name{k="v",...}` with label values escaped (bare `name`
/// when the label set is empty).
fn series(name: &str, labels: &Labels) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Writes the `# HELP`/`# TYPE` header once per metric name.
fn header(out: &mut String, emitted: &mut Vec<String>, name: &str, help: &str, kind: &str) {
    if emitted.iter().any(|n| n == name) {
        return;
    }
    emitted.push(name.to_string());
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds a monotone counter.
    ///
    /// # Panics
    /// If `name` is not a valid Prometheus metric name.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.counter_with(name, help, &[], value)
    }

    /// Adds a monotone counter carrying label pairs. The same metric
    /// name may be registered repeatedly with different label sets.
    ///
    /// # Panics
    /// If `name` or any label name is invalid; label *values* are
    /// arbitrary and escaped on render.
    pub fn counter_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: u64,
    ) -> &mut Self {
        check_metric_name(name);
        let labels = check_labels(name, labels);
        self.counters
            .push((name.into(), help.into(), labels, value));
        self
    }

    /// Adds a gauge (a value that can go both ways).
    ///
    /// # Panics
    /// If `name` is not a valid Prometheus metric name.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.gauge_with(name, help, &[], value)
    }

    /// Adds a gauge carrying label pairs.
    ///
    /// # Panics
    /// If `name` or any label name is invalid.
    pub fn gauge_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut Self {
        check_metric_name(name);
        let labels = check_labels(name, labels);
        self.gauges.push((name.into(), help.into(), labels, value));
        self
    }

    /// Adds a latency histogram snapshot (nanosecond-valued).
    ///
    /// # Panics
    /// If `name` is not a valid Prometheus metric name.
    pub fn histogram(&mut self, name: &str, help: &str, snap: HistogramSnapshot) -> &mut Self {
        self.histogram_with(name, help, &[], snap)
    }

    /// Adds a latency histogram snapshot carrying label pairs (e.g. a
    /// `window="10s"` variant next to the cumulative bare series).
    ///
    /// # Panics
    /// If `name` or any label name is invalid.
    pub fn histogram_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: HistogramSnapshot,
    ) -> &mut Self {
        check_metric_name(name);
        let labels = check_labels(name, labels);
        self.histograms
            .push((name.into(), help.into(), labels, snap));
        self
    }

    /// Adds a latency summary (nanosecond-valued): the snapshot is
    /// exposed as precomputed `{quantile="..."}` series plus `_sum`
    /// and `_count` companions, so scrapers get the broker-side
    /// percentile estimates *and* enough to compute true averages,
    /// without shipping the full bucket vector twice.
    ///
    /// # Panics
    /// If `name` is not a valid Prometheus metric name.
    pub fn summary(&mut self, name: &str, help: &str, snap: HistogramSnapshot) -> &mut Self {
        self.summary_with(name, help, &[], snap)
    }

    /// Adds a latency summary carrying label pairs.
    ///
    /// # Panics
    /// If `name` or any label name is invalid.
    pub fn summary_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: HistogramSnapshot,
    ) -> &mut Self {
        check_metric_name(name);
        let labels = check_labels(name, labels);
        self.summaries
            .push((name.into(), help.into(), labels, snap));
        self
    }

    /// Counters with duplicate `(name, labels)` summed, registration
    /// order preserved (first occurrence wins the position).
    fn coalesced_counters(&self) -> Vec<(&str, &str, &Labels, u64)> {
        let mut out: Vec<(&str, &str, &Labels, u64)> = Vec::new();
        for (name, help, labels, value) in &self.counters {
            match out
                .iter_mut()
                .find(|(n, _, l, _)| *n == name && *l == labels)
            {
                Some(entry) => entry.3 += value,
                None => out.push((name, help, labels, *value)),
            }
        }
        out
    }

    /// Gauges with duplicate `(name, labels)` collapsed to the last
    /// registered value (a gauge is a point-in-time reading).
    fn coalesced_gauges(&self) -> Vec<(&str, &str, &Labels, f64)> {
        let mut out: Vec<(&str, &str, &Labels, f64)> = Vec::new();
        for (name, help, labels, value) in &self.gauges {
            match out
                .iter_mut()
                .find(|(n, _, l, _)| *n == name && *l == labels)
            {
                Some(entry) => entry.3 = *value,
                None => out.push((name, help, labels, *value)),
            }
        }
        out
    }

    /// Histograms with duplicate `(name, labels)` merged bucket-wise
    /// (per-shard copies of one logical histogram become one series).
    fn coalesced_histograms(&self) -> Vec<(&str, &str, &Labels, HistogramSnapshot)> {
        let mut out: Vec<(&str, &str, &Labels, HistogramSnapshot)> = Vec::new();
        for (name, help, labels, snap) in &self.histograms {
            match out
                .iter_mut()
                .find(|(n, _, l, _)| *n == name && *l == labels)
            {
                Some(entry) => entry.3.merge(snap),
                None => out.push((name, help, labels, snap.clone())),
            }
        }
        out
    }

    /// Summaries with duplicate `(name, labels)` merged snapshot-wise,
    /// like histograms (the quantiles re-derive from the merge).
    fn coalesced_summaries(&self) -> Vec<(&str, &str, &Labels, HistogramSnapshot)> {
        let mut out: Vec<(&str, &str, &Labels, HistogramSnapshot)> = Vec::new();
        for (name, help, labels, snap) in &self.summaries {
            match out
                .iter_mut()
                .find(|(n, _, l, _)| *n == name && *l == labels)
            {
                Some(entry) => entry.3.merge(snap),
                None => out.push((name, help, labels, snap.clone())),
            }
        }
        out
    }

    /// The Prometheus text exposition document.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut emitted: Vec<String> = Vec::new();
        for (name, help, labels, value) in self.coalesced_counters() {
            header(&mut out, &mut emitted, name, help, "counter");
            let _ = writeln!(out, "{} {value}", series(name, labels));
        }
        for (name, help, labels, value) in self.coalesced_gauges() {
            header(&mut out, &mut emitted, name, help, "gauge");
            let _ = writeln!(out, "{} {value}", series(name, labels));
        }
        for (name, help, labels, snap) in self.coalesced_histograms() {
            header(&mut out, &mut emitted, name, help, "histogram");
            // `le` joins the sample's own labels inside one brace set.
            let prefix: String = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\",", escape_label_value(v)))
                .collect();
            let mut cumulative = 0u64;
            for (upper_ns, count) in snap.nonzero_buckets() {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{prefix}le=\"{}\"}} {cumulative}",
                    secs(upper_ns)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(
                out,
                "{} {}",
                series(&format!("{name}_sum"), labels),
                secs(snap.sum().as_nanos() as u64)
            );
            let _ = writeln!(
                out,
                "{} {cumulative}",
                series(&format!("{name}_count"), labels)
            );
        }
        for (name, help, labels, snap) in self.coalesced_summaries() {
            header(&mut out, &mut emitted, name, help, "summary");
            // `quantile` joins the sample's own labels, like `le` does
            // for histograms.
            let prefix: String = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\",", escape_label_value(v)))
                .collect();
            for (q, pick) in SUMMARY_QUANTILES {
                let _ = writeln!(
                    out,
                    "{name}{{{prefix}quantile=\"{q}\"}} {}",
                    secs(pick(&snap).as_nanos() as u64)
                );
            }
            let _ = writeln!(
                out,
                "{} {}",
                series(&format!("{name}_sum"), labels),
                secs(snap.sum().as_nanos() as u64)
            );
            let _ = writeln!(
                out,
                "{} {}",
                series(&format!("{name}_count"), labels),
                snap.count()
            );
        }
        out
    }

    /// A JSON document with counters, gauges, and per-histogram
    /// percentile summaries (nanosecond units, suffixed `_ns`). Labeled
    /// samples are keyed by their full `name{k="v"}` series string.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, _, labels, value)) in self.coalesced_counters().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let key = escape_json(&series(name, labels));
            let _ = write!(out, "{sep}\n    \"{key}\": {value}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, _, labels, value)) in self.coalesced_gauges().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let key = escape_json(&series(name, labels));
            let _ = write!(out, "{sep}\n    \"{key}\": {value}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        // Summaries share the histogram JSON shape (both are snapshot
        // percentile objects); names are disjoint by convention.
        let mut distributions = self.coalesced_histograms();
        distributions.extend(self.coalesced_summaries());
        for (i, (name, _, labels, snap)) in distributions.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                concat!(
                    "{}\n    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, ",
                    "\"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, ",
                    "\"sum_ns\": {}}}"
                ),
                sep,
                escape_json(&series(name, labels)),
                snap.count(),
                snap.p50().as_nanos(),
                snap.p90().as_nanos(),
                snap.p95().as_nanos(),
                snap.p99().as_nanos(),
                snap.max().as_nanos(),
                snap.mean().as_nanos(),
                snap.sum().as_nanos(),
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn registry() -> MetricsRegistry {
        let h = LatencyHistogram::new();
        for us in [1u64, 10, 100] {
            h.record_nanos(us * 1_000);
        }
        let mut r = MetricsRegistry::new();
        r.counter("tep_published_total", "Events accepted.", 42)
            .gauge("tep_live_workers", "Worker threads alive.", 4.0)
            .histogram("tep_stage_match_seconds", "Match latency.", h.snapshot());
        r
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let text = registry().render_prometheus();
        assert!(text.contains("# TYPE tep_published_total counter"));
        assert!(text.contains("tep_published_total 42"));
        assert!(text.contains("# TYPE tep_live_workers gauge"));
        assert!(text.contains("tep_live_workers 4"));
        assert!(text.contains("# TYPE tep_stage_match_seconds histogram"));
        assert!(text.contains("tep_stage_match_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tep_stage_match_seconds_count 3"));
        // Sum = 111 µs.
        assert!(text.contains("tep_stage_match_seconds_sum 0.000111"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn labeled_counters_share_one_header_and_escape_values() {
        let mut r = MetricsRegistry::new();
        r.counter_with(
            "tep_dropped_total",
            "Dropped, by reason.",
            &[("reason", "full")],
            3,
        )
        .counter_with(
            "tep_dropped_total",
            "Dropped, by reason.",
            &[("reason", "dis\\connec\"ted\nx")],
            1,
        );
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE tep_dropped_total counter").count(),
            1,
            "one TYPE header per metric name"
        );
        assert_eq!(text.matches("# HELP tep_dropped_total").count(), 1);
        assert!(text.contains("tep_dropped_total{reason=\"full\"} 3"));
        // Backslash, quote, and newline are escaped per the exposition
        // format, keeping the document line-oriented.
        assert!(
            text.contains("tep_dropped_total{reason=\"dis\\\\connec\\\"ted\\nx\"} 1"),
            "escaped label value missing:\n{text}"
        );
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn help_text_is_escaped() {
        let mut r = MetricsRegistry::new();
        r.counter("x_total", "multi\nline \\ help", 1);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP x_total multi\\nline \\\\ help"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus metric name")]
    fn invalid_metric_name_is_rejected_at_registration() {
        MetricsRegistry::new().counter("bad name", "help", 1);
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus label name")]
    fn invalid_label_name_is_rejected_at_registration() {
        MetricsRegistry::new().counter_with("ok_total", "help", &[("bad-label", "v")], 1);
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus metric name")]
    fn invalid_histogram_name_is_rejected_at_registration() {
        MetricsRegistry::new().histogram("no newlines\nhere", "help", HistogramSnapshot::empty());
    }

    #[test]
    fn json_export_contains_percentiles() {
        let json = registry().render_json();
        assert!(json.contains("\"tep_published_total\": 42"));
        assert!(json.contains("\"tep_live_workers\": 4"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"p99_ns\""));
        // Braces balance (cheap well-formedness check without a parser).
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_export_escapes_labeled_series_keys() {
        let mut r = MetricsRegistry::new();
        r.counter_with("d_total", "h", &[("reason", "a\"b")], 7);
        let json = r.render_json();
        // The series key `d_total{reason="a\"b"}` must itself be
        // JSON-escaped inside the document.
        assert!(
            json.contains("\"d_total{reason=\\\"a\\\\\\\"b\\\"}\": 7"),
            "{json}"
        );
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn duplicate_series_coalesce_instead_of_repeating() {
        // Same logical metric registered once per shard/worker: the
        // exposition must contain one header and ONE summed sample line.
        let h1 = LatencyHistogram::new();
        let h2 = LatencyHistogram::new();
        h1.record_nanos(1_000);
        h2.record_nanos(2_000);
        let mut r = MetricsRegistry::new();
        r.counter("tep_shard_hits_total", "Cache hits.", 10)
            .counter("tep_shard_hits_total", "Cache hits.", 32)
            .gauge("tep_shard_entries", "Entries.", 5.0)
            .gauge("tep_shard_entries", "Entries.", 7.0)
            .histogram("tep_shard_seconds", "Latency.", h1.snapshot())
            .histogram("tep_shard_seconds", "Latency.", h2.snapshot());
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE tep_shard_hits_total").count(), 1);
        assert_eq!(text.matches("tep_shard_hits_total 42").count(), 1);
        assert!(
            !text.contains("tep_shard_hits_total 10"),
            "per-shard values must sum, not repeat:\n{text}"
        );
        // Gauges keep the last reading.
        assert!(text.contains("tep_shard_entries 7"));
        assert!(!text.contains("tep_shard_entries 5"));
        // Histograms merge: one _count line with both samples.
        assert_eq!(text.matches("tep_shard_seconds_count").count(), 1);
        assert!(text.contains("tep_shard_seconds_count 2"));
        // JSON sees the coalesced values too.
        let json = r.render_json();
        assert!(json.contains("\"tep_shard_hits_total\": 42"));
        assert!(json.contains("\"tep_shard_entries\": 7"));
        assert!(json.contains("\"count\": 2"));
    }

    #[test]
    fn labeled_histograms_render_window_variants() {
        let cumulative = LatencyHistogram::new();
        let windowed = LatencyHistogram::new();
        for us in [1u64, 10, 100] {
            cumulative.record_nanos(us * 1_000);
        }
        windowed.record_nanos(10_000);
        let mut r = MetricsRegistry::new();
        r.histogram(
            "tep_stage_match_seconds",
            "Match latency.",
            cumulative.snapshot(),
        )
        .histogram_with(
            "tep_stage_match_seconds",
            "Match latency.",
            &[("window", "10s")],
            windowed.snapshot(),
        );
        let text = r.render_prometheus();
        // One header for both variants.
        assert_eq!(
            text.matches("# TYPE tep_stage_match_seconds histogram")
                .count(),
            1
        );
        // Bare cumulative series and labeled windowed series coexist.
        assert!(text.contains("tep_stage_match_seconds_count 3"));
        assert!(text.contains("tep_stage_match_seconds_count{window=\"10s\"} 1"));
        assert!(
            text.contains("tep_stage_match_seconds_bucket{window=\"10s\",le="),
            "windowed buckets must put the window label before le:\n{text}"
        );
        assert!(text.contains("tep_stage_match_seconds_sum{window=\"10s\"} 0.00001"));
        let json = r.render_json();
        assert!(json.contains("\"tep_stage_match_seconds{window=\\\"10s\\\"}\""));
    }

    #[test]
    fn summaries_render_quantiles_with_sum_and_count() {
        let h = LatencyHistogram::new();
        for us in [1u64, 10, 100] {
            h.record_nanos(us * 1_000);
        }
        let mut r = MetricsRegistry::new();
        r.summary("tep_stage_match_summary_seconds", "Match.", h.snapshot())
            .summary_with(
                "tep_stage_match_summary_seconds",
                "Match.",
                &[("window", "10s")],
                h.snapshot(),
            );
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE tep_stage_match_summary_seconds summary")
                .count(),
            1
        );
        for q in ["0.5", "0.9", "0.95", "0.99"] {
            assert!(
                text.contains(&format!(
                    "tep_stage_match_summary_seconds{{quantile=\"{q}\"}}"
                )),
                "missing quantile {q}:\n{text}"
            );
        }
        // The companions let scrapers compute true averages.
        assert!(text.contains("tep_stage_match_summary_seconds_sum 0.000111"));
        assert!(text.contains("tep_stage_match_summary_seconds_count 3"));
        // Labeled variant puts its labels before `quantile` and keeps
        // its own companions.
        assert!(text.contains("tep_stage_match_summary_seconds{window=\"10s\",quantile=\"0.5\"}"));
        assert!(text.contains("tep_stage_match_summary_seconds_count{window=\"10s\"} 3"));
        // The JSON document carries the same snapshot percentiles.
        let json = r.render_json();
        assert!(json.contains("\"tep_stage_match_summary_seconds\": {\"count\": 3"));
    }

    #[test]
    fn duplicate_summaries_merge_like_histograms() {
        let h1 = LatencyHistogram::new();
        let h2 = LatencyHistogram::new();
        h1.record_nanos(1_000);
        h2.record_nanos(2_000);
        let mut r = MetricsRegistry::new();
        r.summary("tep_s_seconds", "S.", h1.snapshot()).summary(
            "tep_s_seconds",
            "S.",
            h2.snapshot(),
        );
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE tep_s_seconds summary").count(), 1);
        assert!(text.contains("tep_s_seconds_count 2"));
        assert!(text.contains("tep_s_seconds_sum 0.000003"));
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let r = MetricsRegistry::new();
        assert!(r.render_prometheus().is_empty());
        let json = r.render_json();
        assert!(json.contains("\"counters\": {"));
        assert!(json.contains("\"histograms\": {"));
    }
}
