//! A flat metrics registry with Prometheus-text and JSON rendering.

use crate::hist::HistogramSnapshot;
use std::fmt::Write as _;

/// A point-in-time collection of named metrics, built by the component
/// that owns the counters (e.g. the broker) and rendered to either the
/// [Prometheus text exposition format] or a JSON document.
///
/// [Prometheus text exposition format]:
///     https://prometheus.io/docs/instrumenting/exposition_formats/
///
/// Conventions follow Prometheus: counters end in `_total`, histograms
/// are recorded in nanoseconds but exposed in **seconds** with
/// cumulative `le` buckets, plus `_sum` and `_count` series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, String, u64)>,
    gauges: Vec<(String, String, f64)>,
    histograms: Vec<(String, String, HistogramSnapshot)>,
}

/// Renders a nanosecond value as a Prometheus seconds literal.
fn secs(nanos: u64) -> String {
    format!("{}", nanos as f64 / 1e9)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds a monotone counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.counters.push((name.into(), help.into(), value));
        self
    }

    /// Adds a gauge (a value that can go both ways).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.gauges.push((name.into(), help.into(), value));
        self
    }

    /// Adds a latency histogram snapshot (nanosecond-valued).
    pub fn histogram(&mut self, name: &str, help: &str, snap: HistogramSnapshot) -> &mut Self {
        self.histograms.push((name.into(), help.into(), snap));
        self
    }

    /// The Prometheus text exposition document.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in &self.counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, help, value) in &self.gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, help, snap) in &self.histograms {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (upper_ns, count) in snap.nonzero_buckets() {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    secs(upper_ns)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", secs(snap.sum().as_nanos() as u64));
            let _ = writeln!(out, "{name}_count {cumulative}");
        }
        out
    }

    /// A JSON document with counters, gauges, and per-histogram
    /// percentile summaries (nanosecond units, suffixed `_ns`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, _, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {value}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, _, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {value}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, _, snap)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                concat!(
                    "{}\n    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, ",
                    "\"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, ",
                    "\"sum_ns\": {}}}"
                ),
                sep,
                name,
                snap.count(),
                snap.p50().as_nanos(),
                snap.p90().as_nanos(),
                snap.p95().as_nanos(),
                snap.p99().as_nanos(),
                snap.max().as_nanos(),
                snap.mean().as_nanos(),
                snap.sum().as_nanos(),
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn registry() -> MetricsRegistry {
        let h = LatencyHistogram::new();
        for us in [1u64, 10, 100] {
            h.record_nanos(us * 1_000);
        }
        let mut r = MetricsRegistry::new();
        r.counter("tep_published_total", "Events accepted.", 42)
            .gauge("tep_live_workers", "Worker threads alive.", 4.0)
            .histogram("tep_stage_match_seconds", "Match latency.", h.snapshot());
        r
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let text = registry().render_prometheus();
        assert!(text.contains("# TYPE tep_published_total counter"));
        assert!(text.contains("tep_published_total 42"));
        assert!(text.contains("# TYPE tep_live_workers gauge"));
        assert!(text.contains("tep_live_workers 4"));
        assert!(text.contains("# TYPE tep_stage_match_seconds histogram"));
        assert!(text.contains("tep_stage_match_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tep_stage_match_seconds_count 3"));
        // Sum = 111 µs.
        assert!(text.contains("tep_stage_match_seconds_sum 0.000111"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn json_export_contains_percentiles() {
        let json = registry().render_json();
        assert!(json.contains("\"tep_published_total\": 42"));
        assert!(json.contains("\"tep_live_workers\": 4"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"p99_ns\""));
        // Braces balance (cheap well-formedness check without a parser).
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let r = MetricsRegistry::new();
        assert!(r.render_prometheus().is_empty());
        let json = r.render_json();
        assert!(json.contains("\"counters\": {"));
        assert!(json.contains("\"histograms\": {"));
    }
}
