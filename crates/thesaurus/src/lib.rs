//! # tep-thesaurus
//!
//! A synthetic, deterministic, multi-domain thesaurus that substitutes the
//! [EuroVoc](https://eurovoc.europa.eu/) thesaurus used by the *Thematic
//! Event Processing* paper (Hasan & Curry, Middleware 2014, §5.2).
//!
//! The paper uses EuroVoc for three things, all of which this crate
//! provides:
//!
//! 1. **Semantic expansion** of seed events: replacing terms by synonyms or
//!    related terms from a domain micro-thesaurus (§5.2.2).
//! 2. **Theme tags**: the *top terms* of each micro-thesaurus are sampled to
//!    build event and subscription themes (§5.2.4).
//! 3. **Concept-based rewriting baseline**: the query-rewriting matcher
//!    expands subscription terms through an explicit knowledge base (§5.1).
//!
//! The built-in instance ([`Thesaurus::eurovoc_like`]) covers the same six
//! EuroVoc domains the paper selects (`transport`, `environment`, `energy`,
//! `geography`, `education and communications`, `social questions`) and is
//! hand-authored so that:
//!
//! * every concept has a preferred term plus several alternate terms
//!   (synonyms) and related concepts, mirroring EuroVoc's structure;
//! * a controlled set of **ambiguous words** (e.g. *charge*, *current*,
//!   *plant*, *cell*) appears in concepts of different domains, which is the
//!   semantic noise that theme tags are designed to filter out.
//!
//! ```
//! use tep_thesaurus::{Domain, Thesaurus};
//!
//! let th = Thesaurus::eurovoc_like();
//! let syns = th.synonyms("energy consumption");
//! assert!(syns.iter().any(|t| t.as_str() == "electricity usage"));
//! assert!(!th.top_terms(Domain::Energy).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod builder;
mod concept;
mod domain;
mod error;
mod eurovoc;
mod term;
mod thesaurus;

pub use builder::ThesaurusBuilder;
pub use concept::{Concept, ConceptId};
pub use domain::Domain;
pub use error::ThesaurusError;
pub use term::Term;
pub use thesaurus::Thesaurus;
