//! Incremental construction of a [`Thesaurus`].

use crate::concept::{Concept, ConceptId};
use crate::thesaurus::Thesaurus;
use crate::{Domain, Term, ThesaurusError};
use std::collections::HashMap;

/// Builder for a [`Thesaurus`].
///
/// Concepts are declared with [`ThesaurusBuilder::concept`]; related-concept
/// links refer to *preferred terms* and are resolved (and made symmetric)
/// when [`ThesaurusBuilder::build`] is called, so concepts may link forward
/// to concepts declared later.
///
/// ```
/// use tep_thesaurus::{Domain, ThesaurusBuilder};
///
/// let mut b = ThesaurusBuilder::new();
/// b.top_terms(Domain::Energy, &["energy policy"]);
/// b.concept(Domain::Energy, "energy consumption", &["electricity usage"], &["electricity meter"]);
/// b.concept(Domain::Energy, "electricity meter", &["power meter"], &[]);
/// let th = b.build()?;
/// assert_eq!(th.concepts().count(), 2);
/// # Ok::<(), tep_thesaurus::ThesaurusError>(())
/// ```
#[derive(Debug, Default)]
pub struct ThesaurusBuilder {
    concepts: Vec<PendingConcept>,
    top_terms: HashMap<Domain, Vec<Term>>,
}

#[derive(Debug)]
struct PendingConcept {
    domain: Domain,
    preferred: Term,
    alternates: Vec<Term>,
    related: Vec<Term>,
}

impl ThesaurusBuilder {
    /// Creates an empty builder.
    pub fn new() -> ThesaurusBuilder {
        ThesaurusBuilder::default()
    }

    /// Declares a concept with its preferred term, alternates (synonyms)
    /// and related preferred terms (resolved at build time).
    pub fn concept(
        &mut self,
        domain: Domain,
        preferred: &str,
        alternates: &[&str],
        related: &[&str],
    ) -> &mut ThesaurusBuilder {
        self.concepts.push(PendingConcept {
            domain,
            preferred: Term::new(preferred),
            alternates: alternates.iter().map(|s| Term::new(s)).collect(),
            related: related.iter().map(|s| Term::new(s)).collect(),
        });
        self
    }

    /// Declares (appends) top terms for a domain's micro-thesaurus. Top
    /// terms are the tag vocabulary used to build themes (paper §5.2.4).
    pub fn top_terms(&mut self, domain: Domain, terms: &[&str]) -> &mut ThesaurusBuilder {
        self.top_terms
            .entry(domain)
            .or_default()
            .extend(terms.iter().map(|s| Term::new(s)));
        self
    }

    /// Resolves links and produces the immutable [`Thesaurus`].
    ///
    /// # Errors
    ///
    /// Returns [`ThesaurusError`] if a preferred term is empty, duplicated
    /// within a domain, or a related link targets an undeclared concept.
    pub fn build(self) -> Result<Thesaurus, ThesaurusError> {
        let mut by_preferred: HashMap<(Domain, Term), ConceptId> = HashMap::new();
        for (i, pc) in self.concepts.iter().enumerate() {
            if pc.preferred.is_empty() {
                return Err(ThesaurusError::EmptyPreferredTerm);
            }
            let key = (pc.domain, pc.preferred.clone());
            if by_preferred.insert(key, ConceptId(i as u32)).is_some() {
                return Err(ThesaurusError::DuplicateConcept(pc.preferred.clone()));
            }
        }

        // Resolve a related term within the same domain first, falling back
        // to any domain (EuroVoc RT links may cross micro-thesauri).
        let resolve = |domain: Domain, term: &Term| -> Option<ConceptId> {
            by_preferred
                .get(&(domain, term.clone()))
                .copied()
                .or_else(|| {
                    Domain::ALL
                        .into_iter()
                        .find_map(|d| by_preferred.get(&(d, term.clone())).copied())
                })
        };

        let mut concepts: Vec<Concept> = Vec::with_capacity(self.concepts.len());
        for (i, pc) in self.concepts.iter().enumerate() {
            let mut related = Vec::with_capacity(pc.related.len());
            for r in &pc.related {
                let target =
                    resolve(pc.domain, r).ok_or_else(|| ThesaurusError::UnknownRelated {
                        from: pc.preferred.clone(),
                        to: r.clone(),
                    })?;
                if target.index() != i {
                    related.push(target);
                }
            }
            concepts.push(Concept {
                id: ConceptId(i as u32),
                domain: pc.domain,
                preferred: pc.preferred.clone(),
                alternates: pc.alternates.clone(),
                related,
            });
        }

        // Make related links symmetric, as EuroVoc RT links are.
        let pairs: Vec<(usize, ConceptId)> = concepts
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.related.iter().map(move |r| (i, *r)))
            .collect();
        for (i, r) in pairs {
            let back = ConceptId(i as u32);
            let target = &mut concepts[r.index()];
            if !target.related.contains(&back) {
                target.related.push(back);
            }
        }

        Ok(Thesaurus::from_parts(concepts, self.top_terms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_links_resolve() {
        let mut b = ThesaurusBuilder::new();
        b.concept(Domain::Energy, "a", &[], &["b"]);
        b.concept(Domain::Energy, "b", &[], &[]);
        let th = b.build().unwrap();
        let a = th.concept_of("a").unwrap();
        let b = th.concept_of("b").unwrap();
        assert_eq!(a.related(), &[b.id()]);
        // Symmetric back-link.
        assert_eq!(b.related(), &[a.id()]);
    }

    #[test]
    fn duplicate_preferred_in_same_domain_errors() {
        let mut b = ThesaurusBuilder::new();
        b.concept(Domain::Energy, "a", &[], &[]);
        b.concept(Domain::Energy, "a", &[], &[]);
        assert_eq!(
            b.build().unwrap_err(),
            ThesaurusError::DuplicateConcept(Term::new("a"))
        );
    }

    #[test]
    fn same_preferred_in_different_domains_is_allowed() {
        // This is how ambiguous terms are modelled.
        let mut b = ThesaurusBuilder::new();
        b.concept(Domain::Energy, "plant", &[], &[]);
        b.concept(Domain::Environment, "plant", &[], &[]);
        let th = b.build().unwrap();
        assert_eq!(th.concepts_of("plant").count(), 2);
    }

    #[test]
    fn unknown_related_errors() {
        let mut b = ThesaurusBuilder::new();
        b.concept(Domain::Energy, "a", &[], &["nope"]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, ThesaurusError::UnknownRelated { .. }));
    }

    #[test]
    fn empty_preferred_errors() {
        let mut b = ThesaurusBuilder::new();
        b.concept(Domain::Energy, "  ", &[], &[]);
        assert_eq!(b.build().unwrap_err(), ThesaurusError::EmptyPreferredTerm);
    }

    #[test]
    fn self_links_are_dropped() {
        let mut b = ThesaurusBuilder::new();
        b.concept(Domain::Energy, "a", &[], &["a"]);
        let th = b.build().unwrap();
        assert!(th.concept_of("a").unwrap().related().is_empty());
    }
}
