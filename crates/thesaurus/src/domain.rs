//! The six EuroVoc domains used by the paper's evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A thematic domain (EuroVoc micro-thesaurus family).
///
/// The paper's evaluation (§5.2.2) restricts EuroVoc to the micro-thesauri
/// of exactly these six domains because they conform to the theme of the
/// generated smart-city and energy-management events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Road, rail and urban transport: vehicles, parking, traffic.
    Transport,
    /// Environmental monitoring: air quality, noise, weather, nature.
    Environment,
    /// Energy production and consumption: electricity, metering, appliances.
    Energy,
    /// Geography: places, regions, urban structure.
    Geography,
    /// Education and communications: teaching, networks, computing.
    EducationCommunications,
    /// Social questions: health, housing, demographics.
    SocialQuestions,
}

impl Domain {
    /// All six domains, in canonical order.
    pub const ALL: [Domain; 6] = [
        Domain::Transport,
        Domain::Environment,
        Domain::Energy,
        Domain::Geography,
        Domain::EducationCommunications,
        Domain::SocialQuestions,
    ];

    /// Canonical lowercase label, matching the paper's wording.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Transport => "transport",
            Domain::Environment => "environment",
            Domain::Energy => "energy",
            Domain::Geography => "geography",
            Domain::EducationCommunications => "education and communications",
            Domain::SocialQuestions => "social questions",
        }
    }

    /// Parses a label produced by [`Domain::label`].
    pub fn from_label(label: &str) -> Option<Domain> {
        Domain::ALL.into_iter().find(|d| d.label() == label)
    }

    /// Stable small integer id, useful for indexing per-domain tables.
    pub fn index(self) -> usize {
        match self {
            Domain::Transport => 0,
            Domain::Environment => 1,
            Domain::Energy => 2,
            Domain::Geography => 3,
            Domain::EducationCommunications => 4,
            Domain::SocialQuestions => 5,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for d in Domain::ALL {
            assert_eq!(Domain::from_label(d.label()), Some(d));
        }
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 6];
        for d in Domain::ALL {
            assert!(!seen[d.index()], "duplicate index for {d}");
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn unknown_label_is_none() {
        assert_eq!(Domain::from_label("astrology"), None);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Domain::Transport.to_string(), "transport");
        assert_eq!(
            Domain::EducationCommunications.to_string(),
            "education and communications"
        );
    }
}
