//! The built-in EuroVoc-like thesaurus instance.
//!
//! Hand-authored to mirror the structure of the EuroVoc micro-thesauri the
//! paper selects (§5.2.2): six domains, each with *top terms* (the theme-tag
//! vocabulary of §5.2.4) and concepts carrying synonyms and related-term
//! links. The vocabulary deliberately includes:
//!
//! * the full SmartSantander/LEI sensor-capability list of Table 3;
//! * the attribute/value vocabulary of the paper's example events
//!   (`energy consumption`, `kilowatt hour`, `laptop`, `room`, …);
//! * a controlled set of **ambiguous words** that occur in concepts of more
//!   than one domain (`charge`, `current`, `plant`, `cell`, `light`,
//!   `station`, `platform`, `network`, `load`, `traffic`, …). These create
//!   the cross-domain semantic noise that theme tags are meant to filter.

use crate::{Domain, Thesaurus, ThesaurusBuilder};

impl Thesaurus {
    /// Builds the built-in EuroVoc-like thesaurus.
    ///
    /// The instance is deterministic (no randomness) and identical across
    /// calls, so corpora and evaluation workloads built from it are
    /// reproducible.
    ///
    /// ```
    /// use tep_thesaurus::{Domain, Thesaurus};
    /// let th = Thesaurus::eurovoc_like();
    /// assert!(th.len() > 150);
    /// assert!(th.top_terms(Domain::Transport).len() >= 6);
    /// assert!(th.ambiguous_terms().len() >= 10);
    /// ```
    pub fn eurovoc_like() -> Thesaurus {
        let mut b = ThesaurusBuilder::new();
        top_terms(&mut b);
        transport(&mut b);
        environment(&mut b);
        energy(&mut b);
        geography(&mut b);
        education_communications(&mut b);
        social_questions(&mut b);
        b.build()
            .expect("built-in thesaurus is statically well-formed")
    }
}

fn top_terms(b: &mut ThesaurusBuilder) {
    b.top_terms(
        Domain::Transport,
        &[
            "land transport",
            "road traffic",
            "urban mobility",
            "vehicle fleet",
            "parking policy",
            "public transit",
            "road safety",
            "freight logistics",
        ],
    );
    b.top_terms(
        Domain::Environment,
        &[
            "protection of nature",
            "air quality",
            "noise pollution",
            "weather monitoring",
            "water resources",
            "climate observation",
            "soil conservation",
            "pollution control",
        ],
    );
    b.top_terms(
        Domain::Energy,
        &[
            "energy policy",
            "electrical industry",
            "energy efficiency",
            "power generation",
            "energy metering",
            "building energy",
            "renewable energy",
            "energy demand",
        ],
    );
    b.top_terms(
        Domain::Geography,
        &[
            "urban geography",
            "regional planning",
            "european regions",
            "city districts",
            "land use",
            "settlement patterns",
            "territorial units",
            "coastal areas",
        ],
    );
    b.top_terms(
        Domain::EducationCommunications,
        &[
            "information technology",
            "communication systems",
            "computer networks",
            "data processing",
            "teaching resources",
            "digital media",
            "information services",
            "educational institutions",
        ],
    );
    b.top_terms(
        Domain::SocialQuestions,
        &[
            "public health",
            "housing conditions",
            "social wellbeing",
            "demographic trends",
            "community services",
            "quality of life",
            "social infrastructure",
            "occupational safety",
        ],
    );
}

fn transport(b: &mut ThesaurusBuilder) {
    let d = Domain::Transport;
    b.concept(
        d,
        "parking",
        &["car park", "garage spot", "parking space", "parking bay"],
        &["vehicle", "parking occupancy"],
    );
    b.concept(
        d,
        "parking occupancy",
        &["occupied spot", "space occupied", "bay occupancy"],
        &["parking meter"],
    );
    b.concept(d, "parking meter", &["pay station", "ticket machine"], &[]);
    b.concept(
        d,
        "vehicle",
        &["car", "automobile", "motor vehicle"],
        &["traffic", "bus", "truck"],
    );
    b.concept(
        d,
        "traffic",
        &["road traffic", "traffic flow", "vehicular flow"],
        &["congestion", "traffic light"],
    );
    b.concept(
        d,
        "congestion",
        &["traffic jam", "gridlock", "bottleneck"],
        &["rush hour"],
    );
    b.concept(d, "rush hour", &["peak traffic", "commute peak"], &[]);
    b.concept(
        d,
        "traffic light",
        &["traffic signal", "stoplight", "signal light"],
        &["intersection"],
    );
    b.concept(
        d,
        "intersection",
        &["junction", "crossroads", "roundabout"],
        &["road"],
    );
    b.concept(
        d,
        "road",
        &["street", "roadway", "carriageway"],
        &["highway", "lane"],
    );
    b.concept(d, "highway", &["motorway", "expressway", "freeway"], &[]);
    b.concept(d, "lane", &["traffic lane", "bus lane"], &[]);
    b.concept(
        d,
        "bus",
        &["coach", "transit bus", "omnibus"],
        &["bus stop", "public transport"],
    );
    b.concept(d, "bus stop", &["transit stop", "coach stop"], &["station"]);
    b.concept(
        d,
        "station",
        &["terminus", "depot", "transport hub"],
        &["platform"],
    );
    b.concept(d, "platform", &["boarding platform", "quay"], &[]);
    b.concept(
        d,
        "public transport",
        &["public transit", "mass transit", "collective transport"],
        &["tram", "railway"],
    );
    b.concept(d, "tram", &["streetcar", "light rail", "trolley"], &[]);
    b.concept(
        d,
        "railway",
        &["railroad", "rail network", "rail line"],
        &["train"],
    );
    b.concept(d, "train", &["rail service", "railcar"], &[]);
    b.concept(
        d,
        "truck",
        &["lorry", "heavy goods vehicle", "freight vehicle"],
        &["freight"],
    );
    b.concept(
        d,
        "freight",
        &["cargo", "goods transport", "haulage"],
        &["load"],
    );
    b.concept(d, "load", &["payload", "shipment"], &[]);
    b.concept(
        d,
        "speed",
        &["velocity", "travel speed", "vehicle speed"],
        &["speed limit"],
    );
    b.concept(
        d,
        "speed limit",
        &["speed restriction", "maximum speed"],
        &[],
    );
    b.concept(
        d,
        "bicycle",
        &["bike", "cycle", "pushbike"],
        &["cycle lane"],
    );
    b.concept(d, "cycle lane", &["bike path", "cycleway"], &[]);
    b.concept(d, "pedestrian", &["walker", "foot traffic"], &["crosswalk"]);
    b.concept(
        d,
        "crosswalk",
        &["pedestrian crossing", "zebra crossing"],
        &[],
    );
    b.concept(
        d,
        "toll",
        &["road charge", "congestion charge", "road pricing"],
        &["charge"],
    );
    b.concept(d, "charge", &["levy", "fee"], &[]);
    b.concept(d, "driver", &["motorist", "chauffeur", "operator"], &[]);
    b.concept(
        d,
        "fuel",
        &["petrol", "gasoline", "diesel"],
        &["fuel station"],
    );
    b.concept(
        d,
        "fuel station",
        &["petrol station", "filling station", "gas station"],
        &[],
    );
    b.concept(
        d,
        "electric vehicle",
        &["ev", "battery car", "plug in vehicle"],
        &["charging point", "vehicle"],
    );
    b.concept(
        d,
        "charging point",
        &["charging station", "ev charger", "charge point"],
        &[],
    );
    b.concept(
        d,
        "route",
        &["itinerary", "path", "course"],
        &["navigation"],
    );
    b.concept(d, "navigation", &["wayfinding", "routing", "guidance"], &[]);
    b.concept(
        d,
        "accident",
        &["collision", "crash", "road incident"],
        &["road safety measure"],
    );
    b.concept(
        d,
        "road safety measure",
        &["traffic calming", "safety barrier"],
        &[],
    );
    b.concept(
        d,
        "garage",
        &["parking garage", "multi storey car park", "car lot"],
        &["parking"],
    );
    b.concept(
        d,
        "licence plate",
        &["number plate", "registration plate"],
        &[],
    );
    b.concept(d, "detour", &["diversion", "alternative route"], &[]);
    b.concept(d, "taxi", &["cab", "ride hailing", "minicab"], &[]);
}

fn environment(b: &mut ThesaurusBuilder) {
    let d = Domain::Environment;
    b.concept(
        d,
        "temperature",
        &["air temperature", "ambient temperature", "thermal reading"],
        &["heat wave", "ground temperature"],
    );
    b.concept(
        d,
        "ground temperature",
        &["soil temperature", "surface temperature"],
        &[],
    );
    b.concept(d, "heat wave", &["hot spell", "extreme heat"], &[]);
    b.concept(
        d,
        "relative humidity",
        &["humidity", "air moisture", "moisture level"],
        &["dew point"],
    );
    b.concept(d, "dew point", &["condensation point"], &[]);
    b.concept(
        d,
        "atmospheric pressure",
        &["barometric pressure", "air pressure", "pressure"],
        &[],
    );
    b.concept(
        d,
        "wind speed",
        &["wind velocity", "gust speed"],
        &["wind direction", "anemometer"],
    );
    b.concept(d, "wind direction", &["wind bearing", "wind heading"], &[]);
    b.concept(d, "anemometer", &["wind sensor", "wind gauge"], &[]);
    b.concept(
        d,
        "rainfall",
        &["precipitation", "rain amount", "pluviometry"],
        &["rain gauge", "flood"],
    );
    b.concept(d, "rain gauge", &["pluviometer", "udometer"], &[]);
    b.concept(
        d,
        "flood",
        &["flooding", "inundation", "high water"],
        &["water flow"],
    );
    b.concept(
        d,
        "water flow",
        &["stream flow", "flow rate", "discharge"],
        &["river", "current"],
    );
    b.concept(d, "current", &["water current", "stream current"], &[]);
    b.concept(d, "river", &["stream", "watercourse", "waterway"], &[]);
    b.concept(
        d,
        "water quality",
        &["water purity", "potable water quality"],
        &["water resources management"],
    );
    b.concept(
        d,
        "water resources management",
        &["water management", "water conservation"],
        &[],
    );
    b.concept(
        d,
        "noise",
        &["noise level", "sound level", "acoustic level"],
        &["noise pollution measure", "decibel"],
    );
    b.concept(
        d,
        "noise pollution measure",
        &["noise abatement", "sound insulation"],
        &[],
    );
    b.concept(d, "decibel", &["sound intensity unit", "db level"], &[]);
    b.concept(
        d,
        "air pollution",
        &["air contamination", "smog", "atmospheric pollution"],
        &["particles", "ozone", "no2", "co"],
    );
    b.concept(
        d,
        "particles",
        &[
            "particulate matter",
            "fine particles",
            "dust particles",
            "pm10",
        ],
        &[],
    );
    b.concept(d, "ozone", &["o3", "trioxygen", "ozone concentration"], &[]);
    b.concept(d, "no2", &["nitrogen dioxide", "nitrogen oxide"], &[]);
    b.concept(d, "co", &["carbon monoxide", "monoxide"], &[]);
    b.concept(
        d,
        "co2",
        &["carbon dioxide", "carbon emissions"],
        &["emission"],
    );
    b.concept(
        d,
        "emission",
        &["pollutant release", "exhaust emission"],
        &[],
    );
    b.concept(
        d,
        "solar radiation",
        &["sunlight intensity", "insolation", "solar irradiance"],
        &["radiation", "uv index"],
    );
    b.concept(
        d,
        "radiation",
        &["radiant energy", "irradiation"],
        &["radiation par"],
    );
    b.concept(
        d,
        "radiation par",
        &["photosynthetically active radiation", "par level"],
        &[],
    );
    b.concept(d, "uv index", &["ultraviolet index", "uv level"], &[]);
    b.concept(
        d,
        "soil moisture tension",
        &["soil water tension", "soil suction", "soil moisture"],
        &["soil"],
    );
    b.concept(d, "soil", &["ground", "earth", "topsoil"], &["erosion"]);
    b.concept(d, "erosion", &["soil loss", "land degradation"], &[]);
    b.concept(
        d,
        "plant",
        &["flora", "vegetation", "greenery"],
        &["tree", "park"],
    );
    b.concept(d, "tree", &["woodland", "forest cover"], &[]);
    b.concept(
        d,
        "park",
        &["green space", "public garden", "urban park"],
        &[],
    );
    b.concept(d, "wildlife", &["fauna", "wild animals"], &["habitat"]);
    b.concept(d, "habitat", &["biotope", "natural environment"], &[]);
    b.concept(
        d,
        "recycling",
        &["waste recovery", "material reuse"],
        &["waste"],
    );
    b.concept(d, "waste", &["refuse", "garbage", "litter"], &["waste bin"]);
    b.concept(
        d,
        "waste bin",
        &["trash can", "litter bin", "refuse container"],
        &[],
    );
    b.concept(
        d,
        "light",
        &["daylight", "illuminance", "ambient light"],
        &["light sensor"],
    );
    b.concept(
        d,
        "light sensor",
        &["photometer", "lux meter", "luminosity sensor"],
        &[],
    );
    b.concept(
        d,
        "weather station",
        &["meteorological station", "climate station"],
        &["station"],
    );
}

fn energy(b: &mut ThesaurusBuilder) {
    let d = Domain::Energy;
    b.concept(
        d,
        "energy consumption",
        &[
            "electricity usage",
            "power usage",
            "energy use",
            "energy usage",
            "electricity consumption",
            "power consumption",
        ],
        &["energy meter", "energy demand peak"],
    );
    b.concept(
        d,
        "energy demand peak",
        &["consumption peak", "peak demand", "peak load", "usage peak"],
        &["load"],
    );
    b.concept(
        d,
        "load",
        &["electrical load", "demand load"],
        &["load shedding"],
    );
    b.concept(
        d,
        "load shedding",
        &["rolling blackout", "demand curtailment"],
        &[],
    );
    b.concept(
        d,
        "energy meter",
        &[
            "electricity meter",
            "power meter",
            "smart meter",
            "utility meter",
        ],
        &["kilowatt hour"],
    );
    b.concept(
        d,
        "kilowatt hour",
        &["kwh", "unit of electricity", "kilowatt hours"],
        &["watt"],
    );
    b.concept(d, "watt", &["wattage", "power unit"], &[]);
    b.concept(
        d,
        "voltage",
        &["electric potential", "volt level"],
        &["current"],
    );
    b.concept(
        d,
        "current",
        &["electric current", "amperage"],
        &["circuit"],
    );
    b.concept(
        d,
        "circuit",
        &["electrical circuit", "wiring loop"],
        &["fuse"],
    );
    b.concept(d, "fuse", &["circuit breaker", "cutout"], &[]);
    b.concept(
        d,
        "power grid",
        &[
            "electricity grid",
            "distribution network",
            "transmission grid",
        ],
        &["substation", "network"],
    );
    b.concept(d, "network", &["grid network", "supply network"], &[]);
    b.concept(
        d,
        "substation",
        &["transformer station", "switching station"],
        &["station"],
    );
    b.concept(
        d,
        "station",
        &["power station", "generating station"],
        &["power plant"],
    );
    b.concept(
        d,
        "power plant",
        &["generating plant", "power facility"],
        &["plant", "turbine"],
    );
    b.concept(d, "plant", &["industrial plant", "production plant"], &[]);
    b.concept(
        d,
        "turbine",
        &["generator turbine", "rotor"],
        &["generator"],
    );
    b.concept(d, "generator", &["dynamo", "alternator"], &[]);
    b.concept(
        d,
        "solar panel",
        &["photovoltaic panel", "pv module", "solar module"],
        &["solar power", "renewable source"],
    );
    b.concept(
        d,
        "solar power",
        &["photovoltaic energy", "solar energy"],
        &[],
    );
    b.concept(
        d,
        "renewable source",
        &["renewables", "green energy", "clean energy"],
        &["wind power"],
    );
    b.concept(
        d,
        "wind power",
        &["wind energy", "wind generation"],
        &["wind farm"],
    );
    b.concept(d, "wind farm", &["wind park", "turbine field"], &[]);
    b.concept(
        d,
        "battery",
        &["accumulator", "storage battery", "energy storage"],
        &["cell", "charge"],
    );
    b.concept(d, "cell", &["battery cell", "electrochemical cell"], &[]);
    b.concept(
        d,
        "charge",
        &["charging", "recharge", "battery charge"],
        &[],
    );
    b.concept(
        d,
        "appliance",
        &[
            "household appliance",
            "electrical appliance",
            "domestic appliance",
            "appliances",
        ],
        &["refrigerator", "washing machine"],
    );
    b.concept(d, "refrigerator", &["fridge", "cooler unit", "icebox"], &[]);
    b.concept(
        d,
        "washing machine",
        &["washer", "laundry machine"],
        &["dryer"],
    );
    b.concept(d, "dryer", &["tumble dryer", "clothes dryer"], &[]);
    b.concept(d, "dishwasher", &["dish washing machine"], &[]);
    b.concept(d, "microwave", &["microwave oven"], &["oven"]);
    b.concept(d, "oven", &["stove", "cooker", "range"], &[]);
    b.concept(d, "kettle", &["electric kettle", "water boiler"], &[]);
    b.concept(
        d,
        "air conditioner",
        &["ac unit", "cooling unit", "air conditioning"],
        &["hvac"],
    );
    b.concept(
        d,
        "hvac",
        &["climate control", "heating ventilation"],
        &["heating"],
    );
    b.concept(
        d,
        "heating",
        &["heater", "space heating", "radiator heating"],
        &["boiler"],
    );
    b.concept(d, "boiler", &["furnace", "heating boiler"], &[]);
    b.concept(
        d,
        "lighting",
        &["illumination", "light fixture", "luminaire"],
        &["light", "street light"],
    );
    b.concept(d, "light", &["lamp", "light bulb"], &[]);
    b.concept(
        d,
        "street light",
        &["street lamp", "streetlight", "public lighting"],
        &[],
    );
    b.concept(
        d,
        "energy efficiency measure",
        &[
            "energy saving",
            "efficiency improvement",
            "consumption reduction",
        ],
        &["insulation"],
    );
    b.concept(d, "insulation", &["thermal insulation", "lagging"], &[]);
    b.concept(
        d,
        "standby power",
        &["vampire power", "idle consumption", "phantom load"],
        &[],
    );
    b.concept(
        d,
        "fan",
        &["ventilator", "cooling fan", "extractor fan"],
        &["air conditioner"],
    );
    b.concept(
        d,
        "iron",
        &["smoothing iron", "clothes iron", "flat iron"],
        &["appliance"],
    );
    b.concept(
        d,
        "tariff",
        &["electricity price", "energy rate", "unit price"],
        &[],
    );
}

fn geography(b: &mut ThesaurusBuilder) {
    let d = Domain::Geography;
    b.concept(
        d,
        "city",
        &["urban area", "municipality", "town", "metropolis"],
        &["district", "region"],
    );
    b.concept(
        d,
        "district",
        &["borough", "quarter", "neighbourhood", "city district"],
        &["zone"],
    );
    b.concept(d, "zone", &["area", "sector", "precinct"], &[]);
    b.concept(
        d,
        "region",
        &["province", "county", "territory"],
        &["country"],
    );
    b.concept(
        d,
        "country",
        &["nation", "state", "sovereign state"],
        &["continent"],
    );
    b.concept(d, "continent", &["landmass", "continental area"], &[]);
    b.concept(
        d,
        "ireland",
        &["eire", "republic of ireland"],
        &["galway", "dublin"],
    );
    b.concept(d, "galway", &["galway city", "city of galway"], &[]);
    b.concept(d, "dublin", &["dublin city", "city of dublin"], &[]);
    b.concept(d, "spain", &["kingdom of spain", "espana"], &["santander"]);
    b.concept(
        d,
        "santander",
        &["santander city", "cantabrian capital"],
        &[],
    );
    b.concept(
        d,
        "europe",
        &["european countries", "european continent", "old continent"],
        &[],
    );
    b.concept(d, "france", &["french republic"], &["bordeaux"]);
    b.concept(d, "bordeaux", &["bordeaux city", "port of the moon"], &[]);
    b.concept(
        d,
        "coast",
        &["shoreline", "seaside", "coastal strip"],
        &["harbour"],
    );
    b.concept(d, "harbour", &["port", "seaport", "marina"], &[]);
    b.concept(d, "mountain", &["peak", "summit", "highlands"], &["valley"]);
    b.concept(d, "valley", &["vale", "river basin"], &[]);
    b.concept(
        d,
        "map",
        &["cartography", "street map", "city map"],
        &["grid"],
    );
    b.concept(
        d,
        "grid",
        &["map grid", "coordinate grid"],
        &["coordinates"],
    );
    b.concept(
        d,
        "coordinates",
        &["latitude longitude", "geolocation", "gps position"],
        &[],
    );
    b.concept(
        d,
        "building",
        &["edifice", "premises", "structure"],
        &["floor", "campus"],
    );
    b.concept(d, "floor", &["storey", "level", "ground floor"], &["room"]);
    b.concept(
        d,
        "room",
        &["chamber", "office room", "indoor space"],
        &["office", "desk"],
    );
    b.concept(d, "office", &["workplace", "bureau", "workspace"], &[]);
    b.concept(d, "desk", &["workstation desk", "work table"], &[]);
    b.concept(
        d,
        "campus",
        &["university grounds", "institutional site"],
        &[],
    );
    b.concept(d, "square", &["plaza", "town square", "piazza"], &[]);
    b.concept(d, "park", &["national park", "nature reserve"], &[]);
    b.concept(
        d,
        "population density",
        &["inhabitants per area", "settlement density"],
        &[],
    );
    b.concept(d, "land parcel", &["plot", "lot", "cadastral unit"], &[]);
    b.concept(
        d,
        "suburb",
        &["outskirts", "periphery", "commuter belt"],
        &[],
    );
    b.concept(d, "current", &["ocean current", "sea current"], &[]);
    b.concept(d, "island", &["isle", "islet"], &[]);
    b.concept(d, "bridge", &["viaduct", "overpass"], &[]);
}

fn education_communications(b: &mut ThesaurusBuilder) {
    let d = Domain::EducationCommunications;
    b.concept(
        d,
        "computer",
        &["desktop computer", "workstation", "personal computer", "pc"],
        &["laptop", "server"],
    );
    b.concept(
        d,
        "laptop",
        &["notebook", "portable computer", "notebook computer"],
        &["tablet"],
    );
    b.concept(d, "tablet", &["tablet computer", "slate device"], &[]);
    b.concept(
        d,
        "server",
        &["host machine", "server node", "compute node"],
        &["data centre"],
    );
    b.concept(
        d,
        "data centre",
        &["server farm", "computing facility", "data center"],
        &[],
    );
    b.concept(
        d,
        "cpu usage",
        &["processor usage", "cpu load", "processor utilization"],
        &["cpu"],
    );
    b.concept(
        d,
        "cpu",
        &["processor", "central processing unit", "microprocessor"],
        &[],
    );
    b.concept(
        d,
        "memory usage",
        &["ram usage", "memory utilization", "memory load"],
        &["memory"],
    );
    b.concept(
        d,
        "memory",
        &["ram", "main memory", "system memory"],
        &["storage"],
    );
    b.concept(
        d,
        "storage",
        &["disk", "hard drive", "solid state drive"],
        &[],
    );
    b.concept(
        d,
        "network",
        &["computer network", "data network", "lan"],
        &["router", "bandwidth", "internet"],
    );
    b.concept(
        d,
        "router",
        &["gateway", "network switch", "access point"],
        &[],
    );
    b.concept(
        d,
        "bandwidth",
        &["data rate", "network capacity", "throughput"],
        &["traffic"],
    );
    b.concept(
        d,
        "traffic",
        &["network traffic", "data traffic", "packet flow"],
        &[],
    );
    b.concept(
        d,
        "internet",
        &["world wide web", "web", "cyberspace"],
        &["protocol"],
    );
    b.concept(
        d,
        "protocol",
        &["communication protocol", "network protocol"],
        &[],
    );
    b.concept(
        d,
        "device",
        &["equipment", "apparatus", "gadget"],
        &["sensor"],
    );
    b.concept(
        d,
        "measurement unit",
        &["unit of measurement", "measuring unit"],
        &[],
    );
    b.concept(
        d,
        "sensor",
        &["detector", "sensing device", "transducer"],
        &["sensor platform", "signal"],
    );
    b.concept(
        d,
        "sensor platform",
        &["sensing node", "sensor board", "mote"],
        &[],
    );
    b.concept(
        d,
        "signal",
        &["transmission signal", "radio signal"],
        &["noise"],
    );
    b.concept(d, "noise", &["signal noise", "interference", "static"], &[]);
    b.concept(d, "antenna", &["aerial", "radio mast"], &["cell"]);
    b.concept(d, "cell", &["network cell", "coverage cell"], &[]);
    b.concept(
        d,
        "message",
        &["notification", "alert", "communication"],
        &["event stream"],
    );
    b.concept(
        d,
        "event stream",
        &["data stream", "message flow", "event feed"],
        &[],
    );
    b.concept(
        d,
        "platform",
        &[
            "software platform",
            "computing platform",
            "middleware platform",
        ],
        &[],
    );
    b.concept(d, "terminal", &["console", "command line", "tty"], &[]);
    b.concept(
        d,
        "software",
        &["application", "program", "app"],
        &["operating system"],
    );
    b.concept(d, "operating system", &["os", "system software"], &[]);
    b.concept(
        d,
        "database",
        &["data store", "repository", "data base"],
        &["query"],
    );
    b.concept(
        d,
        "query",
        &["search request", "lookup", "retrieval request"],
        &[],
    );
    b.concept(
        d,
        "school",
        &["primary school", "educational establishment"],
        &["university", "classroom"],
    );
    b.concept(
        d,
        "university",
        &["college", "higher education institution", "academy"],
        &["lecture"],
    );
    b.concept(d, "lecture", &["class", "seminar", "course session"], &[]);
    b.concept(d, "classroom", &["teaching room", "lecture hall"], &[]);
    b.concept(
        d,
        "teacher",
        &["instructor", "lecturer", "educator"],
        &["student"],
    );
    b.concept(d, "student", &["pupil", "learner", "undergraduate"], &[]);
    b.concept(
        d,
        "projector",
        &["beamer", "overhead projector"],
        &["screen"],
    );
    b.concept(d, "screen", &["display", "monitor", "display panel"], &[]);
    b.concept(d, "printer", &["printing device", "laser printer"], &[]);
    b.concept(
        d,
        "telephone",
        &["phone", "handset", "telephony"],
        &["mobile phone"],
    );
    b.concept(
        d,
        "mobile phone",
        &["smartphone", "cell phone", "cellular phone"],
        &[],
    );
    b.concept(d, "broadcast", &["transmission", "radio broadcast"], &[]);
}

fn social_questions(b: &mut ThesaurusBuilder) {
    let d = Domain::SocialQuestions;
    b.concept(
        d,
        "public health",
        &["community health", "population health"],
        &["hospital", "wellbeing"],
    );
    b.concept(
        d,
        "hospital",
        &["clinic", "medical centre", "infirmary"],
        &["ambulance"],
    );
    b.concept(
        d,
        "ambulance",
        &["emergency vehicle", "paramedic unit"],
        &[],
    );
    b.concept(
        d,
        "wellbeing",
        &["welfare", "quality of life", "life satisfaction"],
        &[],
    );
    b.concept(
        d,
        "housing",
        &["accommodation", "dwelling", "residence"],
        &["apartment", "household"],
    );
    b.concept(
        d,
        "apartment",
        &["flat", "condominium", "housing unit"],
        &[],
    );
    b.concept(
        d,
        "household",
        &["family unit", "domestic unit", "home"],
        &["occupant"],
    );
    b.concept(
        d,
        "occupant",
        &["resident", "inhabitant", "tenant"],
        &["occupancy"],
    );
    b.concept(
        d,
        "occupancy",
        &["occupation level", "presence", "utilisation"],
        &[],
    );
    b.concept(
        d,
        "population",
        &["populace", "residents", "citizenry"],
        &["census"],
    );
    b.concept(
        d,
        "census",
        &["population count", "demographic survey"],
        &[],
    );
    b.concept(
        d,
        "employment",
        &["jobs", "labour market", "occupation"],
        &["working conditions"],
    );
    b.concept(
        d,
        "working conditions",
        &["workplace conditions", "labour conditions"],
        &["safety at work"],
    );
    b.concept(
        d,
        "safety at work",
        &["occupational safety", "workplace safety"],
        &[],
    );
    b.concept(
        d,
        "elderly care",
        &["care of the aged", "senior care", "geriatric care"],
        &["care home"],
    );
    b.concept(d, "care home", &["nursing home", "retirement home"], &[]);
    b.concept(
        d,
        "childcare",
        &["child care", "nursery care", "creche"],
        &[],
    );
    b.concept(
        d,
        "accessibility",
        &["barrier free access", "disabled access", "universal access"],
        &[],
    );
    b.concept(
        d,
        "community centre",
        &["community hall", "civic centre"],
        &[],
    );
    b.concept(d, "pressure", &["social pressure", "stress", "strain"], &[]);
    b.concept(
        d,
        "crime",
        &["criminal offence", "delinquency"],
        &["security"],
    );
    b.concept(
        d,
        "security",
        &["public safety", "safety", "protection"],
        &["surveillance"],
    );
    b.concept(
        d,
        "surveillance",
        &["monitoring", "observation", "cctv watch"],
        &[],
    );
    b.concept(
        d,
        "emergency",
        &["crisis", "incident", "urgent situation"],
        &["alarm"],
    );
    b.concept(d, "alarm", &["alert signal", "warning", "siren"], &[]);
    b.concept(
        d,
        "pension",
        &["retirement benefit", "old age pension"],
        &[],
    );
    b.concept(d, "income", &["earnings", "revenue", "wages"], &[]);
    b.concept(d, "migration", &["immigration", "population movement"], &[]);
    b.concept(
        d,
        "volunteering",
        &["voluntary work", "community service"],
        &[],
    );
    b.concept(d, "nutrition", &["diet", "food intake"], &[]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Term;

    #[test]
    fn builds_without_error() {
        let th = Thesaurus::eurovoc_like();
        assert!(
            th.len() > 150,
            "expected a rich thesaurus, got {}",
            th.len()
        );
    }

    #[test]
    fn covers_table3_sensor_capabilities() {
        let th = Thesaurus::eurovoc_like();
        for cap in [
            "solar radiation",
            "particles",
            "speed",
            "wind direction",
            "wind speed",
            "temperature",
            "water flow",
            "atmospheric pressure",
            "noise",
            "ozone",
            "rainfall",
            "parking",
            "radiation par",
            "co",
            "ground temperature",
            "light",
            "no2",
            "soil moisture tension",
            "relative humidity",
            "energy consumption",
            "cpu usage",
            "memory usage",
        ] {
            assert!(th.contains(cap), "missing Table 3 capability `{cap}`");
            assert!(
                !th.expansions(cap, None).is_empty(),
                "capability `{cap}` has no expansions"
            );
        }
    }

    #[test]
    fn six_domains_have_top_terms() {
        let th = Thesaurus::eurovoc_like();
        for d in Domain::ALL {
            assert!(
                th.top_terms(d).len() >= 6,
                "domain {d} has too few top terms"
            );
        }
        // The union must support themes of size up to 30 (paper §5.2.4).
        assert!(th.top_terms_of(&Domain::ALL).len() >= 30);
    }

    #[test]
    fn has_cross_domain_ambiguity() {
        let th = Thesaurus::eurovoc_like();
        let amb = th.ambiguous_terms();
        for w in [
            "charge", "current", "plant", "cell", "light", "station", "park", "network", "noise",
            "traffic", "platform", "load",
        ] {
            assert!(
                amb.contains(&Term::new(w)),
                "expected `{w}` to be ambiguous, got {amb:?}"
            );
        }
    }

    #[test]
    fn paper_example_terms_are_synonyms() {
        let th = Thesaurus::eurovoc_like();
        // §3: 'energy consumption' vs 'energy usage'/'electricity usage'.
        let syns = th.synonyms("energy consumption");
        assert!(syns.iter().any(|t| t.as_str() == "electricity usage"));
        // §3: 'computer' vs 'laptop' are related (one RT hop).
        let rel = th.related_terms("computer");
        assert!(rel.iter().any(|t| t.as_str() == "laptop"));
        // §1: 'parking space occupied' vs 'garage spot occupied' — the
        // nominal parts are synonyms.
        let syns = th.synonyms("parking space");
        assert!(syns.iter().any(|t| t.as_str() == "garage spot"));
    }

    #[test]
    fn deterministic_across_calls() {
        let a = Thesaurus::eurovoc_like();
        let b = Thesaurus::eurovoc_like();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.all_terms(), b.all_terms());
    }
}
