//! Concepts: synonym rings with related-concept links, as in EuroVoc.

use crate::{Domain, Term};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of a [`Concept`] inside one [`crate::Thesaurus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConceptId(pub(crate) u32);

impl ConceptId {
    /// The raw index of the concept in its thesaurus.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A thesaurus concept: a preferred term, its synonyms, and links to
/// related concepts, scoped to a single [`Domain`] micro-thesaurus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Concept {
    pub(crate) id: ConceptId,
    pub(crate) domain: Domain,
    pub(crate) preferred: Term,
    pub(crate) alternates: Vec<Term>,
    pub(crate) related: Vec<ConceptId>,
}

impl Concept {
    /// The concept's identifier.
    pub fn id(&self) -> ConceptId {
        self.id
    }

    /// The micro-thesaurus domain the concept belongs to.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The preferred (canonical) term.
    pub fn preferred(&self) -> &Term {
        &self.preferred
    }

    /// Alternate terms (synonyms / near-synonyms), excluding the preferred
    /// term.
    pub fn alternates(&self) -> &[Term] {
        &self.alternates
    }

    /// Identifiers of related concepts (EuroVoc `RT` links).
    pub fn related(&self) -> &[ConceptId] {
        &self.related
    }

    /// All terms of the concept: preferred first, then alternates.
    pub fn terms(&self) -> impl Iterator<Item = &Term> {
        std::iter::once(&self.preferred).chain(self.alternates.iter())
    }

    /// Whether `term` names this concept (preferred or alternate).
    pub fn contains(&self, term: &str) -> bool {
        self.preferred.as_str() == term || self.alternates.iter().any(|t| t.as_str() == term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concept() -> Concept {
        Concept {
            id: ConceptId(3),
            domain: Domain::Energy,
            preferred: Term::new("energy consumption"),
            alternates: vec![Term::new("electricity usage"), Term::new("power usage")],
            related: vec![ConceptId(4)],
        }
    }

    #[test]
    fn terms_yield_preferred_first() {
        let c = concept();
        let terms: Vec<_> = c.terms().map(Term::as_str).collect();
        assert_eq!(
            terms,
            vec!["energy consumption", "electricity usage", "power usage"]
        );
    }

    #[test]
    fn contains_checks_all_terms() {
        let c = concept();
        assert!(c.contains("energy consumption"));
        assert!(c.contains("power usage"));
        assert!(!c.contains("parking"));
    }

    #[test]
    fn id_display_and_index() {
        assert_eq!(ConceptId(7).to_string(), "c7");
        assert_eq!(ConceptId(7).index(), 7);
    }
}
