//! Error type for thesaurus construction.

use crate::Term;
use std::error::Error;
use std::fmt;

/// Errors raised while building a [`crate::Thesaurus`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ThesaurusError {
    /// A concept was declared with an empty preferred term.
    EmptyPreferredTerm,
    /// The same preferred term was declared twice in the same domain.
    DuplicateConcept(Term),
    /// A related-concept link referenced a preferred term that was never
    /// declared.
    UnknownRelated {
        /// The concept declaring the link.
        from: Term,
        /// The missing link target.
        to: Term,
    },
}

impl fmt::Display for ThesaurusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThesaurusError::EmptyPreferredTerm => {
                write!(f, "concept declared with an empty preferred term")
            }
            ThesaurusError::DuplicateConcept(t) => {
                write!(f, "concept `{t}` declared twice in the same domain")
            }
            ThesaurusError::UnknownRelated { from, to } => {
                write!(f, "concept `{from}` links to undeclared concept `{to}`")
            }
        }
    }
}

impl Error for ThesaurusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = ThesaurusError::DuplicateConcept(Term::new("parking"));
        assert!(e.to_string().contains("parking"));
        let e = ThesaurusError::UnknownRelated {
            from: Term::new("a"),
            to: Term::new("b"),
        };
        assert!(e.to_string().contains('b'));
    }
}
