//! The immutable thesaurus and its query API.

use crate::concept::{Concept, ConceptId};
use crate::{Domain, Term};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An immutable multi-domain thesaurus.
///
/// Constructed either through [`crate::ThesaurusBuilder`] or as the built-in
/// EuroVoc-like instance via [`Thesaurus::eurovoc_like`].
///
/// Every query is by normalized term text (see [`Term`]); a term may belong
/// to several concepts (possibly in different domains), which is how
/// ambiguity is represented.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Thesaurus {
    concepts: Vec<Concept>,
    top_terms: HashMap<Domain, Vec<Term>>,
    /// term text -> ids of every concept containing the term.
    term_index: HashMap<Term, Vec<ConceptId>>,
}

impl Thesaurus {
    pub(crate) fn from_parts(
        concepts: Vec<Concept>,
        top_terms: HashMap<Domain, Vec<Term>>,
    ) -> Thesaurus {
        let mut term_index: HashMap<Term, Vec<ConceptId>> = HashMap::new();
        for c in &concepts {
            for t in c.terms() {
                term_index.entry(t.clone()).or_default().push(c.id());
            }
        }
        Thesaurus {
            concepts,
            top_terms,
            term_index,
        }
    }

    /// All concepts, in declaration order.
    pub fn concepts(&self) -> impl Iterator<Item = &Concept> {
        self.concepts.iter()
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the thesaurus has no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Looks a concept up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this thesaurus.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// The first concept containing `term`, if any.
    pub fn concept_of(&self, term: &str) -> Option<&Concept> {
        self.concepts_of(term).next()
    }

    /// Every concept containing `term` (several for ambiguous terms).
    pub fn concepts_of<'a>(&'a self, term: &str) -> impl Iterator<Item = &'a Concept> + 'a {
        let key = Term::new(term);
        self.term_index
            .get(&key)
            .map(|ids| ids.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|id| self.concept(*id))
    }

    /// Whether the thesaurus knows `term` at all.
    pub fn contains(&self, term: &str) -> bool {
        self.term_index.contains_key(&Term::new(term))
    }

    /// Synonyms of `term`: every other term of every concept that contains
    /// `term`. Empty if the term is unknown.
    pub fn synonyms(&self, term: &str) -> Vec<Term> {
        let key = Term::new(term);
        let mut out = Vec::new();
        for c in self.concepts_of(term) {
            for t in c.terms() {
                if *t != key && !out.contains(t) {
                    out.push(t.clone());
                }
            }
        }
        out
    }

    /// Terms of concepts related (one `RT` hop) to concepts of `term`,
    /// preferred terms only. Empty if the term is unknown.
    pub fn related_terms(&self, term: &str) -> Vec<Term> {
        let mut out = Vec::new();
        for c in self.concepts_of(term) {
            for rid in c.related() {
                let pref = self.concept(*rid).preferred().clone();
                if !out.contains(&pref) {
                    out.push(pref);
                }
            }
        }
        out
    }

    /// Synonyms plus related preferred terms — the expansion set used by
    /// the paper's semantic-expansion transform (§5.2.2) and the rewriting
    /// baseline (§5.1). When `within` is given, only expansions whose
    /// concept lies in one of those domains are returned.
    pub fn expansions(&self, term: &str, within: Option<&[Domain]>) -> Vec<Term> {
        let key = Term::new(term);
        let allowed = |d: Domain| within.is_none_or(|ds| ds.contains(&d));
        let mut out = Vec::new();
        for c in self.concepts_of(term) {
            if !allowed(c.domain()) {
                continue;
            }
            for t in c.terms() {
                if *t != key && !out.contains(t) {
                    out.push(t.clone());
                }
            }
            for rid in c.related() {
                let rc = self.concept(*rid);
                if !allowed(rc.domain()) {
                    continue;
                }
                let pref = rc.preferred().clone();
                if pref != key && !out.contains(&pref) {
                    out.push(pref);
                }
            }
        }
        out
    }

    /// Top terms of a domain's micro-thesaurus — the tag vocabulary for
    /// theme generation (§5.2.4).
    pub fn top_terms(&self, domain: Domain) -> &[Term] {
        self.top_terms
            .get(&domain)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Top terms across a set of domains, deduplicated, in domain order.
    pub fn top_terms_of(&self, domains: &[Domain]) -> Vec<Term> {
        let mut out = Vec::new();
        for d in domains {
            for t in self.top_terms(*d) {
                if !out.contains(t) {
                    out.push(t.clone());
                }
            }
        }
        out
    }

    /// Concepts of one domain.
    pub fn domain_concepts(&self, domain: Domain) -> impl Iterator<Item = &Concept> {
        self.concepts.iter().filter(move |c| c.domain() == domain)
    }

    /// The domains of every concept containing `term`, deduplicated.
    pub fn domains_of(&self, term: &str) -> Vec<Domain> {
        let mut out = Vec::new();
        for c in self.concepts_of(term) {
            if !out.contains(&c.domain()) {
                out.push(c.domain());
            }
        }
        out
    }

    /// Terms that belong to concepts in more than one domain — the
    /// deliberately ambiguous vocabulary.
    pub fn ambiguous_terms(&self) -> Vec<Term> {
        let mut out: Vec<Term> = self
            .term_index
            .iter()
            .filter(|(t, _)| self.domains_of(t.as_str()).len() > 1)
            .map(|(t, _)| t.clone())
            .collect();
        out.sort();
        out
    }

    /// Every distinct term in the thesaurus (preferred and alternates),
    /// sorted.
    pub fn all_terms(&self) -> Vec<Term> {
        let mut out: Vec<Term> = self.term_index.keys().cloned().collect();
        out.sort();
        out
    }

    /// Returns a degraded copy that keeps each alternate term and each
    /// related-concept link with probability `keep_fraction`
    /// (deterministically, from `seed`).
    ///
    /// Models an *incomplete* knowledge base — e.g. WordNet's partial
    /// coverage of EuroVoc's links, which is why the paper's rewriting
    /// baseline trails the approximate matcher (§5.1). Preferred terms,
    /// concepts and top terms are always kept.
    pub fn subsample(&self, keep_fraction: f64, seed: u64) -> Thesaurus {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let keep = keep_fraction.clamp(0.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7E5A);
        let concepts: Vec<Concept> = self
            .concepts
            .iter()
            .map(|c| Concept {
                id: c.id,
                domain: c.domain,
                preferred: c.preferred.clone(),
                alternates: c
                    .alternates
                    .iter()
                    .filter(|_| rng.gen_bool(keep))
                    .cloned()
                    .collect(),
                related: c
                    .related
                    .iter()
                    .filter(|_| rng.gen_bool(keep))
                    .copied()
                    .collect(),
            })
            .collect();
        Thesaurus::from_parts(concepts, self.top_terms.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThesaurusBuilder;

    fn small() -> Thesaurus {
        let mut b = ThesaurusBuilder::new();
        b.top_terms(Domain::Energy, &["energy policy", "electrical industry"]);
        b.top_terms(Domain::Transport, &["land transport"]);
        b.concept(
            Domain::Energy,
            "energy consumption",
            &["electricity usage", "power usage"],
            &["electricity meter"],
        );
        b.concept(Domain::Energy, "electricity meter", &["power meter"], &[]);
        b.concept(
            Domain::Transport,
            "parking",
            &["car park", "garage spot"],
            &[],
        );
        b.concept(Domain::Energy, "charge", &["charging"], &[]);
        b.concept(Domain::Transport, "charge", &["toll"], &[]);
        b.build().unwrap()
    }

    #[test]
    fn synonyms_exclude_query_term() {
        let th = small();
        let syns = th.synonyms("electricity usage");
        assert!(syns.iter().any(|t| t.as_str() == "energy consumption"));
        assert!(syns.iter().any(|t| t.as_str() == "power usage"));
        assert!(!syns.iter().any(|t| t.as_str() == "electricity usage"));
    }

    #[test]
    fn related_terms_are_one_hop_preferred() {
        let th = small();
        let rel = th.related_terms("energy consumption");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].as_str(), "electricity meter");
    }

    #[test]
    fn expansions_union_synonyms_and_related() {
        let th = small();
        let exp = th.expansions("energy consumption", None);
        let strs: Vec<&str> = exp.iter().map(Term::as_str).collect();
        assert!(strs.contains(&"electricity usage"));
        assert!(strs.contains(&"electricity meter"));
    }

    #[test]
    fn expansions_respect_domain_filter() {
        let th = small();
        let all = th.expansions("charge", None);
        assert!(all.iter().any(|t| t.as_str() == "toll"));
        let energy_only = th.expansions("charge", Some(&[Domain::Energy]));
        assert!(energy_only.iter().any(|t| t.as_str() == "charging"));
        assert!(!energy_only.iter().any(|t| t.as_str() == "toll"));
    }

    #[test]
    fn ambiguous_terms_span_domains() {
        let th = small();
        let amb = th.ambiguous_terms();
        assert_eq!(amb, vec![Term::new("charge")]);
        assert_eq!(th.domains_of("charge").len(), 2);
    }

    #[test]
    fn top_terms_per_domain_and_union() {
        let th = small();
        assert_eq!(th.top_terms(Domain::Energy).len(), 2);
        assert_eq!(th.top_terms(Domain::Geography), &[] as &[Term]);
        let union = th.top_terms_of(&[Domain::Energy, Domain::Transport]);
        assert_eq!(union.len(), 3);
    }

    #[test]
    fn unknown_term_queries_are_empty() {
        let th = small();
        assert!(th.synonyms("quasar").is_empty());
        assert!(th.related_terms("quasar").is_empty());
        assert!(th.expansions("quasar", None).is_empty());
        assert!(!th.contains("quasar"));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let th = small();
        assert!(th.contains("Energy Consumption"));
        assert!(!th.synonyms("POWER usage").is_empty());
    }

    #[test]
    fn all_terms_sorted_and_deduplicated() {
        let th = small();
        let all = th.all_terms();
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(all, sorted);
        assert!(all.iter().any(|t| t.as_str() == "car park"));
    }

    #[test]
    fn subsample_degrades_links_but_keeps_concepts() {
        let th = small();
        let full = th.subsample(1.0, 1);
        assert_eq!(full.len(), th.len());
        assert_eq!(
            full.synonyms("energy consumption").len(),
            th.synonyms("energy consumption").len()
        );
        let none = th.subsample(0.0, 1);
        assert_eq!(none.len(), th.len());
        assert!(none.synonyms("energy consumption").is_empty());
        assert!(none.related_terms("energy consumption").is_empty());
        // Preferred terms and top terms survive.
        assert!(none.contains("energy consumption"));
        assert_eq!(none.top_terms(Domain::Energy).len(), 2);
        // Deterministic.
        let a = th.subsample(0.5, 9);
        let b = th.subsample(0.5, 9);
        assert_eq!(a.all_terms(), b.all_terms());
    }

    #[test]
    fn domain_concepts_filters() {
        let th = small();
        assert_eq!(th.domain_concepts(Domain::Energy).count(), 3);
        assert_eq!(th.domain_concepts(Domain::Transport).count(), 2);
        assert_eq!(th.domain_concepts(Domain::Geography).count(), 0);
    }
}
