//! Normalized single- or multi-word terms.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;

/// A normalized term: lowercase, single-space separated words.
///
/// Terms are the unit of vocabulary shared between the thesaurus, the
/// corpus generator, the event model and the distributional space. A term
/// may be a single word (`"parking"`) or a multi-word expression
/// (`"energy consumption"`); multi-word terms are decomposed into words by
/// the indexing layer via [`Term::words`].
///
/// ```
/// use tep_thesaurus::Term;
///
/// let t = Term::new("  Energy   Consumption ");
/// assert_eq!(t.as_str(), "energy consumption");
/// assert_eq!(t.words().collect::<Vec<_>>(), vec!["energy", "consumption"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Term(String);

impl Term {
    /// Creates a term, normalizing case and whitespace.
    pub fn new(raw: &str) -> Term {
        let mut out = String::with_capacity(raw.len());
        for word in raw.split_whitespace() {
            if !out.is_empty() {
                out.push(' ');
            }
            for ch in word.chars() {
                out.extend(ch.to_lowercase());
            }
        }
        Term(out)
    }

    /// The normalized text of the term.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether the normalized term is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the words of a (possibly multi-word) term.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.0.split(' ').filter(|w| !w.is_empty())
    }

    /// Number of words in the term.
    pub fn word_count(&self) -> usize {
        self.words().count()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Term {
    fn from(raw: &str) -> Term {
        Term::new(raw)
    }
}

impl From<String> for Term {
    fn from(raw: String) -> Term {
        Term::new(&raw)
    }
}

impl AsRef<str> for Term {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Term {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn normalizes_case_and_whitespace() {
        assert_eq!(
            Term::new("Energy  CONSUMPTION").as_str(),
            "energy consumption"
        );
        assert_eq!(Term::new(" x ").as_str(), "x");
        assert_eq!(Term::new("").as_str(), "");
        assert!(Term::new("   ").is_empty());
    }

    #[test]
    fn words_of_multiword_term() {
        let t = Term::new("increased energy usage event");
        assert_eq!(t.word_count(), 4);
        assert_eq!(t.words().last(), Some("event"));
    }

    #[test]
    fn borrow_allows_str_lookup_in_sets() {
        let mut set = HashSet::new();
        set.insert(Term::new("Parking"));
        assert!(set.contains("parking"));
    }

    #[test]
    fn from_impls_normalize() {
        let a: Term = "NOISE Level".into();
        let b: Term = String::from("noise   level").into();
        assert_eq!(a, b);
    }

    #[test]
    fn single_word_term() {
        let t = Term::new("ozone");
        assert_eq!(t.word_count(), 1);
        assert_eq!(t.words().collect::<Vec<_>>(), vec!["ozone"]);
    }
}
