//! Generic filler vocabulary shared by all documents.
//!
//! Filler words play two roles: stop words exercise the indexing layer's
//! stop-word filter (they must *not* influence similarity), and generic
//! content words give every pair of terms a small amount of shared context,
//! like the broad vocabulary of real Wikipedia articles.

/// Common function words; the indexing layer removes these.
pub(crate) const STOP_WORDS: &[&str] = &[
    "the", "a", "an", "of", "in", "on", "at", "to", "and", "or", "is", "are", "was", "were", "be",
    "been", "by", "with", "for", "from", "as", "that", "this", "these", "those", "it", "its",
    "has", "have", "had", "not", "but", "also", "can", "may", "will", "which", "their", "there",
    "than", "then", "into", "over", "under", "between", "such", "per", "each", "other",
];

/// Generic content words that appear across all domains.
///
/// Deliberately disjoint from the thesaurus vocabulary *and* from the
/// words of the domain top terms: if a filler word also appeared in a
/// theme tag (e.g. `policy` in `energy policy`), every theme basis would
/// cover essentially the whole corpus and thematic projection would
/// degenerate to the identity.
pub(crate) const FILLER_WORDS: &[&str] = &[
    "report",
    "study",
    "analysis",
    "figures",
    "amount",
    "benchmark",
    "quantification",
    "framework",
    "provision",
    "project",
    "result",
    "extent",
    "number",
    "record",
    "summary",
    "overview",
    "survey",
    "example",
    "case",
    "model",
    "method",
    "approach",
    "procedure",
    "change",
    "increase",
    "decrease",
    "average",
    "total",
    "annual",
    "daily",
    "hourly",
    "civic",
    "local",
    "national",
    "general",
    "common",
    "typical",
    "observed",
    "reported",
    "estimated",
    "according",
    "during",
    "period",
    "history",
    "progress",
    "administration",
    "authority",
    "department",
    "council",
    "agency",
    "programme",
    "strategy",
];

/// Numeric and code tokens (room numbers, desk codes, years). Real
/// corpora contain such tokens, and without them every `room NNN` value
/// would collapse onto the same vector — these keep distinct identifiers
/// distributionally distinct.
pub(crate) const NUMERIC_FILLER: &[&str] = &[
    "101", "112", "113", "114", "201", "204", "212", "301", "310", "315", "101a", "112c", "114b",
    "201a", "204d", "212a", "301c", "310b", "42", "2013", "2014", "2020", "6lowpan", "km", "kw",
];

/// Open-domain background vocabulary: topics far from the six evaluation
/// domains (history, sport, arts, …). Background documents are built
/// mostly from these words, standing in for the vast majority of a real
/// ESA corpus that is unrelated to any given event workload.
pub(crate) const BACKGROUND_WORDS: &[&str] = &[
    "history",
    "war",
    "battle",
    "empire",
    "king",
    "queen",
    "dynasty",
    "revolution",
    "treaty",
    "medieval",
    "ancient",
    "century",
    "kingdom",
    "film",
    "cinema",
    "actor",
    "director",
    "premiere",
    "festival",
    "music",
    "album",
    "band",
    "concert",
    "orchestra",
    "symphony",
    "opera",
    "novel",
    "poet",
    "literature",
    "chapter",
    "publisher",
    "manuscript",
    "painting",
    "sculpture",
    "gallery",
    "exhibition",
    "portrait",
    "museum",
    "theatre",
    "ballet",
    "choreography",
    "costume",
    "football",
    "match",
    "tournament",
    "league",
    "championship",
    "goal",
    "athlete",
    "olympic",
    "stadium",
    "referee",
    "coach",
    "cricket",
    "tennis",
    "marathon",
    "swimming",
    "gymnastics",
    "medal",
    "election",
    "parliament",
    "senate",
    "minister",
    "campaign",
    "ballot",
    "monarchy",
    "republic",
    "constitution",
    "diplomat",
    "embassy",
    "religion",
    "temple",
    "cathedral",
    "monastery",
    "pilgrimage",
    "philosophy",
    "ethics",
    "logic",
    "metaphysics",
    "rhetoric",
    "astronomy",
    "galaxy",
    "telescope",
    "comet",
    "nebula",
    "constellation",
    "biology",
    "species",
    "evolution",
    "genome",
    "organism",
    "fossil",
    "cuisine",
    "recipe",
    "restaurant",
    "chef",
    "baking",
    "vineyard",
    "fashion",
    "textile",
    "garment",
    "silk",
    "wool",
    "embroidery",
    "mythology",
    "legend",
    "folklore",
    "saga",
    "deity",
    "oracle",
];

/// Domain words with strong *other* senses that real open-domain corpora
/// use constantly (a light novel, an electoral cell, an iron throne, a
/// football fan, a river of traffic…). Injected into background documents,
/// they pollute the full-space vectors of exactly the words the event
/// workload discriminates on — the polysemy noise thematic projection is
/// designed to remove.
/// NOTE: none of these words may appear in any domain *top term* — a
/// theme tag whose words occur in background documents would pull the
/// background into its basis and neutralize projection (enforced by a
/// test in `tep-corpus`).
pub(crate) const BACKGROUND_AMBIGUOUS: &[&str] = &[
    "light",
    "current",
    "charge",
    "cell",
    "iron",
    "fan",
    "screen",
    "platform",
    "station",
    "park",
    "speed",
    "pressure",
    "load",
    "plant",
    "monitor",
    "terminal",
    "bridge",
    "coach",
    "signal",
    "heat",
    "wind",
    "square",
    "floor",
    // High-frequency head words of the event vocabulary whose open-domain
    // usage is extremely broad (a reading of a poem, the usage of a word,
    // consumption in Victorian novels, the event of the season, a room in
    // a castle, a unit of cavalry…).
    "room",
    "desk",
    "event",
    "reading",
    "unit",
    "usage",
    "consumption",
    "meter",
    "space",
    "ground",
    "street",
    "sensor",
    "device",
    "country",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn no_overlap_between_stop_and_filler() {
        let stops: HashSet<_> = STOP_WORDS.iter().collect();
        assert!(FILLER_WORDS.iter().all(|w| !stops.contains(w)));
        assert!(NUMERIC_FILLER.iter().all(|w| !stops.contains(w)));
    }

    #[test]
    fn numeric_tokens_survive_length_filter() {
        // The tokenizer drops single-character tokens; every numeric
        // filler token must be at least two characters.
        assert!(NUMERIC_FILLER.iter().all(|w| w.chars().count() >= 2));
    }

    #[test]
    fn all_lowercase_single_words() {
        for w in STOP_WORDS.iter().chain(FILLER_WORDS) {
            assert!(!w.contains(' '));
            assert_eq!(*w, w.to_lowercase());
        }
    }
}
