//! Documents and document identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;
use tep_thesaurus::Domain;

/// Identifier of a document within one [`crate::Corpus`].
///
/// Document ids are dense (`0..corpus.len()`), which lets the indexing and
/// vector-space layers use them directly as array indices — the basis
/// vectors of the distributional space (Fig. 5) are exactly the documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// The dense index of the document.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A generated document: a title, body text and the domain its topic was
/// drawn from (`None` for open-domain background documents).
///
/// The domain is generation metadata (the real Wikipedia corpus has no such
/// label); it is exposed for diagnostics and tests only and is never
/// consulted by the matcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    pub(crate) id: DocId,
    pub(crate) title: String,
    pub(crate) text: String,
    pub(crate) domain: Option<Domain>,
}

impl Document {
    /// The document's id.
    pub fn id(&self) -> DocId {
        self.id
    }

    /// The document's synthetic title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The body text (lowercase words separated by single spaces).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The domain the document's topic was sampled from (diagnostics
    /// only); `None` for background documents.
    pub fn domain(&self) -> Option<Domain> {
        self.domain
    }

    /// Whether the document is open-domain background.
    pub fn is_background(&self) -> bool {
        self.domain.is_none()
    }

    /// Iterates over the words of the body text.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.text.split_whitespace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_id_display_and_index() {
        assert_eq!(DocId(12).to_string(), "d12");
        assert_eq!(DocId(12).index(), 12);
    }

    #[test]
    fn words_split_text() {
        let d = Document {
            id: DocId(0),
            title: "t".into(),
            text: "energy consumption meter".into(),
            domain: Some(Domain::Energy),
        };
        assert_eq!(d.words().count(), 3);
        assert_eq!(d.words().next(), Some("energy"));
    }
}
