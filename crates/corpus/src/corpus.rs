//! The corpus container.

use crate::document::{DocId, Document};
use crate::generator::CorpusGenerator;
use crate::CorpusConfig;
use serde::{Deserialize, Serialize};
use tep_thesaurus::{Domain, Thesaurus};

/// An immutable collection of generated documents.
///
/// Serves the same role as the indexed Wikipedia dump in the paper: the
/// document set over which the distributional vector space (Fig. 5) is
/// built.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    documents: Vec<Document>,
    config: CorpusConfig,
}

impl Corpus {
    pub(crate) fn from_parts(documents: Vec<Document>, config: CorpusConfig) -> Corpus {
        Corpus { documents, config }
    }

    /// Generates a corpus from the built-in EuroVoc-like thesaurus.
    ///
    /// ```
    /// use tep_corpus::{Corpus, CorpusConfig};
    /// let c = Corpus::generate(&CorpusConfig::small());
    /// assert_eq!(c.len(), CorpusConfig::small().num_docs);
    /// ```
    pub fn generate(config: &CorpusConfig) -> Corpus {
        let thesaurus = Thesaurus::eurovoc_like();
        CorpusGenerator::new(&thesaurus, config.clone()).generate()
    }

    /// Generates a corpus from a caller-provided thesaurus.
    pub fn generate_with(thesaurus: &Thesaurus, config: &CorpusConfig) -> Corpus {
        CorpusGenerator::new(thesaurus, config.clone()).generate()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// The generation parameters this corpus was built with.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Looks a document up by id.
    pub fn document(&self, id: DocId) -> Option<&Document> {
        self.documents.get(id.index())
    }

    /// Iterates over all documents in id order.
    pub fn documents(&self) -> impl Iterator<Item = &Document> {
        self.documents.iter()
    }

    /// Number of open-domain background documents.
    pub fn background_count(&self) -> usize {
        self.documents.iter().filter(|d| d.is_background()).count()
    }

    /// Number of documents whose topic was drawn from `domain`.
    pub fn domain_count(&self, domain: Domain) -> usize {
        self.documents
            .iter()
            .filter(|d| d.domain() == Some(domain))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_config_size() {
        let cfg = CorpusConfig::small().with_num_docs(60);
        let c = Corpus::generate(&cfg);
        assert_eq!(c.len(), 60);
        assert!(!c.is_empty());
        assert_eq!(c.config().num_docs, 60);
    }

    #[test]
    fn document_lookup_by_id() {
        let c = Corpus::generate(&CorpusConfig::small().with_num_docs(12));
        let d = c.document(DocId(5)).unwrap();
        assert_eq!(d.id(), DocId(5));
        assert!(c.document(DocId(12)).is_none());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let c = Corpus::generate(&CorpusConfig::small().with_num_docs(24));
        for (i, d) in c.documents().enumerate() {
            assert_eq!(d.id().index(), i);
        }
    }

    #[test]
    fn domain_counts_plus_background_sum_to_len() {
        let c = Corpus::generate(&CorpusConfig::small().with_num_docs(36));
        let total: usize = Domain::ALL.iter().map(|d| c.domain_count(*d)).sum();
        assert_eq!(total + c.background_count(), c.len());
        assert!(c.background_count() > 0);
    }
}
