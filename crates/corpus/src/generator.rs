//! The topic-cluster document generator.

use crate::document::{DocId, Document};
use crate::filler::{
    BACKGROUND_AMBIGUOUS, BACKGROUND_WORDS, FILLER_WORDS, NUMERIC_FILLER, STOP_WORDS,
};
use crate::{Corpus, CorpusConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tep_thesaurus::{Concept, Domain, Term, Thesaurus};

/// Generates a [`Corpus`] from a [`Thesaurus`] and a [`CorpusConfig`].
///
/// Each document is produced as follows (mirroring how a Wikipedia article
/// concentrates on one topic):
///
/// 1. a **domain** is assigned round-robin, so all six domains are covered
///    evenly;
/// 2. a **topic cluster** of `concepts_per_doc` concepts is grown from a
///    random seed concept by following related-concept links, then padded
///    with random concepts of the same domain;
/// 3. `top_terms_per_doc` of the domain's **top terms** are embedded, so a
///    theme tag's distributional vector selects documents of its domain;
/// 4. words are sampled: mostly terms of the cluster's concepts (synonyms
///    of one concept therefore co-occur), a small `cross_domain_noise`
///    fraction from foreign domains, and `filler_rate` generic words.
#[derive(Debug)]
pub struct CorpusGenerator<'a> {
    thesaurus: &'a Thesaurus,
    config: CorpusConfig,
}

impl<'a> CorpusGenerator<'a> {
    /// Creates a generator over `thesaurus` with `config`.
    pub fn new(thesaurus: &'a Thesaurus, config: CorpusConfig) -> CorpusGenerator<'a> {
        CorpusGenerator { thesaurus, config }
    }

    /// Generates the corpus deterministically from the config seed.
    pub fn generate(&self) -> Corpus {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let per_domain: Vec<Vec<&Concept>> = Domain::ALL
            .iter()
            .map(|d| self.thesaurus.domain_concepts(*d).collect())
            .collect();

        let background_every = if self.config.background_fraction <= 0.0 {
            usize::MAX
        } else {
            // One background doc every k docs approximates the fraction.
            (1.0 / self.config.background_fraction).round().max(1.0) as usize
        };
        let mut documents = Vec::with_capacity(self.config.num_docs);
        let mut topical = 0usize;
        for i in 0..self.config.num_docs {
            let doc = if background_every != usize::MAX && i % background_every == 0 {
                self.generate_background(DocId(i as u32), &per_domain, &mut rng)
            } else {
                let domain = Domain::ALL[topical % Domain::ALL.len()];
                topical += 1;
                self.generate_document(DocId(i as u32), domain, &per_domain, &mut rng)
            };
            documents.push(doc);
        }
        Corpus::from_parts(documents, self.config.clone())
    }

    /// An open-domain background document: mostly background vocabulary,
    /// no top terms, with `background_leakage` probability of a leaked
    /// domain term per slot.
    fn generate_background(
        &self,
        id: DocId,
        per_domain: &[Vec<&Concept>],
        rng: &mut SmallRng,
    ) -> Document {
        let target = rng.gen_range(self.config.min_words..=self.config.max_words);
        let mut words: Vec<String> = Vec::with_capacity(target + 4);
        while words.len() < target {
            let r: f64 = rng.gen();
            if r < self.config.background_leakage {
                let domain = Domain::ALL[rng.gen_range(0..Domain::ALL.len())];
                if let Some(t) = random_term(&per_domain[domain.index()], rng) {
                    push_term(&mut words, &t);
                }
            } else if r < self.config.background_leakage + self.config.background_polysemy {
                // Polysemy: the other-sense usage of a domain word.
                words.push(
                    BACKGROUND_AMBIGUOUS[rng.gen_range(0..BACKGROUND_AMBIGUOUS.len())].to_string(),
                );
            } else if r < self.config.background_leakage + self.config.background_polysemy + 0.12 {
                words.push(STOP_WORDS[rng.gen_range(0..STOP_WORDS.len())].to_string());
            } else if r < self.config.background_leakage + self.config.background_polysemy + 0.18 {
                words.push(FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())].to_string());
            } else {
                words.push(BACKGROUND_WORDS[rng.gen_range(0..BACKGROUND_WORDS.len())].to_string());
            }
        }
        Document {
            id,
            title: format!("background article {}", id.0),
            text: words.join(" "),
            domain: None,
        }
    }

    fn generate_document(
        &self,
        id: DocId,
        domain: Domain,
        per_domain: &[Vec<&Concept>],
        rng: &mut SmallRng,
    ) -> Document {
        let cluster = self.topic_cluster(domain, per_domain, rng);
        let top = self.doc_top_terms(domain, rng);

        let target = rng.gen_range(self.config.min_words..=self.config.max_words);
        let mut words: Vec<String> = Vec::with_capacity(target + 8);
        for t in &top {
            push_term(&mut words, t);
        }

        while words.len() < target {
            let r: f64 = rng.gen();
            if r < self.config.cross_domain_noise {
                // Cross-domain contamination: a term from a foreign domain.
                let foreign = Domain::ALL[rng.gen_range(0..Domain::ALL.len())];
                if foreign != domain {
                    if let Some(t) = random_term(&per_domain[foreign.index()], rng) {
                        push_term(&mut words, &t);
                    }
                    continue;
                }
                // Fall through to in-domain sampling when the draw collides.
            }
            let r: f64 = rng.gen();
            if r < self.config.filler_rate {
                let roll: f64 = rng.gen();
                let w = if roll < 0.40 {
                    STOP_WORDS[rng.gen_range(0..STOP_WORDS.len())]
                } else if roll < 0.80 {
                    FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())]
                } else {
                    NUMERIC_FILLER[rng.gen_range(0..NUMERIC_FILLER.len())]
                };
                words.push(w.to_string());
            } else if r < self.config.filler_rate + 0.08 {
                // Reinforce one of the document's own top terms.
                let t = &top[rng.gen_range(0..top.len())];
                push_term(&mut words, t);
            } else if !cluster.is_empty() {
                let c = cluster[rng.gen_range(0..cluster.len())];
                push_term(&mut words, sample_concept_term(c, rng));
            } else {
                words.push(FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())].to_string());
            }
        }

        Document {
            id,
            title: format!("{} article {}", domain.label(), id.0),
            text: words.join(" "),
            domain: Some(domain),
        }
    }

    /// Grows a topic cluster: seed concept, its related closure, then
    /// random same-domain padding.
    fn topic_cluster<'c>(
        &self,
        domain: Domain,
        per_domain: &[Vec<&'c Concept>],
        rng: &mut SmallRng,
    ) -> Vec<&'c Concept>
    where
        'a: 'c,
    {
        let pool = &per_domain[domain.index()];
        let want = self.config.concepts_per_doc.min(pool.len());
        let mut cluster: Vec<&Concept> = Vec::with_capacity(want);
        if pool.is_empty() {
            return cluster;
        }
        let seed = pool[rng.gen_range(0..pool.len())];
        cluster.push(seed);
        // Follow related links (staying in-domain keeps the topic tight).
        let mut frontier = seed.related().to_vec();
        while cluster.len() < want {
            let Some(rid) = frontier.pop() else { break };
            let rc = self.thesaurus.concept(rid);
            if rc.domain() == domain && !cluster.iter().any(|c| c.id() == rc.id()) {
                cluster.push(rc);
                frontier.extend_from_slice(rc.related());
            }
        }
        // Pad with random same-domain concepts.
        let mut guard = 0;
        while cluster.len() < want && guard < 64 {
            guard += 1;
            let c = pool[rng.gen_range(0..pool.len())];
            if !cluster.iter().any(|x| x.id() == c.id()) {
                cluster.push(c);
            }
        }
        cluster
    }

    fn doc_top_terms(&self, domain: Domain, rng: &mut SmallRng) -> Vec<Term> {
        let tops = self.thesaurus.top_terms(domain);
        if tops.is_empty() {
            return Vec::new();
        }
        let want = self.config.top_terms_per_doc.clamp(1, tops.len());
        let mut picked: Vec<Term> = Vec::with_capacity(want);
        let mut guard = 0;
        while picked.len() < want && guard < 64 {
            guard += 1;
            let t = &tops[rng.gen_range(0..tops.len())];
            if !picked.contains(t) {
                picked.push(t.clone());
            }
        }
        picked
    }
}

fn push_term(words: &mut Vec<String>, term: &Term) {
    for w in term.words() {
        words.push(w.to_string());
    }
}

/// A uniformly random term of a uniformly random concept, preferring the
/// preferred term with 40% probability to mimic Zipfian term usage.
fn random_term(pool: &[&Concept], rng: &mut SmallRng) -> Option<Term> {
    if pool.is_empty() {
        return None;
    }
    let c = pool[rng.gen_range(0..pool.len())];
    Some(sample_concept_term(c, rng).clone())
}

fn sample_concept_term<'c>(c: &'c Concept, rng: &mut SmallRng) -> &'c Term {
    if c.alternates().is_empty() || rng.gen_bool(0.4) {
        c.preferred()
    } else {
        &c.alternates()[rng.gen_range(0..c.alternates().len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thesaurus() -> Thesaurus {
        Thesaurus::eurovoc_like()
    }

    #[test]
    fn deterministic_for_equal_seed() {
        let th = thesaurus();
        let cfg = CorpusConfig::small();
        let a = CorpusGenerator::new(&th, cfg.clone()).generate();
        let b = CorpusGenerator::new(&th, cfg).generate();
        assert_eq!(a.documents().count(), b.documents().count());
        for (x, y) in a.documents().zip(b.documents()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seed_differs() {
        let th = thesaurus();
        let a = CorpusGenerator::new(&th, CorpusConfig::small()).generate();
        let b = CorpusGenerator::new(&th, CorpusConfig::small().with_seed(99)).generate();
        let same = a
            .documents()
            .zip(b.documents())
            .filter(|(x, y)| x.text() == y.text())
            .count();
        assert!(same < a.len());
    }

    #[test]
    fn documents_hit_length_targets() {
        let th = thesaurus();
        let cfg = CorpusConfig::small();
        let corpus = CorpusGenerator::new(&th, cfg.clone()).generate();
        for d in corpus.documents() {
            let n = d.words().count();
            // Multi-word terms may overshoot by a few words.
            assert!(n >= cfg.min_words, "doc {} too short: {n}", d.id());
            assert!(n <= cfg.max_words + 8, "doc {} too long: {n}", d.id());
        }
    }

    #[test]
    fn domains_are_covered_evenly() {
        let th = thesaurus();
        let corpus = CorpusGenerator::new(&th, CorpusConfig::small()).generate();
        let counts: Vec<usize> = Domain::ALL
            .iter()
            .map(|d| {
                corpus
                    .documents()
                    .filter(|doc| doc.domain() == Some(*d))
                    .count()
            })
            .collect();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "uneven domain coverage: {counts:?}");
        let background = corpus.documents().filter(|d| d.is_background()).count();
        let frac = background as f64 / corpus.len() as f64;
        let want = CorpusConfig::small().background_fraction;
        assert!(
            (frac - want).abs() < 0.1,
            "background fraction {frac} vs {want}"
        );
    }

    #[test]
    fn topical_documents_embed_domain_top_terms() {
        let th = thesaurus();
        let corpus = CorpusGenerator::new(&th, CorpusConfig::small()).generate();
        // Every topical document must contain at least one word of one of
        // its domain's top terms (property 3 of the crate docs).
        for doc in corpus.documents() {
            let Some(domain) = doc.domain() else { continue };
            let tops = th.top_terms(domain);
            let text = doc.text();
            assert!(
                tops.iter().any(|t| t.words().all(|w| text.contains(w))),
                "doc {} has no top term of {domain}",
                doc.id(),
            );
        }
    }

    #[test]
    fn background_documents_have_no_top_terms_but_leak_domain_words() {
        let th = thesaurus();
        let corpus = CorpusGenerator::new(&th, CorpusConfig::small()).generate();
        let tops = th.top_terms_of(&Domain::ALL);
        let mut leaked = 0usize;
        let mut background = 0usize;
        let mut with_top_phrase = 0usize;
        for doc in corpus.documents().filter(|d| d.is_background()) {
            background += 1;
            let text = format!(" {} ", doc.text());
            // Adjacent leaked words can form a top-term phrase by
            // coincidence, but it must stay rare — background docs never
            // embed top terms deliberately.
            if tops.iter().any(|t| text.contains(&format!(" {t} "))) {
                with_top_phrase += 1;
            }
            if text
                .split(' ')
                .any(|w| w == "energy" || w == "parking" || w == "sensor")
            {
                leaked += 1;
            }
        }
        assert!(background > 0);
        assert!(
            leaked > 0,
            "leakage must plant domain words in background docs"
        );
        assert!(
            (with_top_phrase as f64) < 0.2 * background as f64,
            "{with_top_phrase}/{background} background docs embed a top-term phrase"
        );
    }
}
