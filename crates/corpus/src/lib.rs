//! # tep-corpus
//!
//! A deterministic synthetic text corpus that substitutes the Wikipedia
//! 2013 dump used by the paper to build its Explicit Semantic Analysis
//! (ESA) space (§3.1).
//!
//! ## Why a synthetic corpus is a faithful substitute
//!
//! ESA does not use Wikipedia's *content*, only its *co-occurrence
//! structure*: a word's meaning vector is the set of documents it appears
//! in, weighted by TF/IDF. The thematic matcher relies on three structural
//! properties of that space:
//!
//! 1. **synonyms and related terms share documents** (high relatedness);
//! 2. **terms of different domains rarely share documents** (low
//!    relatedness);
//! 3. **ambiguous terms share documents with several domains**, producing
//!    the false similarity that thematic projection removes.
//!
//! [`CorpusGenerator`] reproduces exactly these properties by sampling
//! documents from per-domain topic clusters drawn from the
//! [`tep_thesaurus::Thesaurus`]: a document mostly contains terms of a few
//! related concepts of one domain (plus that domain's *top terms*, so theme
//! tags select domain documents), a small fraction of cross-domain noise,
//! and generic filler words.
//!
//! ```
//! use tep_corpus::{Corpus, CorpusConfig, DocId};
//!
//! let corpus = Corpus::generate(&CorpusConfig::small());
//! assert!(corpus.len() > 0);
//! let doc = corpus.document(DocId(0)).unwrap();
//! assert!(!doc.text().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod corpus;
mod document;
mod filler;
mod generator;

pub use config::CorpusConfig;
pub use corpus::Corpus;
pub use document::{DocId, Document};
pub use generator::CorpusGenerator;
