//! Corpus generation parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic corpus generator.
///
/// All sampling flows from `seed`, so equal configs produce bit-identical
/// corpora. The mixture probabilities control the three structural
/// properties the ESA space needs (see the crate docs); the defaults were
/// calibrated so that the evaluation reproduces the *shape* of the paper's
/// Figures 7–10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Minimum words per document (before multi-word term expansion).
    pub min_words: usize,
    /// Maximum words per document.
    pub max_words: usize,
    /// Number of concepts forming one document's topic cluster.
    pub concepts_per_doc: usize,
    /// Number of the domain's top terms embedded in each document. Smaller
    /// values make single-tag themes cover fewer documents (the paper's
    /// "very small themes perform poorly" effect).
    pub top_terms_per_doc: usize,
    /// Probability that a sampled term comes from a *different* domain
    /// (cross-domain contamination; raises the non-thematic matcher's false
    /// similarity).
    pub cross_domain_noise: f64,
    /// Probability that a sampled term is a generic filler word.
    pub filler_rate: f64,
    /// Fraction of the corpus that is **open-domain background**:
    /// documents about unrelated topics (history, sport, culture, …) with
    /// no top terms. Real ESA corpora (Wikipedia) are overwhelmingly
    /// background; it is this mass that thematic projection prunes.
    pub background_fraction: f64,
    /// Probability that a background word slot *leaks* a term from a
    /// random domain concept. Leakage is what creates spurious
    /// co-occurrence between unrelated domain terms — the noise floor of
    /// the non-thematic measure.
    pub background_leakage: f64,
    /// Probability that a background word slot uses the *other sense* of
    /// an ambiguous domain word (`light`, `cell`, `room`, `event`, …).
    /// This is the polysemy mass that pollutes the full-space vectors of
    /// the event vocabulary and that thematic projection prunes.
    pub background_polysemy: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// The default evaluation-scale corpus (a few thousand documents).
    pub fn standard() -> CorpusConfig {
        CorpusConfig {
            num_docs: 3000,
            min_words: 40,
            max_words: 110,
            concepts_per_doc: 5,
            top_terms_per_doc: 2,
            cross_domain_noise: 0.15,
            filler_rate: 0.15,
            background_fraction: 0.55,
            background_leakage: 0.015,
            background_polysemy: 0.3,
            seed: 0x7E9_2014,
        }
    }

    /// A small corpus for unit tests and doc examples (fast to index).
    pub fn small() -> CorpusConfig {
        CorpusConfig {
            num_docs: 300,
            ..CorpusConfig::standard()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> CorpusConfig {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different document count.
    pub fn with_num_docs(mut self, num_docs: usize) -> CorpusConfig {
        self.num_docs = num_docs;
        self
    }
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_standard() {
        assert_eq!(CorpusConfig::default(), CorpusConfig::standard());
    }

    #[test]
    fn with_builders_override_fields() {
        let c = CorpusConfig::standard().with_seed(1).with_num_docs(10);
        assert_eq!(c.seed, 1);
        assert_eq!(c.num_docs, 10);
        assert_eq!(c.min_words, CorpusConfig::standard().min_words);
    }

    #[test]
    fn small_is_smaller() {
        assert!(CorpusConfig::small().num_docs < CorpusConfig::standard().num_docs);
    }
}
