//! Subscription-set generation (paper §5.2.3).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tep_events::{Event, Subscription};

/// Generates the exact subscription set by "randomly picking a number of
/// tuples from the seed events and turning them into exact subscriptions"
/// (§5.2.3), plus their fully `~`-approximated counterparts.
///
/// The `type` tuple is always included when the seed has one, mirroring
/// every subscription example in the paper — a subscription without a
/// type predicate would be semantically anchorless.
#[derive(Debug)]
pub struct SubscriptionGenerator {
    rng: SmallRng,
}

impl SubscriptionGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> SubscriptionGenerator {
        SubscriptionGenerator {
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_0003),
        }
    }

    /// Generates `count` exact subscriptions over `seeds` with between
    /// `min_predicates` and `max_predicates` predicates each. Returns the
    /// exact set; call [`approximate_all`] for the 100%-approximation set.
    pub fn generate(
        &mut self,
        seeds: &[Event],
        count: usize,
        min_predicates: usize,
        max_predicates: usize,
    ) -> Vec<Subscription> {
        assert!(min_predicates >= 1 && min_predicates <= max_predicates);
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let seed = &seeds[i % seeds.len()];
            out.push(self.subscription_from(seed, min_predicates, max_predicates));
        }
        out
    }

    fn subscription_from(&mut self, seed: &Event, min_p: usize, max_p: usize) -> Subscription {
        let tuples = seed.tuples();
        let want = self.rng.gen_range(min_p..=max_p).min(tuples.len()).max(1);
        let mut picked: Vec<usize> = Vec::with_capacity(want);
        // Anchor on the type tuple when present.
        if let Some(pos) = tuples.iter().position(|t| t.attribute() == "type") {
            picked.push(pos);
        }
        let mut guard = 0;
        while picked.len() < want && guard < 128 {
            guard += 1;
            let idx = self.rng.gen_range(0..tuples.len());
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        let mut builder = Subscription::builder();
        for idx in picked {
            let t = &tuples[idx];
            builder = builder.predicate_exact(t.attribute(), t.value());
        }
        builder
            .build()
            .expect("seed tuples form a valid subscription")
    }
}

/// The 100%-degree-of-approximation transform of §5.2.3: every predicate
/// of every subscription gets `~` on both sides, "to exclude the
/// non-approximation effect on the results".
pub fn approximate_all(exact: &[Subscription]) -> Vec<Subscription> {
    exact.iter().map(Subscription::fully_approximated).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalConfig, SeedGenerator};

    fn seeds() -> Vec<Event> {
        SeedGenerator::new(&EvalConfig::tiny()).generate(12)
    }

    #[test]
    fn generates_requested_count_within_bounds() {
        let seeds = seeds();
        let subs = SubscriptionGenerator::new(1).generate(&seeds, 20, 2, 4);
        assert_eq!(subs.len(), 20);
        for s in &subs {
            let n = s.predicates().len();
            assert!((2..=4).contains(&n), "{n} predicates");
            assert_eq!(s.degree_of_approximation().as_fraction(), 0.0);
        }
    }

    #[test]
    fn subscriptions_anchor_on_type() {
        let seeds = seeds();
        let subs = SubscriptionGenerator::new(2).generate(&seeds, 12, 2, 3);
        for s in subs {
            assert!(
                s.predicates().iter().any(|p| p.attribute() == "type"),
                "subscription without type anchor: {s}"
            );
        }
    }

    #[test]
    fn exact_subscription_matches_its_seed() {
        use tep_matcher::{ExactMatcher, Matcher};
        let seeds = seeds();
        let subs = SubscriptionGenerator::new(3).generate(&seeds, 12, 2, 3);
        let m = ExactMatcher::new();
        for (i, s) in subs.iter().enumerate() {
            let seed = &seeds[i % seeds.len()];
            assert_eq!(
                m.match_event(s, seed).score(),
                1.0,
                "subscription {i} must exactly match its origin seed"
            );
        }
    }

    #[test]
    fn approximate_all_is_full_degree() {
        let seeds = seeds();
        let exact = SubscriptionGenerator::new(4).generate(&seeds, 6, 2, 3);
        let approx = approximate_all(&exact);
        assert_eq!(approx.len(), 6);
        for (e, a) in exact.iter().zip(&approx) {
            assert!(a.is_fully_approximate());
            assert_eq!(e.predicates().len(), a.predicates().len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let seeds = seeds();
        let a = SubscriptionGenerator::new(5).generate(&seeds, 10, 2, 4);
        let b = SubscriptionGenerator::new(5).generate(&seeds, 10, 2, 4);
        assert_eq!(a, b);
    }
}
